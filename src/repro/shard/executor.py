"""Scatter-gather query execution across shard segments.

A planned query distributes over shards because patients are
partitioned and a patient's events all live in their shard: every
patient-level node (``HasEvent``, ``CountAtLeast``, ``FirstBefore``,
demographics, boolean set algebra — including ``PatientNot``, whose
universe is the shard's own demographics table) evaluates correctly on
each shard's disjoint universe, and the global answer is the sorted
union of the per-shard answers.

:class:`ParallelExecutor` runs that per-shard evaluation either

* **serially** in-process — each shard gets a
  :class:`~repro.query.engine.QueryEngine` sharing one
  :class:`~repro.query.cache.QueryCache`, whose keys already include the
  per-shard ``content_token``, so memoization works unchanged at shard
  granularity; or
* **in parallel** via a lazily spawned ``ProcessPoolExecutor`` — workers
  open their own memory-mapped shard handles (cached per process) and
  return plain patient-id arrays.

The executor is *self-healing*, at two granularities:

* **Per shard**: a failed or timed-out shard evaluation is retried
  in-process with the seeded backoff of
  :class:`~repro.resilience.retry.RetryPolicy`; a per-shard
  :class:`~repro.resilience.circuit.CircuitBreaker` tracks consecutive
  failures.  Definite damage (checksum/format errors) skips the retries.
  When the store was opened with ``on_damage="quarantine"``, an
  exhausted shard is quarantined at query time and the query completes
  degraded; under the strict default the error propagates.
* **Per pool**: pool-infrastructure failures (a dead worker, an
  unpicklable environment, fork refusal) fall back to the serial path
  for the failing query, then *probe* parallel again on the next query,
  rebuilding the pool — each probe spends one rebuild from
  ``ShardConfig.max_pool_rebuilds``.  Only once that budget is
  exhausted does the serial fallback become permanent.

Worker count comes from :class:`repro.config.ShardConfig` (``None`` →
``min(4, cpu_count)``; ``<= 1`` never spawns a pool).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError

import numpy as np

from repro.config import DEFAULT_SEED, ShardConfig
from repro.errors import (
    DeadlineExceededError,
    ShardChecksumError,
    ShardFormatError,
    ShardStoreError,
)
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.retry import RetryPolicy

__all__ = ["ParallelExecutor"]

#: Per-worker-process cache of opened sharded stores, keyed by root path.
_WORKER_STORES: dict = {}
#: Per-worker-process query cache (shared across shards and queries).
_WORKER_CACHE = QueryCache()

#: Errors that mean "this shard's bytes are damaged" — retrying cannot
#: help, so the recovery path goes straight to quarantine-or-raise.
_DEFINITE_DAMAGE = (ShardChecksumError, ShardFormatError)


def _eval_shard(path: str, index: int, expr, optimize: bool,
                verify_checksums: bool, revision: int = 0):
    """Worker entry point: evaluate one query on one shard.

    ``revision`` is the parent's view of the store's root-manifest
    revision.  A cached worker store on a different revision is stale —
    a delta append or compaction moved the manifest under it — and is
    reopened, so a query never mixes one worker's pre-append shard view
    with another's post-append view.  Superseded segment generations
    are retained through one compaction (``keep_generations``), so a
    worker one revision behind still resolves; further behind, the
    failure surfaces as an ordinary shard error and the parent's
    recovery path re-evaluates serially against its own manifest.

    Returns ``(patient_ids, replica_failovers)`` — the second element
    is how many replica failovers the worker's store performed for this
    call, so the parent can aggregate failovers that would otherwise be
    invisible inside worker processes.
    """
    from repro.resilience.faults import claim_worker_kill  # noqa: PLC0415
    from repro.shard.store import ShardedEventStore  # noqa: PLC0415 (cycle)

    if claim_worker_kill():
        import os

        os._exit(43)  # simulate a hard worker crash (chaos harness)
    sharded = _WORKER_STORES.get(path)
    if sharded is None or sharded.revision != revision:
        sharded = ShardedEventStore(
            path, config=ShardConfig(verify_checksums=verify_checksums)
        )
        _WORKER_STORES[path] = sharded
    before = sharded.counters.get("replica_failovers", 0)
    engine = QueryEngine(sharded.shard(index), optimize=optimize,
                         cache=_WORKER_CACHE)
    ids = np.asarray(engine.patients(expr))
    return ids, sharded.counters.get("replica_failovers", 0) - before


def _masked_shard_sketch(sharded, index: int, expr, optimize: bool, cache):
    """The sketch of the patients in shard ``index`` matching ``expr``.

    ``expr=None`` is the whole-shard sketch (pure sidecar fold — no
    rows touched).  With a query, the shard evaluates it locally and
    sketches only the matching patients' rows — the *refinement* step
    of aggregate-first rendering, shard-parallel by construction.
    """
    from repro.shard.writer import subset_store  # noqa: PLC0415 (cycle)
    from repro.sketch import build_sketch  # noqa: PLC0415 (cycle)

    if expr is None:
        return sharded.shard_sketch(index)
    shard = sharded.shard(index)
    engine = QueryEngine(shard, optimize=optimize, cache=cache)
    pids = np.asarray(engine.patients(expr))
    return build_sketch(subset_store(shard, pids))


def _sketch_shard(path: str, index: int, expr, optimize: bool,
                  verify_checksums: bool, revision: int = 0):
    """Worker entry point: sketch one shard's (masked) cohort.

    Same worker-store cache, revision handshake and
    ``(result, replica_failovers)`` return shape as :func:`_eval_shard`;
    the :class:`CohortSketch` is a plain bundle of numpy arrays, so it
    pickles back to the parent cheaply (kilobytes, independent of shard
    row count).
    """
    from repro.resilience.faults import claim_worker_kill  # noqa: PLC0415
    from repro.shard.store import ShardedEventStore  # noqa: PLC0415 (cycle)

    if claim_worker_kill():
        import os

        os._exit(43)  # simulate a hard worker crash (chaos harness)
    sharded = _WORKER_STORES.get(path)
    if sharded is None or sharded.revision != revision:
        sharded = ShardedEventStore(
            path, config=ShardConfig(verify_checksums=verify_checksums)
        )
        _WORKER_STORES[path] = sharded
    before = sharded.counters.get("replica_failovers", 0)
    sketch = _masked_shard_sketch(sharded, index, expr, optimize,
                                  _WORKER_CACHE)
    return sketch, sharded.counters.get("replica_failovers", 0) - before


def _merge_patient_results(parts: list[np.ndarray]) -> np.ndarray:
    """Sorted union of disjoint per-shard patient-id arrays."""
    if not parts:
        return np.empty(0, dtype=np.int64)
    merged = np.sort(np.concatenate(parts))
    return merged.astype(np.int64, copy=False)


class ParallelExecutor:
    """Evaluates queries shard-by-shard and merges patient-id results.

    One executor is meant to live as long as its engine (the pool, the
    serial-path cache, the circuit breakers and the counters are all
    per-executor); call :meth:`close` (or use as a context manager) to
    reap worker processes.  A closed executor stays usable — the pool
    respawns lazily on the next parallel query.
    """

    def __init__(self, config: ShardConfig | None = None,
                 n_workers: int | None = None,
                 cache: QueryCache | None = None,
                 sleep=time.sleep, clock=time.monotonic) -> None:
        self.config = config or ShardConfig()
        self.n_workers = (self.config.resolved_workers()
                          if n_workers is None else max(1, int(n_workers)))
        self.cache = cache if cache is not None else QueryCache()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_failed = False   # last parallel attempt crashed the pool
        self._pool_broken = False   # rebuild budget exhausted: serial forever
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(DEFAULT_SEED)
        self._retry_policy = RetryPolicy(
            max_retries=self.config.shard_max_retries,
            backoff_base_s=0.01, backoff_max_s=0.25, jitter=0.5,
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self.queries = 0
        self.sketch_queries = 0
        self.parallel_queries = 0
        self.serial_queries = 0
        self.pool_fallbacks = 0
        self.pool_failures = 0
        self.pool_rebuilds = 0
        self.shard_retries = 0
        self.query_time_quarantines = 0
        self.shards_scanned = 0
        self.replica_failovers = 0  # failovers observed in worker processes
        self.replica_advances = 0   # recovery-ladder preference rotations

    # -- execution -----------------------------------------------------------

    def patients(self, sharded, expr, optimize: bool = True,
                 cache: QueryCache | None = None,
                 deadline=None) -> np.ndarray:
        """Sorted patient ids matching ``expr`` across every serving shard.

        ``cache`` overrides the executor's serial-path result cache
        (e.g. the engine's own LRU); worker processes keep their own.

        ``deadline`` (a :class:`~repro.resilience.retry.Deadline`)
        bounds the *whole* scatter-gather: it is checked between shard
        evaluations, caps how long a parallel result is awaited, and
        aborts per-shard recovery retries — an overrun raises
        :class:`~repro.errors.DeadlineExceededError` to the caller (the
        serving tier's 503) instead of queueing behind a stuck shard.
        """
        self.queries += 1
        self.shards_scanned += len(self._active(sharded))
        self._check_request_deadline(deadline)
        if self.n_workers > 1 and sharded.n_shards > 1 \
                and not self._pool_broken:
            if self._pool_failed:
                # Probing parallel again after a pool crash costs one
                # rebuild from the budget; past the budget, serial is
                # permanent — a pool that keeps dying is not coming back.
                if self.pool_rebuilds >= self.config.max_pool_rebuilds:
                    self._pool_broken = True
                else:
                    self.pool_rebuilds += 1
                    self._pool_failed = False
            if not self._pool_failed and not self._pool_broken:
                try:
                    return self._parallel(sharded, expr, optimize, cache,
                                          deadline)
                except (BrokenProcessPool, PicklingError, OSError):
                    # Pool infrastructure failed (worker died mid-query,
                    # environment not picklable, fork refused): finish
                    # this query serially and probe again next time.
                    self.pool_failures += 1
                    self.pool_fallbacks += 1
                    self._pool_failed = True
                    self._shutdown_pool()
        return self._serial(sharded, expr, optimize, cache, deadline)

    def sketch_shards(self, sharded, expr, optimize: bool = True,
                      cache: QueryCache | None = None, deadline=None):
        """A query-masked :class:`CohortSketch`, folded across shards.

        Each shard evaluates ``expr`` locally and sketches only its
        matching patients (``expr=None`` folds the persisted sidecars
        instead); per-shard sketches merge associatively, so the result
        equals the sketch of the global cohort.  Shares the pool,
        fallback ladder, per-shard recovery and deadline semantics of
        :meth:`patients`.
        """
        self.queries += 1
        self.sketch_queries += 1
        self.shards_scanned += len(self._active(sharded))
        self._check_request_deadline(deadline)
        if self.n_workers > 1 and sharded.n_shards > 1 \
                and not self._pool_broken:
            if self._pool_failed:
                if self.pool_rebuilds >= self.config.max_pool_rebuilds:
                    self._pool_broken = True
                else:
                    self.pool_rebuilds += 1
                    self._pool_failed = False
            if not self._pool_failed and not self._pool_broken:
                try:
                    return self._parallel_sketch(sharded, expr, optimize,
                                                 cache, deadline)
                except (BrokenProcessPool, PicklingError, OSError):
                    self.pool_failures += 1
                    self.pool_fallbacks += 1
                    self._pool_failed = True
                    self._shutdown_pool()
        return self._serial_sketch(sharded, expr, optimize, cache, deadline)

    def _serial_sketch(self, sharded, expr, optimize: bool,
                       cache: QueryCache | None, deadline=None):
        from repro.sketch import merge_sketches  # noqa: PLC0415 (cycle)

        self.serial_queries += 1
        shared = cache if cache is not None else self.cache
        parts = []
        for index in self._active(sharded):
            self._check_request_deadline(deadline)

            def evaluate(index=index):
                return _masked_shard_sketch(sharded, index, expr, optimize,
                                            shared)

            try:
                part = evaluate()
            except (ShardStoreError, DeadlineExceededError, OSError) as exc:
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline,
                                           eval_fn=evaluate)
            if part is not None:
                parts.append(part)
        return merge_sketches(parts)

    def _parallel_sketch(self, sharded, expr, optimize: bool,
                         cache: QueryCache | None, deadline=None):
        from repro.sketch import merge_sketches  # noqa: PLC0415 (cycle)

        pool = self._ensure_pool()
        shared = cache if cache is not None else self.cache
        futures = [
            (index,
             pool.submit(_sketch_shard, sharded.path, index, expr, optimize,
                         sharded.config.verify_checksums,
                         getattr(sharded, "revision", 0)))
            for index in self._active(sharded)
        ]
        parts = []
        for index, future in futures:
            self._check_request_deadline(deadline)
            timeout = self.config.shard_timeout_s
            if deadline is not None:
                remaining = max(0.001, deadline.remaining())
                timeout = (remaining if timeout is None
                           else min(timeout, remaining))

            def evaluate(index=index):
                return _masked_shard_sketch(sharded, index, expr, optimize,
                                            shared)

            try:
                part, failed_over = future.result(timeout=timeout)
                self.replica_failovers += int(failed_over)
                self._breaker(sharded, index).record_success()
            except (BrokenProcessPool, PicklingError):
                raise  # pool-level failure: the caller rebuilds/falls back
            except _FuturesTimeout:
                self._check_request_deadline(deadline)
                exc = DeadlineExceededError(
                    f"shard {self._shard_name(sharded, index)} exceeded "
                    f"the {self.config.shard_timeout_s}s per-shard budget"
                )
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline,
                                           eval_fn=evaluate)
            except (ShardStoreError, DeadlineExceededError) as exc:
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline,
                                           eval_fn=evaluate)
            if part is not None:
                parts.append(part)
        self.parallel_queries += 1
        return merge_sketches(parts)

    def _check_request_deadline(self, deadline) -> None:
        """Raise when the caller's request budget is already spent.

        Deliberately *outside* the per-shard try blocks: a request-level
        deadline overrun must propagate to the caller, never be retried
        or quarantined like a shard failure.
        """
        if deadline is not None and deadline.expired():
            raise DeadlineExceededError(
                "scatter-gather query exceeded its request deadline"
            )

    def _active(self, sharded) -> list[int]:
        indices = getattr(sharded, "active_indices", None)
        if callable(indices):
            return list(indices())
        return list(range(sharded.n_shards))

    def _shard_name(self, sharded, index: int) -> str:
        entries = getattr(sharded, "shard_entries", None)
        if entries is not None:
            return str(entries[index]["name"])
        return f"shard-{index:04d}"

    def _serial(self, sharded, expr, optimize: bool,
                cache: QueryCache | None, deadline=None) -> np.ndarray:
        self.serial_queries += 1
        shared = cache if cache is not None else self.cache
        parts = []
        for index in self._active(sharded):
            self._check_request_deadline(deadline)
            try:
                part = self._eval_serial(sharded, index, expr, optimize,
                                         shared)
            except (ShardStoreError, DeadlineExceededError, OSError) as exc:
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline)
            if part is not None:
                parts.append(part)
        return _merge_patient_results(parts)

    def _eval_serial(self, sharded, index: int, expr, optimize: bool,
                     cache: QueryCache) -> np.ndarray:
        engine = QueryEngine(sharded.shard(index), optimize=optimize,
                             cache=cache)
        return np.asarray(engine.patients(expr))

    def _parallel(self, sharded, expr, optimize: bool,
                  cache: QueryCache | None, deadline=None) -> np.ndarray:
        pool = self._ensure_pool()
        shared = cache if cache is not None else self.cache
        futures = [
            (index,
             pool.submit(_eval_shard, sharded.path, index, expr, optimize,
                         sharded.config.verify_checksums,
                         getattr(sharded, "revision", 0)))
            for index in self._active(sharded)
        ]
        parts = []
        for index, future in futures:
            self._check_request_deadline(deadline)
            timeout = self.config.shard_timeout_s
            if deadline is not None:
                remaining = max(0.001, deadline.remaining())
                timeout = (remaining if timeout is None
                           else min(timeout, remaining))
            try:
                part, failed_over = future.result(timeout=timeout)
                part = np.asarray(part)
                self.replica_failovers += int(failed_over)
                self._breaker(sharded, index).record_success()
            except (BrokenProcessPool, PicklingError):
                raise  # pool-level failure: the caller rebuilds/falls back
            except _FuturesTimeout:
                # Request budget spent while awaiting the worker: the
                # caller gets the deadline error (a 503 upstream), and
                # the straggler's eventual result is discarded.
                self._check_request_deadline(deadline)
                # Otherwise the worker is still grinding past its
                # per-shard budget; the query cannot wait.  Re-evaluate
                # in-process through the recovery path.
                exc = DeadlineExceededError(
                    f"shard {self._shard_name(sharded, index)} exceeded "
                    f"the {self.config.shard_timeout_s}s per-shard budget"
                )
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline)
            except (ShardStoreError, DeadlineExceededError) as exc:
                part = self._recover_shard(sharded, index, expr, optimize,
                                           shared, exc, deadline)
            if part is not None:
                parts.append(part)
        self.parallel_queries += 1
        return _merge_patient_results(parts)

    # -- per-shard recovery --------------------------------------------------

    def _breaker(self, sharded, index: int) -> CircuitBreaker:
        name = self._shard_name(sharded, index)
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                failure_threshold=self.config.shard_failure_threshold,
                recovery_timeout_s=30.0,
                clock=self._clock,
            )
            self._breakers[name] = breaker
        return breaker

    def _recover_shard(self, sharded, index: int, expr, optimize: bool,
                       cache: QueryCache, exc: Exception, deadline=None,
                       eval_fn=None):
        """One shard failed: retry in-process, then quarantine or raise.

        Returns the shard's result on a successful retry (a patient-id
        array, or a sketch when ``eval_fn`` overrides the evaluation),
        ``None`` when the shard was quarantined (the query completes
        degraded), and re-raises when the store's policy is the strict
        default ``on_damage="fail"``.  A spent request ``deadline``
        aborts the retry schedule immediately — recovery must not spend
        wall clock the request no longer has.

        On a replicated store, a *transient* failure (timeout, open
        error) first rotates the shard's preferred replica — a worker
        stuck on one copy's bad disk retries against a peer rather than
        the same bytes.  Definite damage skips the rotation: the open
        path already tried every replica before raising, so the shard
        has zero healthy copies.
        """
        breaker = self._breaker(sharded, index)
        breaker.record_failure(str(exc))
        definite = isinstance(exc, _DEFINITE_DAMAGE)
        if not definite:
            advance = getattr(sharded, "advance_replica", None)
            if callable(advance) and advance(index):
                self.replica_advances += 1
            for attempt in range(self._retry_policy.max_retries):
                self._check_request_deadline(deadline)
                self.shard_retries += 1
                self._sleep(self._retry_policy.delay_for(attempt, self._rng))
                try:
                    if eval_fn is not None:
                        part = eval_fn()
                    else:
                        part = self._eval_serial(sharded, index, expr,
                                                 optimize, cache)
                except (ShardStoreError, DeadlineExceededError,
                        OSError) as retry_exc:
                    breaker.record_failure(str(retry_exc))
                    exc = retry_exc
                    if isinstance(retry_exc, _DEFINITE_DAMAGE):
                        definite = True
                        break
                else:
                    breaker.record_success()
                    return part
        quarantine = getattr(sharded, "quarantine_shard", None)
        policy = getattr(sharded.config, "on_damage", "fail")
        if (definite or not breaker.allow()) \
                and policy == "quarantine" and callable(quarantine):
            quarantine(index, type(exc).__name__, str(exc))
            self.query_time_quarantines += 1
            return None
        raise exc

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            kwargs = {}
            if "fork" in multiprocessing.get_all_start_methods():
                # Fork lets workers inherit the parent's imports and
                # page cache; spawn works too, just with a colder start.
                kwargs["mp_context"] = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, **kwargs
            )
        return self._pool

    # -- lifecycle -----------------------------------------------------------

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Reap worker processes (idempotent; the executor stays usable)."""
        self._shutdown_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"parallel"`` or ``"serial"`` for the *next* query."""
        if self.n_workers <= 1 or self._pool_broken:
            return "serial"
        if self._pool_failed \
                and self.pool_rebuilds >= self.config.max_pool_rebuilds:
            return "serial"
        return "parallel"

    def open_breakers(self) -> dict[str, str]:
        """Shard name -> breaker state, for every non-closed breaker."""
        return {
            name: breaker.state
            for name, breaker in sorted(self._breakers.items())
            if breaker.state != "closed"
        }

    def stats_dict(self) -> dict:
        """JSON-ready counters (surfaced by the webapp's ``/stats``)."""
        return {
            "mode": self.mode,
            "workers": self.n_workers,
            "queries": self.queries,
            "sketch_queries": self.sketch_queries,
            "parallel_queries": self.parallel_queries,
            "serial_queries": self.serial_queries,
            "pool_fallbacks": self.pool_fallbacks,
            "pool_failures": self.pool_failures,
            "pool_rebuilds": self.pool_rebuilds,
            "max_pool_rebuilds": self.config.max_pool_rebuilds,
            "shard_retries": self.shard_retries,
            "query_time_quarantines": self.query_time_quarantines,
            "open_breakers": self.open_breakers(),
            "shards_scanned": self.shards_scanned,
            "replica_failovers": self.replica_failovers,
            "replica_advances": self.replica_advances,
        }

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor({self.mode}, workers={self.n_workers}, "
            f"{self.queries} queries)"
        )
