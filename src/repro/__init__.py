"""repro — reproduction of "Visual Exploration and Cohort Identification
of Acute Patient Histories Aggregated from Heterogeneous Sources"
(Saetre, Nytro, Nordbo, Steinsbekk; ICDE 2016).

The package rebuilds the paper's PAsTAs workbench as a Python library:

* :mod:`repro.terminology` — ICPC-2 / ICD-10 / ATC hierarchies and the
  regex-over-hierarchy query primitive;
* :mod:`repro.ontology` — a lightweight OWL engine plus the paper's two
  formalizations (integration, presentation);
* :mod:`repro.temporal` — Allen interval algebra, constraint networks,
  uncertain intervals;
* :mod:`repro.events` — the unified event model and the columnar store;
* :mod:`repro.sources` — heterogeneous raw-record parsers and the
  integration pipeline;
* :mod:`repro.resilience` — fault-tolerant ingestion: retries, circuit
  breakers, record quarantine and deterministic fault injection;
* :mod:`repro.query` / :mod:`repro.cohort` — cohort identification,
  alignment and cohort operations;
* :mod:`repro.shard` — the sharded on-disk columnar store: memory-mapped
  segments, checksummed manifests and scatter-gather query execution;
* :mod:`repro.viz` — the timeline view (Figure 1), interaction model,
  NSEPter graph rendering (Figure 2) and personal-timeline HTML export;
* :mod:`repro.nsepter` / :mod:`repro.alignment` — the baseline systems;
* :mod:`repro.simulate` — the synthetic Norwegian-registry substitute;
* :mod:`repro.perception` — preattentive search and cost-of-knowledge
  models (Figure 3).

Quickstart::

    from repro import Workbench
    from repro.simulate import generate_raw_sources

    wb = Workbench.from_raw_sources(generate_raw_sources(2_000, seed=7))
    ids = wb.select("concept T90")
    wb.timeline(ids[:100]).save("diabetes_cohort.svg")
"""

from repro.config import (
    DEFAULT_SEED,
    ResilienceConfig,
    ShardConfig,
    WorkbenchConfig,
)
from repro.errors import ReproError
from repro.io import load_store, merge_stores, save_store
from repro.session import AnalysisSession
from repro.workbench import Workbench

__version__ = "1.0.0"

__all__ = ["AnalysisSession", "DEFAULT_SEED", "ReproError",
           "ResilienceConfig", "ShardConfig", "Workbench",
           "WorkbenchConfig", "__version__", "load_store", "merge_stores",
           "save_store"]
