"""A small web workbench (standard library only).

The paper's deployment put trajectories "on the web" (pastas.no); this
module serves the whole workbench over HTTP so a cohort study can be
explored from a browser:

* ``/`` — query form plus population summary;
* ``/cohort?q=…`` — run a textual query: cohort statistics, a timeline
  preview and per-patient links.  Every query is statically analyzed
  first: error-severity diagnostics answer 400 with the full diagnostic
  list (the query is never evaluated), warnings are embedded in the
  results page;
* ``/analyze?q=…`` — JSON static-analysis report for a query without
  evaluating it (rule ids, severities, node paths, fix-it hints);
* ``/timeline.svg?q=…&rows=…&align=…`` — the Figure 1 rendering;
* ``/overview.svg?q=…`` — the density overview;
* ``/patient/<id>`` — one interactive personal timeline;
* ``/healthz`` — JSON liveness report: store sizes plus any sources the
  ingestion had to degrade (HTTP 503 while degraded);
* ``/stats`` — JSON serving metrics: store sizes, the static
  analyzer's counters (queries analyzed, errors, warnings) plus the
  query planner's cache counters (hits/misses/evictions/entries).  The cache
  is per-process — one workbench engine serves every request — so the
  counters aggregate the whole serving session.  A workbench serving a
  sharded on-disk store (:mod:`repro.shard`) additionally reports shard
  counters: shard count, how many segments are resident, partition
  scheme, and the scatter-gather executor's mode/worker/query totals.

Hardening: malformed query parameters answer 400 with a readable error,
each request can carry a wall-clock deadline (503 on overrun), and a
workbench in a degraded state can be served either with a banner or as
an all-routes 503 (``degraded_mode``).

Built on :mod:`http.server` (no dependencies), single-threaded per
request but served from a ``ThreadingHTTPServer`` so SVG fetches don't
block the form.  Start with :class:`WorkbenchServer` (tests drive it
in-process) or ``python -m repro serve``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, quote, urlparse
from xml.sax.saxutils import escape

from repro.errors import DeadlineExceededError, QueryError, ReproError
from repro.query.ast import Concept
from repro.resilience.retry import Deadline
from repro.viz.timeline_view import TimelineConfig
from repro.workbench import Workbench

__all__ = ["WorkbenchServer"]

#: Alignment concepts are terminology codes: letters, digits, dots.
_CONCEPT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9.]{0,15}$")

_PAGE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 1.2em; background: #fafafa; }}
 input[type=text] {{ width: 34em; }}
 pre {{ background: #f0f0f0; padding: 0.6em; }}
 img, object {{ border: 1px solid #ddd; background: #fff; }}
 .err {{ color: #b00020; }}
 .warn {{ color: #8a6d00; }}
</style></head><body>
<h2>{title}</h2>
<form action="/cohort" method="get">
 <input type="text" name="q" value="{query}"
  placeholder="concept T90 and atleast 2 category gp_contact">
 <button>run query</button>
</form>
{body}
</body></html>
"""


class _Handler(BaseHTTPRequestHandler):
    workbench: Workbench  # set by the server factory
    #: Per-request wall-clock budget in seconds (None = unlimited).
    request_deadline_s: float | None = None
    #: "serve" keeps answering with a degradation banner; "fail" turns
    #: every non-health route into a 503 while sources are degraded.
    degraded_mode: str = "serve"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, *args) -> None:  # silence request logging
        pass

    def _send(self, body: str | bytes, content_type: str,
              status: int = 200) -> None:
        data = body.encode("utf-8") if isinstance(body, str) else body
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _page(self, title: str, body: str, query: str = "",
              status: int = 200) -> None:
        self._send(
            _PAGE.format(title=escape(title), body=body,
                         query=escape(query, {'"': "&quot;"})),
            "text/html; charset=utf-8", status,
        )

    def _query_param(self, params: dict) -> str:
        return (params.get("q") or [""])[0].strip()

    def _int_param(self, params: dict, name: str, default: int) -> int:
        """Parse an integer query parameter or raise a 400-able error."""
        raw = (params.get(name) or [str(default)])[0].strip()
        try:
            return int(raw)
        except ValueError:
            raise QueryError(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None

    def _check_deadline(self) -> None:
        """Raise once the per-request budget is spent (between stages)."""
        if self._deadline is not None and self._deadline.expired():
            raise DeadlineExceededError(
                f"request exceeded its {self.request_deadline_s:.1f}s "
                f"deadline"
            )

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        params = parse_qs(url.query)
        self._deadline = (
            Deadline(self.request_deadline_s)
            if self.request_deadline_s is not None else None
        )
        try:
            if url.path == "/healthz":
                self._healthz()
            elif url.path == "/stats":
                self._stats()
            elif self.degraded_mode == "fail" and self.workbench.is_degraded:
                self._degraded_page()
            elif url.path == "/":
                self._index()
            elif url.path == "/cohort":
                self._cohort(params)
            elif url.path == "/analyze":
                self._analyze(params)
            elif url.path == "/timeline.svg":
                self._timeline(params)
            elif url.path == "/overview.svg":
                self._overview(params)
            elif url.path.startswith("/patient/"):
                self._patient(url.path[len("/patient/"):])
            else:
                self._page("Not found", "<p class='err'>no such page</p>",
                           status=404)
        except DeadlineExceededError as exc:
            self._page("Deadline exceeded",
                       f"<p class='err'>{escape(str(exc))}</p>",
                       query=self._query_param(params), status=503)
        except ReproError as exc:
            self._page("Query error",
                       f"<p class='err'>{escape(str(exc))}</p>",
                       query=self._query_param(params), status=400)

    def _healthz(self) -> None:
        health = self.workbench.health()
        status = 200 if health["status"] == "ok" else 503
        self._send(json.dumps(health, sort_keys=True),
                   "application/json", status)

    def _stats(self) -> None:
        store = self.workbench.store
        payload = {
            "patients": int(store.n_patients),
            "events": int(store.n_events),
            "query_cache": self.workbench.query_cache_stats(),
        }
        payload["analyzer"] = dict(self.workbench.engine.analyzer_counters)
        shards = self.workbench.shard_stats()
        if shards is not None:
            payload["shards"] = shards
        self._send(json.dumps(payload, sort_keys=True),
                   "application/json", 200)

    def _degraded_page(self) -> None:
        items = "".join(
            f"<li><b>{escape(source)}</b>: {escape(reason)}</li>"
            for source, reason in
            sorted(self.workbench.degraded_sources.items())
        )
        self._page(
            "Workbench degraded",
            "<p class='err'>The workbench is running without these "
            f"sources:</p><ul class='err'>{items}</ul>"
            "<p>Retry once the registries recover, or restart with "
            "<code>--degraded-mode serve</code> to browse the partial "
            "integration.</p>",
            status=503,
        )

    def _index(self) -> None:
        stats = self.workbench.stats()
        banner = ""
        if self.workbench.is_degraded:
            degraded = ", ".join(sorted(self.workbench.degraded_sources))
            banner = (
                f"<p class='err'>degraded: integrated without "
                f"{escape(degraded)} (see <a href='/healthz'>/healthz</a>)"
                f"</p>"
            )
        report = self.workbench.report
        report_block = (
            f"<pre>{escape(report.format_summary())}</pre>"
            if report is not None and (report.is_degraded
                                       or report.failures_truncated)
            else ""
        )
        body = (
            banner + report_block
            + f"<pre>{escape(stats.format_table())}</pre>"
            '<p><a href="/overview.svg">population density overview</a></p>'
        )
        self._page("PAsTAs workbench", body)

    def _diagnostic_list(self, diagnostics, css: str) -> str:
        items = "".join(
            f"<li><code>{escape(d.rule)}</code> at "
            f"<code>{escape(d.path)}</code>: {escape(d.message)}"
            + (f"<br><i>hint: {escape(d.hint)}</i>" if d.hint else "")
            + "</li>"
            for d in diagnostics
        )
        return f"<ul class='{css}'>{items}</ul>"

    def _analyze(self, params: dict) -> None:
        query = self._query_param(params)
        if not query:
            raise QueryError("missing query parameter 'q'")
        diagnostics = self.workbench.analyze(query)
        payload = {
            "query": query,
            "ok": not any(d.severity == "error" for d in diagnostics),
            "diagnostics": [d.to_json() for d in diagnostics],
        }
        self._send(json.dumps(payload, sort_keys=True),
                   "application/json", 200)

    def _cohort(self, params: dict) -> None:
        query = self._query_param(params)
        if not query:
            self._page("Cohort", "<p class='err'>empty query</p>",
                       status=400)
            return
        diagnostics = self.workbench.analyze(query)
        if any(d.severity == "error" for d in diagnostics):
            self._page(
                "Query rejected",
                "<p class='err'>static analysis rejected this query "
                "(it was not evaluated):</p>"
                + self._diagnostic_list(diagnostics, "err"),
                query=query, status=400,
            )
            return
        ids = self.workbench.select(query)
        self._check_deadline()
        stats = self.workbench.stats(ids)
        encoded = quote(query)
        links = "".join(
            f'<li><a href="/patient/{int(p)}">patient {int(p)}</a></li>'
            for p in ids[:20]
        )
        warnings_block = (
            "<p class='warn'>static-analysis warnings:</p>"
            + self._diagnostic_list(diagnostics, "warn")
            if diagnostics else ""
        )
        body = (
            warnings_block
            + f"<p>{len(ids):,} patients match.</p>"
            f"<pre>{escape(stats.format_table())}</pre>"
            f'<object data="/timeline.svg?q={encoded}&rows=60" '
            'type="image/svg+xml" width="100%"></object>'
            f"<ul>{links}</ul>"
        )
        self._page("Cohort", body, query=query)

    def _timeline(self, params: dict) -> None:
        query = self._query_param(params)
        rows = self._int_param(params, "rows", 100)
        align = (params.get("align") or [""])[0].strip()
        if align and not _CONCEPT_RE.match(align):
            raise QueryError(
                f"query parameter 'align' must be a concept code "
                f"(e.g. T90), got {align!r}"
            )
        ids = self.workbench.select(query) if query \
            else self.workbench.store.patient_ids
        ids = ids[: max(1, min(rows, 2_000))]
        self._check_deadline()
        if align:
            alignment = self.workbench.align(Concept(align.upper()))
            scene = self.workbench.timeline(
                ids, TimelineConfig(mode="aligned"), alignment
            )
        else:
            scene = self.workbench.timeline(ids)
        self._send(scene.svg_text, "image/svg+xml")

    def _overview(self, params: dict) -> None:
        query = self._query_param(params)
        ids = self.workbench.select(query) if query else None
        self._check_deadline()
        scene = self.workbench.overview(ids)
        self._send(scene.svg_text, "image/svg+xml")

    def _patient(self, raw_id: str) -> None:
        try:
            patient_id = int(raw_id)
        except ValueError:
            raise QueryError(
                f"patient id must be an integer, got {raw_id!r}"
            ) from None
        html = self.workbench.personal_timeline(patient_id)
        self._send(html, "text/html; charset=utf-8")


class WorkbenchServer:
    """Serves one workbench over HTTP; use as a context manager in tests.

    ``port=0`` picks a free port; the bound address is exposed as
    :attr:`url`.

    ``request_deadline_s`` bounds each request's wall-clock budget
    (exceeding it answers 503); ``degraded_mode`` decides what a
    workbench with degraded sources serves — ``"serve"`` (default) keeps
    answering with a banner, ``"fail"`` turns every route except
    ``/healthz`` into a readable 503 page.
    """

    def __init__(self, workbench: Workbench, host: str = "127.0.0.1",
                 port: int = 0, request_deadline_s: float | None = None,
                 degraded_mode: str = "serve") -> None:
        if degraded_mode not in ("serve", "fail"):
            raise ValueError(
                f"degraded_mode must be 'serve' or 'fail', "
                f"got {degraded_mode!r}"
            )
        handler = type("BoundHandler", (_Handler,),
                       {"workbench": workbench,
                        "request_deadline_s": request_deadline_s,
                        "degraded_mode": degraded_mode})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "WorkbenchServer":
        """Serve in a daemon thread and return self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "WorkbenchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
