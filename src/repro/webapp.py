"""The web workbench, served by the production serving tier.

The paper's deployment put trajectories "on the web" (pastas.no); this
module is the single-process surface over :mod:`repro.serving`: route
logic lives in the transport-agnostic :class:`repro.serving.core.RequestCore`,
overload protection in :class:`repro.serving.middleware.ServingApp`, and
the socket transport in :mod:`repro.serving.http`.  For a pre-forked
multi-process pool, see :class:`repro.serving.pool.ServingPool`
(``python -m repro serve --workers N``).

Routes:

* ``/`` — query form plus population summary;
* ``/cohort?q=…`` — run a textual query: cohort statistics, a timeline
  preview and per-patient links.  Every query is statically analyzed
  first: error-severity diagnostics answer 400 with the full diagnostic
  list (the query is never evaluated), warnings are embedded in the
  results page;
* ``/analyze?q=…`` — JSON static-analysis report for a query without
  evaluating it (rule ids, severities, node paths, fix-it hints);
* ``/timeline.svg?q=…&rows=…&align=…`` — the Figure 1 rendering;
* ``/overview.svg?q=…`` — the density overview;
* ``/patient/<id>`` — one interactive personal timeline;
* ``/healthz`` — JSON *liveness*: always 200 from a serving process;
  the payload still reports sizes and degraded sources;
* ``/readyz`` — JSON *readiness*: 503 while the worker is saturated,
  draining, or serving without sources/quarantined shards, so a load
  balancer can stop routing here without killing the process;
* ``/stats`` — JSON serving metrics: store sizes, analyzer and planner
  cache counters, HTTP cache counters (``ETag`` 304s, response-cache
  hits), the admission gauge and rate limiter, and (for sharded
  stores) shard/executor counters.

Overload and caching semantics (see :mod:`repro.serving.middleware`):
bounded in-flight admission control sheds with ``429 Retry-After``
instead of queueing, per-client token buckets rate-limit bursts,
per-request deadlines propagate into query execution (503 on overrun),
cacheable routes carry strong ``ETag`` s keyed on the store's
``content_token()`` plus the canonical plan key (``If-None-Match``
answers 304 without re-executing the plan), and SVG/JSON/HTML bodies
are gzip-encoded for clients that ask.

Start with :class:`WorkbenchServer` (tests drive it in-process) or
``python -m repro serve``.
"""

from __future__ import annotations

import threading

from repro.config import ServingConfig
from repro.serving.http import build_server
from repro.serving.middleware import ServingApp
from repro.workbench import Workbench

__all__ = ["WorkbenchServer"]


class WorkbenchServer:
    """Serves one workbench over HTTP; use as a context manager in tests.

    ``port=0`` picks a free port; the bound address is exposed as
    :attr:`url`.

    ``request_deadline_s`` bounds each request's wall-clock budget
    (exceeding it answers 503); ``degraded_mode`` decides what a
    workbench with degraded sources serves — ``"serve"`` (default) keeps
    answering with a banner, ``"fail"`` turns every route except the
    health probes into a readable 503 page.  ``config`` supplies the
    full overload-protection surface (admission control, rate limits,
    response cache, gzip — see :class:`repro.config.ServingConfig`);
    the two keyword shortcuts override the matching config fields.
    """

    def __init__(self, workbench: Workbench, host: str = "127.0.0.1",
                 port: int = 0, request_deadline_s: float | None = None,
                 degraded_mode: str | None = None,
                 config: ServingConfig | None = None) -> None:
        base = config or ServingConfig()
        overrides = {}
        if request_deadline_s is not None:
            overrides["request_deadline_s"] = request_deadline_s
        if degraded_mode is not None:
            overrides["degraded_mode"] = degraded_mode
        if overrides:
            from dataclasses import replace

            base = replace(base, **overrides)
        self.app = ServingApp(workbench, base)
        self._httpd = build_server(self.app, host=host, port=port)
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "WorkbenchServer":
        """Serve in a daemon thread and return self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "WorkbenchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
