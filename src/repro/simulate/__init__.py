"""Synthetic data substrate: population, condition models, trajectory
generation (full-fidelity raw records and fast vectorized store), noise
injection and the patient-recall model."""

from repro.simulate.conditions import (
    ACUTE_CONDITIONS,
    CONDITIONS,
    AcuteModel,
    ConditionModel,
)
from repro.simulate.fast import FastGenerationSummary, generate_store_fast
from repro.simulate.noise import NoiseConfig, Noiser
from repro.simulate.population import SimulatedPatient, generate_population
from repro.simulate.recall import RecallOutcome, RecallStudy, run_recognition_study
from repro.simulate.stream import (
    StreamedGenerationReport,
    generate_streamed_store,
    stream_population,
)
from repro.simulate.trajectories import RawSources, StudyWindow, generate_raw_sources

__all__ = [
    "ACUTE_CONDITIONS",
    "AcuteModel",
    "CONDITIONS",
    "ConditionModel",
    "FastGenerationSummary",
    "NoiseConfig",
    "Noiser",
    "RawSources",
    "RecallOutcome",
    "RecallStudy",
    "SimulatedPatient",
    "StreamedGenerationReport",
    "StudyWindow",
    "generate_population",
    "generate_raw_sources",
    "generate_store_fast",
    "generate_streamed_store",
    "run_recognition_study",
    "stream_population",
]
