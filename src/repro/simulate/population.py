"""Synthetic population: demographics and condition assignment.

Produces the 168,000-patient general population the research project
selected from (Section IV).  Ages follow a plausible adult distribution;
chronic conditions are assigned by the age/sex-structured prevalence in
:mod:`repro.simulate.conditions`, with comorbidity boosts applied in
catalog order so clinically linked conditions co-occur.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import rng
from repro.errors import SimulationError
from repro.simulate.conditions import CONDITIONS, ConditionModel
from repro.temporal.timeline import day_number

__all__ = ["SimulatedPatient", "generate_population"]


@dataclass(frozen=True)
class SimulatedPatient:
    """One synthetic patient: demographics plus assigned chronic conditions."""

    patient_id: int
    birth_day: int
    sex: str
    conditions: tuple[str, ...]

    @property
    def n_conditions(self) -> int:
        return len(self.conditions)


def _prevalence(model: ConditionModel, age: float, sex: str) -> float:
    """Age/sex-adjusted probability of having a condition."""
    decades_from_60 = (age - 60.0) / 10.0
    p = model.prevalence_at_60 * (model.age_slope ** decades_from_60)
    sex_factor = (
        2.0 * model.female_share if sex == "F" else 2.0 * (1.0 - model.female_share)
    )
    return float(min(0.95, p * sex_factor))


def generate_population(
    n_patients: int,
    seed: int | None = None,
    reference_year: int = 2012,
) -> list[SimulatedPatient]:
    """Generate ``n_patients`` synthetic adults, deterministically.

    ``reference_year`` anchors ages: the study window starts Jan 1 of
    that year.  Ages are drawn from a mixture approximating the adult
    Norwegian population with the elderly tail the chronic catalog needs.
    """
    if n_patients <= 0:
        raise SimulationError("population size must be positive")
    generator = rng(seed)
    from datetime import date  # noqa: PLC0415

    window_start = day_number(date(reference_year, 1, 1))

    # Age mixture: bulk adults (18-70 roughly uniform) + elderly tail.
    bulk = generator.uniform(18.0, 72.0, size=n_patients)
    elderly = generator.normal(80.0, 8.0, size=n_patients)
    take_elderly = generator.random(n_patients) < 0.18
    ages = np.where(take_elderly, np.clip(elderly, 65.0, 100.0), bulk)
    sexes = np.where(generator.random(n_patients) < 0.505, "F", "M")
    birth_jitter = generator.integers(0, 365, size=n_patients)

    by_name = {model.name: model for model in CONDITIONS}
    patients: list[SimulatedPatient] = []
    uniforms = generator.random((n_patients, len(CONDITIONS)))
    for i in range(n_patients):
        age = float(ages[i])
        sex = str(sexes[i])
        assigned: list[str] = []
        boosts: dict[str, float] = {}
        for j, model in enumerate(CONDITIONS):
            p = _prevalence(model, age, sex) * boosts.get(model.name, 1.0)
            if uniforms[i, j] < min(0.95, p):
                assigned.append(model.name)
                for other, factor in model.comorbidity_boost.items():
                    if other in by_name:
                        boosts[other] = boosts.get(other, 1.0) * factor
        birth = window_start - int(age * 365.25) - int(birth_jitter[i])
        patients.append(
            SimulatedPatient(
                patient_id=100_000 + i,
                birth_day=birth,
                sex=sex,
                conditions=tuple(assigned),
            )
        )
    return patients
