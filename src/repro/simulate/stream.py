"""Streaming population generation: million-patient stores in O(batch) RAM.

:func:`generate_store_fast` materializes the whole population before
writing, which caps practical scale at whatever fits in memory.  This
module generates the population **batch by batch** — each batch is an
independent :class:`~repro.events.store.EventStore` with a disjoint
patient-id block and a child seed spawned from the parent seed — and
lands it through the incremental ingestion path: the first batch seeds
the sharded store via :class:`~repro.shard.writer.ShardedStoreWriter`
(hash partitioning, so later batches route consistently), every later
batch appends through :class:`~repro.shard.delta.DeltaWriter`, and the
:class:`~repro.shard.delta.Compactor` folds deltas periodically and once
at the end.  Peak memory is one batch, not one population, while the
result is byte-for-byte a normal sharded store (sketch sidecars
included, since every segment write emits one).

Determinism: the emitted rows depend only on ``(n_patients, seed,
batch_size)`` — per-batch seeds come from :func:`repro.config.spawn_seeds`
so reordering or resuming batches cannot silently change the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config import DEFAULT_SEED, spawn_seeds
from repro.events.store import EventStore
from repro.simulate.fast import FastGenerationSummary, generate_store_fast

__all__ = [
    "StreamedGenerationReport",
    "generate_streamed_store",
    "stream_population",
]

#: Default patients per generated batch; small enough that even the E6
#: run peaks well under a materialized population's footprint.
DEFAULT_BATCH_SIZE = 20_000


@dataclass(frozen=True)
class StreamedGenerationReport:
    """What a streamed generation run produced."""

    n_patients: int
    n_events: int
    n_batches: int
    n_shards: int
    compactions: int
    revision: int


def stream_population(
    n_patients: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = None,
    reference_year: int = 2012,
    years: float = 2.0,
) -> Iterator[tuple[EventStore, FastGenerationSummary]]:
    """Yield ``(batch_store, summary)`` pairs covering ``n_patients``.

    Batches carry disjoint patient-id blocks (via the fast generator's
    ``id_offset``) and independent child seeds, so concatenating every
    batch yields one coherent population without ever holding it whole.
    """
    if n_patients <= 0:
        return
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    parent = DEFAULT_SEED if seed is None else seed
    n_batches = (n_patients + batch_size - 1) // batch_size
    seeds = spawn_seeds(parent, n_batches)
    for index in range(n_batches):
        offset = index * batch_size
        count = min(batch_size, n_patients - offset)
        yield generate_store_fast(
            count,
            seed=seeds[index],
            reference_year=reference_year,
            years=years,
            id_offset=offset,
        )


def generate_streamed_store(
    n_patients: int,
    out_dir: str,
    n_shards: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = None,
    compact_every: int | None = 8,
    reference_year: int = 2012,
    years: float = 2.0,
) -> StreamedGenerationReport:
    """Generate ``n_patients`` straight into a sharded store at ``out_dir``.

    The first batch creates the store (hash-partitioned so every later
    batch routes to stable shards); the rest land as delta segments.
    ``compact_every`` folds pending deltas after that many appended
    batches (``None`` disables mid-run compaction); a final compaction
    always runs so the finished store has no pending deltas.
    """
    from repro.shard.delta import Compactor, DeltaWriter
    from repro.shard.writer import write_sharded_store

    batches = stream_population(
        n_patients,
        batch_size=batch_size,
        seed=seed,
        reference_year=reference_year,
        years=years,
    )
    total_patients = 0
    total_events = 0
    n_batches = 0
    compactions = 0
    appended_since_compact = 0
    writer: DeltaWriter | None = None
    compactor = Compactor(out_dir)
    manifest: dict = {}
    for store, summary in batches:
        n_batches += 1
        total_patients += summary.n_patients
        total_events += summary.n_events
        if writer is None:
            manifest = write_sharded_store(
                store, out_dir, n_shards=n_shards, partition="hash"
            )
            writer = DeltaWriter(out_dir)
            continue
        manifest = writer.append(store)
        appended_since_compact += 1
        if compact_every and appended_since_compact >= compact_every:
            compactor.compact()
            compactions += 1
            appended_since_compact = 0
    if writer is None:
        raise ValueError("n_patients must be positive")
    if appended_since_compact:
        compactor.compact()
        compactions += 1
    from repro.shard.format import read_store_manifest

    manifest = read_store_manifest(out_dir)
    return StreamedGenerationReport(
        n_patients=total_patients,
        n_events=total_events,
        n_batches=n_batches,
        n_shards=len(manifest["shards"]),
        compactions=compactions,
        revision=int(manifest.get("revision", 0)),
    )
