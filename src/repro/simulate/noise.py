"""Noise injection for the raw sources.

The paper is explicit that real registry data is messy: free-text
extraction "is limited because of differing conventions and many typing
errors" (Section IV-A) and entries can carry "a clearly invalid date"
(Section IV).  The generator therefore injects exactly those defects, at
configurable rates, so the parsers' error paths are exercised by every
end-to-end run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseConfig", "Noiser"]


@dataclass(frozen=True)
class NoiseConfig:
    """Rates of each defect class (probabilities per opportunity)."""

    bad_date: float = 0.002
    pre_birth_date: float = 0.001
    lowercase_code: float = 0.03
    junk_code: float = 0.01
    whitespace_code: float = 0.05
    bp_typo: float = 0.02
    bp_convention_variants: bool = True

    @classmethod
    def none(cls) -> "NoiseConfig":
        """A configuration injecting no noise (for clean-room tests)."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, False)


class Noiser:
    """Applies :class:`NoiseConfig` defects using a dedicated RNG stream."""

    def __init__(self, config: NoiseConfig, generator: np.random.Generator) -> None:
        self.config = config
        self._rng = generator

    def date(self, formatted: str) -> str:
        """Possibly mangle a formatted date string."""
        if self._rng.random() < self.config.bad_date:
            choice = self._rng.integers(0, 3)
            if choice == 0:
                return "00.00.0000"
            if choice == 1:
                # Day 31 in a short month / impossible month.
                return formatted[:-7] + "13" + formatted[-5:]
            return formatted[:4] + formatted[5:]  # drop a separator digit
        return formatted

    def icpc_code(self, code: str) -> str:
        """Possibly lowercase, pad or replace a code."""
        if self._rng.random() < self.config.junk_code:
            return "Q" + str(self._rng.integers(10, 99))  # no ICPC chapter Q
        if self._rng.random() < self.config.lowercase_code:
            code = code.lower()
        if self._rng.random() < self.config.whitespace_code:
            code = f" {code} "
        return code

    def bp_note(self, systolic: int, diastolic: int) -> str:
        """Render a blood-pressure reading with convention drift and typos."""
        if self._rng.random() < self.config.bp_typo:
            systolic = int(str(systolic)[:-1] or "9")  # dropped digit
        if self.config.bp_convention_variants:
            variant = int(self._rng.integers(0, 4))
        else:
            variant = 0
        if variant == 0:
            return f"BT {systolic}/{diastolic}"
        if variant == 1:
            return f"bp: {systolic} / {diastolic} mmHg"
        if variant == 2:
            return f"Blodtrykk {systolic}-{diastolic}"
        return f"BP{systolic}/{diastolic}"
