"""Vectorized population->EventStore generation for 168k-patient scale.

The full-fidelity path (:mod:`repro.simulate.trajectories`) emits raw
registry records with native date strings and free text and replays the
whole parsing pipeline — right for fidelity, too slow to regenerate a
168,000-patient study inside a benchmark loop.  This module produces a
*statistically matching* event store directly with numpy (same condition
catalog, same rates, same demographics), skipping string round-trips.

DESIGN.md §2 records this as a substitution: scale experiments (E5, E7,
E8, E9) use the fast path; integration-fidelity experiments run the full
path at moderate n.  A property test asserts the two paths agree on
per-condition patient counts within sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import rng
from repro.errors import SimulationError
from repro.events.store import EventStore, default_systems
from repro.simulate.conditions import (
    ACUTE_CONDITIONS,
    CONDITIONS,
    seasonal_weights,
)
from repro.simulate.trajectories import StudyWindow

__all__ = ["generate_store_fast", "FastGenerationSummary"]

_CATEGORIES = [
    "gp_contact",
    "emergency_contact",
    "specialist_contact",
    "outpatient_visit",
    "diagnosis",
    "blood_pressure",
    "prescription",
    "hospital_stay",
    "home_care",
    "nursing_home",
]
_SOURCES = [
    "gp_claim",
    "gp_emergency_claim",
    "specialist_claim",
    "hospital_inpatient",
    "hospital_outpatient",
    "municipal_home_care",
    "municipal_nursing_home",
]


@dataclass
class FastGenerationSummary:
    """What the fast generator produced, for reporting and cross-checks."""

    n_patients: int
    n_events: int
    patients_per_condition: dict[str, int]


class _Assembler:
    """Accumulates column chunks and assembles a sorted EventStore."""

    def __init__(self) -> None:
        self.chunks: list[tuple[np.ndarray, ...]] = []

    def add(
        self,
        patient: np.ndarray,
        day: np.ndarray,
        end: np.ndarray,
        is_point: bool,
        category: int,
        system: int,
        code: int,
        source: int,
        value: np.ndarray | None = None,
        value2: np.ndarray | None = None,
    ) -> None:
        n = len(patient)
        if n == 0:
            return
        nanfill = np.full(n, np.nan, dtype=np.float64)
        self.chunks.append(
            (
                patient.astype(np.int64),
                day.astype(np.int32),
                end.astype(np.int32),
                np.full(n, is_point, dtype=bool),
                np.full(n, category, dtype=np.int16),
                np.full(n, system, dtype=np.int8),
                np.full(n, code, dtype=np.int32),
                nanfill if value is None else value.astype(np.float64),
                nanfill if value2 is None else value2.astype(np.float64),
                np.full(n, source, dtype=np.int16),
                np.zeros(n, dtype=np.int32),
            )
        )

    def assemble(
        self,
        patient_ids: np.ndarray,
        birth_days: np.ndarray,
        sexes: np.ndarray,
        systems: dict,
        system_names: list[str],
    ) -> EventStore:
        columns = [np.concatenate([c[i] for c in self.chunks]) for i in range(11)]
        order = np.lexsort((columns[1], columns[0]))
        columns = [c[order] for c in columns]
        return EventStore(
            systems=systems,
            system_names=system_names,
            categories=list(_CATEGORIES),
            sources=list(_SOURCES),
            details=[""],
            patient=columns[0],
            day=columns[1],
            end=columns[2],
            is_point=columns[3],
            category=columns[4],
            system=columns[5],
            code=columns[6],
            value=columns[7],
            value2=columns[8],
            source=columns[9],
            detail=columns[10],
            patient_ids=patient_ids,
            birth_days=birth_days,
            sexes=sexes,
        )


def generate_store_fast(
    n_patients: int,
    seed: int | None = None,
    reference_year: int = 2012,
    years: float = 2.0,
    id_offset: int = 0,
) -> tuple[EventStore, FastGenerationSummary]:
    """Generate an event store for ``n_patients`` synthetic adults.

    Deterministic in ``(n_patients, seed)``; a few seconds for 168,000
    patients (~5M events) versus minutes for the full-fidelity path.
    ``id_offset`` shifts the assigned patient-id block — the streaming
    generator uses it to hand out disjoint ids batch by batch.
    """
    if n_patients <= 0:
        raise SimulationError("population size must be positive")
    generator = rng(seed)
    window = StudyWindow.for_year(reference_year, years)

    # -- demographics (same mixture as simulate.population) ----------------
    bulk = generator.uniform(18.0, 72.0, size=n_patients)
    elderly = np.clip(generator.normal(80.0, 8.0, size=n_patients), 65.0, 100.0)
    ages = np.where(generator.random(n_patients) < 0.18, elderly, bulk)
    is_female = generator.random(n_patients) < 0.505
    birth_jitter = generator.integers(0, 365, size=n_patients)
    birth_days = (
        window.start_day - (ages * 365.25).astype(np.int64) - birth_jitter
    ).astype(np.int32)
    first_id = 100_000 + int(id_offset)
    patient_ids = np.arange(first_id, first_id + n_patients, dtype=np.int64)
    sexes = np.where(is_female, 1, 2).astype(np.int8)

    # -- condition assignment (vectorized, catalog order) -------------------
    decades = (ages - 60.0) / 10.0
    boosts = {model.name: np.ones(n_patients) for model in CONDITIONS}
    assigned: dict[str, np.ndarray] = {}
    for model in CONDITIONS:
        base = model.prevalence_at_60 * np.power(model.age_slope, decades)
        sex_factor = np.where(
            is_female, 2.0 * model.female_share, 2.0 * (1.0 - model.female_share)
        )
        p = np.minimum(0.95, base * sex_factor * boosts[model.name])
        has = generator.random(n_patients) < p
        assigned[model.name] = has
        for other, factor in model.comorbidity_boost.items():
            if other in boosts:
                boosts[other] = np.where(has, boosts[other] * factor, boosts[other])

    systems = default_systems()
    system_names = list(systems)
    sys_icpc = system_names.index("ICPC-2")
    sys_icd = system_names.index("ICD-10")
    sys_atc = system_names.index("ATC")
    cat = {name: i for i, name in enumerate(_CATEGORIES)}
    src = {name: i for i, name in enumerate(_SOURCES)}
    icpc, icd, atc_sys = (
        systems["ICPC-2"],
        systems["ICD-10"],
        systems["ATC"],
    )

    assembler = _Assembler()
    hypertensive = assigned["hypertension"]

    def scatter_days(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand per-patient counts into (patient_id row, uniform day)."""
        total = int(counts.sum())
        pid = np.repeat(patient_ids, counts)
        days = generator.integers(window.start_day, window.end_day, size=total)
        return pid, days

    for model in CONDITIONS:
        has = assigned[model.name]
        idx = np.flatnonzero(has)
        if len(idx) == 0:
            continue
        counts_full = np.zeros(n_patients, dtype=np.int64)

        # GP visits: contact + diagnosis (ICPC-2)
        counts_full[idx] = generator.poisson(
            model.gp_visits_per_year * years, size=len(idx)
        )
        pid, days = scatter_days(counts_full)
        code_id = icpc.id_of(model.icpc2)
        assembler.add(pid, days, days + 1, True, cat["gp_contact"], -1, -1,
                      src["gp_claim"])
        assembler.add(pid, days, days + 1, True, cat["diagnosis"], sys_icpc,
                      code_id, src["gp_claim"])

        # Blood pressure at ~70% of monitored visits
        if model.bp_monitored:
            counts_full[:] = 0
            counts_full[idx] = generator.binomial(
                generator.poisson(model.gp_visits_per_year * years, size=len(idx)),
                0.7,
            )
            pid, days = scatter_days(counts_full)
            high = np.repeat(hypertensive, counts_full)
            sysv = np.where(
                high,
                generator.normal(152, 14, size=len(pid)),
                generator.normal(128, 11, size=len(pid)),
            )
            diav = np.where(
                high,
                generator.normal(92, 9, size=len(pid)),
                generator.normal(80, 8, size=len(pid)),
            )
            assembler.add(
                pid, days, days + 1, True, cat["blood_pressure"], -1, -1,
                src["gp_claim"],
                value=np.clip(sysv, 80, 240), value2=np.clip(diav, 45, 140),
            )

        # Specialist visits: contact + ICD-10 diagnosis (+ prescriptions)
        counts_full[:] = 0
        counts_full[idx] = generator.poisson(
            model.specialist_visits_per_year * years, size=len(idx)
        )
        pid, days = scatter_days(counts_full)
        icd_id = icd.id_of(model.icd10)
        assembler.add(pid, days, days + 1, True, cat["specialist_contact"],
                      -1, -1, src["specialist_claim"])
        assembler.add(pid, days, days + 1, True, cat["diagnosis"], sys_icd,
                      icd_id, src["specialist_claim"])

        # Prescriptions: 90-day bands at ~2 renewals/year for the medicated
        if model.medications:
            counts_full[:] = 0
            counts_full[idx] = generator.poisson(2.0 * years, size=len(idx))
            pid, days = scatter_days(counts_full)
            med_ids = np.array(
                [atc_sys.id_of(m) for m in model.medications], dtype=np.int32
            )
            chosen = med_ids[generator.integers(0, len(med_ids), size=len(pid))]
            # chunk per med id to keep code column constant per chunk
            for med_id in med_ids:
                mask = chosen == med_id
                assembler.add(
                    pid[mask], days[mask], days[mask] + 90, False,
                    cat["prescription"], sys_atc, int(med_id),
                    src["specialist_claim"],
                )

        # Hospitalizations: stay interval + ICD-10 diagnosis
        counts_full[:] = 0
        counts_full[idx] = generator.poisson(
            model.hospitalizations_per_year * years, size=len(idx)
        )
        pid, days = scatter_days(counts_full)
        stays = np.maximum(
            1, generator.exponential(model.mean_stay_days, size=len(pid))
        ).astype(np.int64)
        ends = np.minimum(days + stays, window.end_day) + 1
        assembler.add(pid, days, ends, False, cat["hospital_stay"], -1, -1,
                      src["hospital_inpatient"])
        assembler.add(pid, days, days + 1, True, cat["diagnosis"], sys_icd,
                      icd_id, src["hospital_inpatient"])

        # Municipal care for frail elderly with qualifying conditions
        if model.needs_municipal_care > 0.0:
            old = (window.start_day - birth_days) / 365.25 >= 70.0
            eligible = np.flatnonzero(has & old)
            starts_care = (
                generator.random(len(eligible))
                < model.needs_municipal_care * years
            )
            care_idx = eligible[starts_care]
            if len(care_idx) > 0:
                starts = generator.integers(
                    window.start_day, window.end_day, size=len(care_idx)
                )
                weeks = generator.integers(8, 80, size=len(care_idx))
                ends = np.minimum(starts + weeks * 7, window.end_day + 1)
                ends = np.maximum(ends, starts + 7)
                nursing = generator.random(len(care_idx)) < (
                    0.5 if model.name == "dementia" else 0.1
                )
                pid_c = patient_ids[care_idx]
                hours = generator.integers(2, 20, size=len(care_idx)).astype(
                    np.float32
                )
                assembler.add(
                    pid_c[~nursing], starts[~nursing], ends[~nursing], False,
                    cat["home_care"], -1, -1, src["municipal_home_care"],
                    value=hours[~nursing],
                )
                assembler.add(
                    pid_c[nursing], starts[nursing],
                    np.full(int(nursing.sum()), window.end_day + 1), False,
                    cat["nursing_home"], -1, -1, src["municipal_nursing_home"],
                )

    def seasonal_days(n: int, winter_factor: float) -> np.ndarray:
        """Uniform days thinned to the seasonal profile (rejection)."""
        if winter_factor <= 1.0 or n == 0:
            return generator.integers(window.start_day, window.end_day,
                                      size=n)
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            candidates = generator.integers(
                window.start_day, window.end_day,
                size=(n - filled) * 2 + 8,
            )
            weights = seasonal_weights(candidates, winter_factor)
            keep = generator.random(len(candidates)) < weights / 2.0
            taken = candidates[keep][: n - filled]
            out[filled:filled + len(taken)] = taken
            filled += len(taken)
        return out

    # -- acute background traffic (seasonally modulated) ----------------------
    for model in ACUTE_CONDITIONS:
        counts = generator.poisson(model.episodes_per_year * years,
                                   size=n_patients)
        pid = np.repeat(patient_ids, counts)
        days = seasonal_days(int(counts.sum()), model.winter_factor)
        emergency = generator.random(len(pid)) < 0.25
        code_id = icpc.id_of(model.icpc2)
        assembler.add(pid[emergency], days[emergency], days[emergency] + 1,
                      True, cat["emergency_contact"], -1, -1,
                      src["gp_emergency_claim"])
        assembler.add(pid[~emergency], days[~emergency], days[~emergency] + 1,
                      True, cat["gp_contact"], -1, -1, src["gp_claim"])
        assembler.add(pid, days, days + 1, True, cat["diagnosis"], sys_icpc,
                      code_id, src["gp_claim"])
        admit = generator.random(len(pid)) < model.hospitalization_probability
        pid_h, days_h = pid[admit], days[admit]
        if len(pid_h) > 0:
            stays = np.maximum(
                1, generator.exponential(model.mean_stay_days, size=len(pid_h))
            ).astype(np.int64)
            ends = np.minimum(days_h + stays, window.end_day) + 1
            icd_id = icd.id_of(model.icd10)
            assembler.add(pid_h, days_h, ends, False, cat["hospital_stay"],
                          -1, -1, src["hospital_inpatient"])
            assembler.add(pid_h, days_h, days_h + 1, True, cat["diagnosis"],
                          sys_icd, icd_id, src["hospital_inpatient"])

    # -- well-patient checkups (A97) ----------------------------------------
    counts = generator.poisson(0.3 * years, size=n_patients)
    pid, days = scatter_days(counts)
    assembler.add(pid, days, days + 1, True, cat["gp_contact"], -1, -1,
                  src["gp_claim"])
    assembler.add(pid, days, days + 1, True, cat["diagnosis"], sys_icpc,
                  icpc.id_of("A97"), src["gp_claim"])

    store = assembler.assemble(
        patient_ids, birth_days, sexes, systems, system_names
    )
    summary = FastGenerationSummary(
        n_patients=n_patients,
        n_events=store.n_events,
        patients_per_condition={
            name: int(mask.sum()) for name, mask in assigned.items()
        },
    )
    return store, summary
