"""Chronic-condition models driving the synthetic population.

The paper's cohort is "patients trajectories in a prospective
longitudinal cohort study with data on somatic primary and specialist
health care utilization for a two-year period" (Section III), with a
focus on "chronically ill patients as they frequently have complex
patient histories".  Each :class:`ConditionModel` couples:

* coding in both terminologies (the heterogeneity the tool integrates),
* utilization rates per care level (GP / specialist / hospital),
* typical medications (ATC) so Figure 1's medication-class coloring has
  something to show,
* age/sex prevalence structure and comorbidity boosts (diabetes raises
  hypertension odds etc.), so cohort queries select clinically coherent
  subgroups.

Rates are plausible order-of-magnitude values for Norwegian primary
care; the reproduction's claims depend on their *relative* structure,
not on epidemiological precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConditionModel", "CONDITIONS", "ACUTE_CONDITIONS", "AcuteModel"]


@dataclass(frozen=True)
class ConditionModel:
    """One chronic condition's coding, utilization and prevalence model.

    Attributes:
        name: internal identifier.
        icpc2: ICPC-2 rubric used in primary care.
        icd10: ICD-10 category used by hospitals/specialists.
        prevalence_at_60: probability an average 60-year-old has it.
        age_slope: multiplicative prevalence change per decade of age
            above/below 60 (1.6 = strongly age-driven).
        female_share: fraction of cases that are female (0.5 = neutral).
        gp_visits_per_year: Poisson rate of condition-related GP visits.
        specialist_visits_per_year: Poisson rate of specialist visits.
        hospitalizations_per_year: Poisson rate of inpatient episodes.
        mean_stay_days: mean inpatient length of stay.
        medications: ATC substances commonly prescribed.
        symptoms: ICPC-2 symptom rubrics coded at some visits.
        comorbidity_boost: condition name -> odds multiplier applied when
            this condition is already present.
        bp_monitored: True when visits record blood pressure in the note.
        needs_municipal_care: probability per year of starting home care
            (elderly only); drives the municipal source.
    """

    name: str
    icpc2: str
    icd10: str
    prevalence_at_60: float
    age_slope: float = 1.0
    female_share: float = 0.5
    gp_visits_per_year: float = 2.0
    specialist_visits_per_year: float = 0.3
    hospitalizations_per_year: float = 0.05
    mean_stay_days: float = 5.0
    medications: tuple[str, ...] = ()
    symptoms: tuple[str, ...] = ()
    comorbidity_boost: dict[str, float] = field(default_factory=dict)
    bp_monitored: bool = False
    needs_municipal_care: float = 0.0


#: The chronic-condition catalog.
CONDITIONS: tuple[ConditionModel, ...] = (
    ConditionModel(
        name="diabetes_t2",
        icpc2="T90",
        icd10="E11",
        prevalence_at_60=0.08,
        age_slope=1.5,
        female_share=0.45,
        gp_visits_per_year=3.5,
        specialist_visits_per_year=0.5,
        hospitalizations_per_year=0.08,
        mean_stay_days=4.0,
        medications=("A10BA02", "A10BB12"),
        symptoms=("T01", "T08", "A04"),
        comorbidity_boost={"hypertension": 2.5, "lipid_disorder": 2.0,
                           "ihd_angina": 1.8},
        bp_monitored=True,
    ),
    ConditionModel(
        name="hypertension",
        icpc2="K86",
        icd10="I10",
        prevalence_at_60=0.25,
        age_slope=1.5,
        gp_visits_per_year=2.5,
        specialist_visits_per_year=0.1,
        hospitalizations_per_year=0.01,
        mean_stay_days=2.0,
        medications=("C03AA03", "C07AB02", "C09AA02", "C08CA01"),
        symptoms=("N01", "K04"),
        comorbidity_boost={"ihd_angina": 1.6, "heart_failure": 1.5,
                           "stroke": 1.5},
        bp_monitored=True,
    ),
    ConditionModel(
        name="ihd_angina",
        icpc2="K74",
        icd10="I20",
        prevalence_at_60=0.06,
        age_slope=1.8,
        female_share=0.38,
        gp_visits_per_year=2.0,
        specialist_visits_per_year=0.8,
        hospitalizations_per_year=0.20,
        mean_stay_days=3.5,
        medications=("B01AC06", "C10AA01", "C07AB03"),
        symptoms=("K01", "K02", "R02"),
        comorbidity_boost={"heart_failure": 2.0, "atrial_fibrillation": 1.5},
        bp_monitored=True,
    ),
    ConditionModel(
        name="heart_failure",
        icpc2="K77",
        icd10="I50",
        prevalence_at_60=0.02,
        age_slope=2.2,
        gp_visits_per_year=3.0,
        specialist_visits_per_year=1.0,
        hospitalizations_per_year=0.45,
        mean_stay_days=7.0,
        medications=("C03CA01", "C09AA02", "C07AB02"),
        symptoms=("R02", "A04", "K04"),
        comorbidity_boost={"atrial_fibrillation": 1.8},
        bp_monitored=True,
        needs_municipal_care=0.15,
    ),
    ConditionModel(
        name="atrial_fibrillation",
        icpc2="K78",
        icd10="I48",
        prevalence_at_60=0.03,
        age_slope=2.0,
        female_share=0.42,
        gp_visits_per_year=2.0,
        specialist_visits_per_year=0.6,
        hospitalizations_per_year=0.15,
        mean_stay_days=3.0,
        medications=("B01AA03", "C07AB02"),
        symptoms=("K04", "K05"),
        comorbidity_boost={"stroke": 2.5},
        bp_monitored=True,
    ),
    ConditionModel(
        name="copd",
        icpc2="R95",
        icd10="J44",
        prevalence_at_60=0.06,
        age_slope=1.7,
        gp_visits_per_year=2.5,
        specialist_visits_per_year=0.5,
        hospitalizations_per_year=0.30,
        mean_stay_days=6.0,
        medications=("R03BB04", "R03AK06", "R03AC02"),
        symptoms=("R02", "R05", "R03"),
        comorbidity_boost={"pneumonia_risk": 1.0},
        needs_municipal_care=0.08,
    ),
    ConditionModel(
        name="asthma",
        icpc2="R96",
        icd10="J45",
        prevalence_at_60=0.06,
        age_slope=0.8,
        female_share=0.55,
        gp_visits_per_year=1.5,
        specialist_visits_per_year=0.3,
        hospitalizations_per_year=0.04,
        mean_stay_days=2.5,
        medications=("R03AC02", "R03BA02"),
        symptoms=("R02", "R03", "R05"),
    ),
    ConditionModel(
        name="depression",
        icpc2="P76",
        icd10="F32",
        prevalence_at_60=0.07,
        age_slope=0.9,
        female_share=0.62,
        gp_visits_per_year=3.0,
        specialist_visits_per_year=0.4,
        hospitalizations_per_year=0.03,
        mean_stay_days=14.0,
        medications=("N06AB04", "N06AB06", "N06AB10"),
        symptoms=("P03", "P06", "A04"),
        comorbidity_boost={"anxiety": 2.5},
    ),
    ConditionModel(
        name="anxiety",
        icpc2="P74",
        icd10="F41",
        prevalence_at_60=0.06,
        age_slope=0.9,
        female_share=0.60,
        gp_visits_per_year=2.5,
        specialist_visits_per_year=0.2,
        hospitalizations_per_year=0.01,
        mean_stay_days=7.0,
        medications=("N05BA01", "N05CF01"),
        symptoms=("P01", "P06"),
    ),
    ConditionModel(
        name="osteoarthritis",
        icpc2="L90",
        icd10="M17",
        prevalence_at_60=0.12,
        age_slope=1.6,
        female_share=0.58,
        gp_visits_per_year=1.8,
        specialist_visits_per_year=0.3,
        hospitalizations_per_year=0.06,
        mean_stay_days=4.0,
        medications=("M01AE01", "N02BE01"),
        symptoms=("L15", "L02"),
    ),
    ConditionModel(
        name="osteoporosis",
        icpc2="L95",
        icd10="M81",
        prevalence_at_60=0.05,
        age_slope=1.9,
        female_share=0.80,
        gp_visits_per_year=1.2,
        specialist_visits_per_year=0.2,
        hospitalizations_per_year=0.08,
        mean_stay_days=8.0,
        medications=("M05BA04",),
        symptoms=("L02", "L03"),
        comorbidity_boost={"fracture_risk": 1.0},
    ),
    ConditionModel(
        name="hypothyroidism",
        icpc2="T86",
        icd10="E03",
        prevalence_at_60=0.05,
        age_slope=1.2,
        female_share=0.85,
        gp_visits_per_year=1.5,
        specialist_visits_per_year=0.1,
        hospitalizations_per_year=0.005,
        mean_stay_days=2.0,
        medications=("H03AA01",),
        symptoms=("A04", "T07"),
    ),
    ConditionModel(
        name="lipid_disorder",
        icpc2="T93",
        icd10="E78",
        prevalence_at_60=0.15,
        age_slope=1.2,
        gp_visits_per_year=1.0,
        specialist_visits_per_year=0.05,
        hospitalizations_per_year=0.002,
        mean_stay_days=1.0,
        medications=("C10AA01", "C10AA05"),
        bp_monitored=True,
    ),
    ConditionModel(
        name="stroke",
        icpc2="K90",
        icd10="I63",
        prevalence_at_60=0.02,
        age_slope=2.3,
        gp_visits_per_year=2.0,
        specialist_visits_per_year=0.5,
        hospitalizations_per_year=0.25,
        mean_stay_days=12.0,
        medications=("B01AC06", "C10AA05"),
        symptoms=("N17", "A04"),
        bp_monitored=True,
        needs_municipal_care=0.30,
    ),
    ConditionModel(
        name="dementia",
        icpc2="P70",
        icd10="F03",
        prevalence_at_60=0.01,
        age_slope=3.0,
        female_share=0.60,
        gp_visits_per_year=2.0,
        specialist_visits_per_year=0.3,
        hospitalizations_per_year=0.15,
        mean_stay_days=10.0,
        symptoms=("P06",),
        needs_municipal_care=0.50,
    ),
    ConditionModel(
        name="back_pain_chronic",
        icpc2="L84",
        icd10="M54",
        prevalence_at_60=0.10,
        age_slope=1.1,
        gp_visits_per_year=2.2,
        specialist_visits_per_year=0.2,
        hospitalizations_per_year=0.02,
        mean_stay_days=3.0,
        medications=("M01AE01", "N02BE01"),
        symptoms=("L02", "L03"),
    ),
)


@dataclass(frozen=True)
class AcuteModel:
    """An acute, self-limiting condition generating background GP traffic.

    ``winter_factor`` models seasonality: the episode rate in mid-winter
    relative to mid-summer (1.0 = flat, 4.0 = strongly winter-peaked,
    as for influenza).  Rates vary sinusoidally over the year.
    """

    name: str
    icpc2: str
    icd10: str
    episodes_per_year: float
    hospitalization_probability: float = 0.0
    mean_stay_days: float = 3.0
    medications: tuple[str, ...] = ()
    winter_factor: float = 1.0


def seasonal_weights(days: "np.ndarray", winter_factor: float):
    """Relative episode weight per day number (peak around January 15).

    Returns an array of multiplicative weights with mean ~1, so scaling a
    Poisson rate by the weight preserves the annual total.
    """
    import numpy as np  # noqa: PLC0415

    if winter_factor <= 1.0:
        return np.ones_like(days, dtype=np.float64)
    # phase: day-of-year distance from Jan 15 (day 14).
    day_of_year = np.asarray(days, dtype=np.float64) % 365.25
    phase = np.cos(2.0 * np.pi * (day_of_year - 14.0) / 365.25)
    amplitude = (winter_factor - 1.0) / (winter_factor + 1.0)
    return 1.0 + amplitude * phase


#: Background acute conditions hitting everyone at some rate.
ACUTE_CONDITIONS: tuple[AcuteModel, ...] = (
    AcuteModel("uri", "R74", "J06", episodes_per_year=0.5,
               medications=("J01CE02",), winter_factor=2.5),
    AcuteModel("influenza", "R80", "J11", episodes_per_year=0.08,
               hospitalization_probability=0.02, winter_factor=6.0),
    AcuteModel("cystitis", "U71", "N30", episodes_per_year=0.15,
               medications=("J01XE01",)),
    AcuteModel("acute_bronchitis", "R78", "J20", episodes_per_year=0.12,
               hospitalization_probability=0.02,
               medications=("J01CA04",), winter_factor=2.0),
    AcuteModel("pneumonia", "R81", "J18", episodes_per_year=0.03,
               hospitalization_probability=0.30, mean_stay_days=6.0,
               medications=("J01CA04",), winter_factor=1.8),
    AcuteModel("otitis_media", "H71", "H66", episodes_per_year=0.05,
               medications=("J01CE02",)),
    AcuteModel("conjunctivitis", "F70", "H10", episodes_per_year=0.06),
    AcuteModel("forearm_fracture", "L72", "S52", episodes_per_year=0.02,
               hospitalization_probability=0.40, mean_stay_days=2.0,
               medications=("N02BE01",)),
    AcuteModel("hip_fracture", "L75", "S72", episodes_per_year=0.006,
               hospitalization_probability=0.95, mean_stay_days=9.0,
               medications=("N02AA01",)),
)
