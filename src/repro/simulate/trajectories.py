"""Trajectory generation: synthetic patients -> raw per-source records.

This is the full-fidelity path: it emits :class:`GPClaim`,
:class:`HospitalEpisode`, :class:`MunicipalServiceRecord` and
:class:`SpecialistClaim` objects *in each registry's native format*
(Norwegian dates, free-text notes, comma-packed codes, noise), so the
entire integration pipeline — parsers, free-text regexes, validation,
dedup — is exercised end to end.  For 168 k-patient scale work use
:mod:`repro.simulate.fast`, which produces the statistically matching
event store directly (documented substitution, DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

import numpy as np

from repro.config import rng
from repro.simulate.conditions import (
    ACUTE_CONDITIONS,
    CONDITIONS,
    seasonal_weights,
)
from repro.simulate.noise import NoiseConfig, Noiser
from repro.simulate.population import SimulatedPatient, generate_population
from repro.sources.integrate import PatientRecord
from repro.sources.schema import (
    GPClaim,
    HospitalEpisode,
    MunicipalServiceRecord,
    SpecialistClaim,
)
from repro.temporal.timeline import day_number, from_day_number

__all__ = ["RawSources", "generate_raw_sources", "StudyWindow"]

_SPECIALTIES = {
    "diabetes_t2": "endocrinology",
    "hypertension": "internal medicine",
    "ihd_angina": "cardiology",
    "heart_failure": "cardiology",
    "atrial_fibrillation": "cardiology",
    "copd": "pulmonology",
    "asthma": "pulmonology",
    "depression": "psychiatry",
    "anxiety": "psychiatry",
    "osteoarthritis": "orthopedics",
    "osteoporosis": "orthopedics",
    "hypothyroidism": "endocrinology",
    "lipid_disorder": "internal medicine",
    "stroke": "neurology",
    "dementia": "geriatrics",
    "back_pain_chronic": "orthopedics",
}


@dataclass(frozen=True)
class StudyWindow:
    """The two-year observation window of the cohort study (Section III)."""

    start_day: int
    end_day: int

    @classmethod
    def for_year(cls, reference_year: int, years: float = 2.0) -> "StudyWindow":
        start = day_number(date(reference_year, 1, 1))
        return cls(start, start + int(years * 365.25))

    @property
    def days(self) -> int:
        return self.end_day - self.start_day


@dataclass
class RawSources:
    """Everything the registries delivered, still in native formats."""

    window: StudyWindow
    patients: list[PatientRecord] = field(default_factory=list)
    simulated: list[SimulatedPatient] = field(default_factory=list)
    gp_claims: list[GPClaim] = field(default_factory=list)
    hospital_episodes: list[HospitalEpisode] = field(default_factory=list)
    municipal_records: list[MunicipalServiceRecord] = field(default_factory=list)
    specialist_claims: list[SpecialistClaim] = field(default_factory=list)

    def total_records(self) -> int:
        return (
            len(self.gp_claims)
            + len(self.hospital_episodes)
            + len(self.municipal_records)
            + len(self.specialist_claims)
        )


def _norwegian(day: int) -> str:
    return from_day_number(day).strftime("%d.%m.%Y")


def _iso(day: int) -> str:
    return from_day_number(day).isoformat()


def _slash(day: int) -> str:
    return from_day_number(day).strftime("%d/%m/%Y")


class _PatientGenerator:
    """Generates one patient's records; split out for readability."""

    def __init__(
        self,
        window: StudyWindow,
        generator: np.random.Generator,
        noiser: Noiser,
        out: RawSources,
    ) -> None:
        self.window = window
        self.rng = generator
        self.noiser = noiser
        self.out = out
        self.years = window.days / 365.25
        self._by_name = {m.name: m for m in CONDITIONS}

    def _visit_days(self, rate_per_year: float) -> list[int]:
        count = int(self.rng.poisson(rate_per_year * self.years))
        if count == 0:
            return []
        days = self.rng.integers(
            self.window.start_day, self.window.end_day, size=count
        )
        return sorted(int(d) for d in days)

    def _bp_pair(self, hypertensive: bool) -> tuple[int, int]:
        if hypertensive:
            sys = int(self.rng.normal(152, 14))
            dia = int(self.rng.normal(92, 9))
        else:
            sys = int(self.rng.normal(128, 11))
            dia = int(self.rng.normal(80, 8))
        return max(80, min(240, sys)), max(45, min(140, dia))

    def generate(self, patient: SimulatedPatient) -> None:
        self.out.patients.append(
            PatientRecord(patient.patient_id, patient.birth_day, patient.sex)
        )
        hypertensive = "hypertension" in patient.conditions
        for name in patient.conditions:
            self._chronic_condition(patient, self._by_name[name], hypertensive)
        self._acute_episodes(patient)
        self._checkups(patient, hypertensive)

    # -- chronic conditions -------------------------------------------------

    def _chronic_condition(self, patient, model, hypertensive: bool) -> None:
        pid = patient.patient_id
        # GP visits
        for day in self._visit_days(model.gp_visits_per_year):
            codes = [self.noiser.icpc_code(model.icpc2)]
            if model.symptoms and self.rng.random() < 0.3:
                symptom = model.symptoms[
                    int(self.rng.integers(0, len(model.symptoms)))
                ]
                codes.append(self.noiser.icpc_code(symptom))
            note_parts: list[str] = []
            if model.bp_monitored and self.rng.random() < 0.7:
                sys, dia = self._bp_pair(hypertensive)
                note_parts.append(self.noiser.bp_note(sys, dia))
            if model.medications and self.rng.random() < 0.4:
                med = model.medications[
                    int(self.rng.integers(0, len(model.medications)))
                ]
                days = int(self.rng.choice((30, 90)))
                note_parts.append(f"rx {med}x{days}")
            contact_day = self._maybe_pre_birth(day, patient)
            self.out.gp_claims.append(
                GPClaim(
                    patient_id=pid,
                    contact_date=self.noiser.date(_norwegian(contact_day)),
                    icpc_codes=", ".join(codes),
                    claim_type="gp",
                    note=". ".join(note_parts),
                )
            )
        # Specialist visits
        for day in self._visit_days(model.specialist_visits_per_year):
            prescriptions: list[str] = []
            if model.medications and self.rng.random() < 0.5:
                med = model.medications[
                    int(self.rng.integers(0, len(model.medications)))
                ]
                prescriptions.append(f"{med}x90")
            self.out.specialist_claims.append(
                SpecialistClaim(
                    patient_id=pid,
                    visit_date=_slash(day),
                    icd10_codes=model.icd10,
                    specialty=_SPECIALTIES.get(model.name, "internal medicine"),
                    prescriptions=tuple(prescriptions),
                )
            )
        # Hospitalizations (+ outpatient follow-up)
        for day in self._visit_days(model.hospitalizations_per_year):
            stay = max(1, int(self.rng.exponential(model.mean_stay_days)))
            discharge = min(day + stay, self.window.end_day)
            self.out.hospital_episodes.append(
                HospitalEpisode(
                    patient_id=pid,
                    admitted=_iso(day),
                    discharged=_iso(discharge),
                    episode_type="inpatient",
                    main_diagnosis=model.icd10,
                    ward=_SPECIALTIES.get(model.name, "medicine"),
                )
            )
            follow_up = discharge + int(self.rng.integers(20, 60))
            if follow_up < self.window.end_day:
                self.out.hospital_episodes.append(
                    HospitalEpisode(
                        patient_id=pid,
                        admitted=_iso(follow_up),
                        discharged=_iso(follow_up),
                        episode_type="outpatient",
                        main_diagnosis=model.icd10,
                        ward=_SPECIALTIES.get(model.name, "medicine"),
                    )
                )
        # Municipal care for the frail elderly
        age_at_start = (self.window.start_day - patient.birth_day) / 365.25
        if (
            model.needs_municipal_care > 0.0
            and age_at_start >= 70.0
            and self.rng.random() < model.needs_municipal_care * self.years
        ):
            start = int(
                self.rng.integers(self.window.start_day, self.window.end_day)
            )
            if model.name == "dementia" and self.rng.random() < 0.5:
                self.out.municipal_records.append(
                    MunicipalServiceRecord(
                        patient_id=pid,
                        service="nursing_home",
                        period_start=_iso(start),
                        period_end="",  # still resident at extraction
                    )
                )
            else:
                weeks = int(self.rng.integers(8, 80))
                end = min(start + weeks * 7, self.window.end_day)
                self.out.municipal_records.append(
                    MunicipalServiceRecord(
                        patient_id=pid,
                        service="home_care",
                        period_start=_iso(start),
                        period_end=_iso(end),
                        hours_per_week=float(self.rng.integers(2, 20)),
                    )
                )

    # -- acute + background --------------------------------------------------

    def _seasonal_day(self, winter_factor: float) -> int:
        """One episode day honouring the seasonal profile (rejection)."""
        while True:
            day = int(self.rng.integers(self.window.start_day,
                                        self.window.end_day))
            if winter_factor <= 1.0:
                return day
            weight = float(
                seasonal_weights(np.array([day]), winter_factor)[0]
            )
            if self.rng.random() < weight / 2.0:
                return day

    def _acute_episodes(self, patient: SimulatedPatient) -> None:
        pid = patient.patient_id
        for model in ACUTE_CONDITIONS:
            n_episodes = int(
                self.rng.poisson(model.episodes_per_year * self.years)
            )
            for __ in range(n_episodes):
                day = self._seasonal_day(model.winter_factor)
                emergency = self.rng.random() < 0.25
                note = ""
                if model.medications and self.rng.random() < 0.5:
                    med = model.medications[
                        int(self.rng.integers(0, len(model.medications)))
                    ]
                    note = f"rx {med}x10"
                self.out.gp_claims.append(
                    GPClaim(
                        patient_id=pid,
                        contact_date=self.noiser.date(_norwegian(day)),
                        icpc_codes=self.noiser.icpc_code(model.icpc2),
                        claim_type="emergency" if emergency else "gp",
                        note=note,
                    )
                )
                if self.rng.random() < model.hospitalization_probability:
                    stay = max(1, int(self.rng.exponential(model.mean_stay_days)))
                    discharge = min(day + stay, self.window.end_day)
                    self.out.hospital_episodes.append(
                        HospitalEpisode(
                            patient_id=pid,
                            admitted=_iso(day),
                            discharged=_iso(discharge),
                            episode_type="inpatient",
                            main_diagnosis=model.icd10,
                            ward="emergency",
                        )
                    )

    def _checkups(self, patient: SimulatedPatient, hypertensive: bool) -> None:
        """Background well-patient contacts (A97 'no disease')."""
        for day in self._visit_days(0.3):
            note = ""
            if self.rng.random() < 0.5:
                sys, dia = self._bp_pair(hypertensive)
                note = self.noiser.bp_note(sys, dia)
            self.out.gp_claims.append(
                GPClaim(
                    patient_id=patient.patient_id,
                    contact_date=self.noiser.date(_norwegian(day)),
                    icpc_codes=self.noiser.icpc_code("A97"),
                    claim_type="gp",
                    note=note,
                )
            )

    def _maybe_pre_birth(self, day: int, patient: SimulatedPatient) -> int:
        """Rarely emit an impossible pre-birth date (registry defect)."""
        if self.rng.random() < self.noiser.config.pre_birth_date:
            return patient.birth_day - int(self.rng.integers(30, 2000))
        return day


def generate_raw_sources(
    n_patients: int,
    seed: int | None = None,
    reference_year: int = 2012,
    years: float = 2.0,
    noise: NoiseConfig | None = None,
) -> RawSources:
    """Generate the full heterogeneous raw-source bundle, deterministically.

    The same seed always produces byte-identical records for a given
    population size (generation is sequential in patient order).
    """
    window = StudyWindow.for_year(reference_year, years)
    population = generate_population(n_patients, seed, reference_year)
    generator = rng(None if seed is None else seed + 1)
    noiser = Noiser(noise or NoiseConfig(), generator)
    out = RawSources(window=window, simulated=population)
    patient_generator = _PatientGenerator(window, generator, noiser, out)
    for patient in population:
        patient_generator.generate(patient)
    return out
