"""Patient trajectory-recognition model (experiment E6).

Section IV: the prototype built individual trajectories for 13,000
selected patients, presented them "in a simplified form" to the patients,
and asked for feedback — "only 1% of the patients said that everything
was wrong ... while 92% could easily recognize their own trajectory and
7% did not remember".

We cannot mail questionnaires, so we model the three response processes
the paper's numbers imply:

* **all wrong** — an identity/linkage error: the trajectory shown is not
  actually the respondent's.  Rate independent of content (~1 %).
* **did not remember** — recall failure, increasing with the
  respondent's age and decreasing with how much recent activity the
  trajectory contains (people remember eventful histories).
* **recognized** — everything else.

The coefficients are calibrated so a population with the selected
cohort's feature distribution reproduces the paper's marginals; the
benchmark asserts the 92/7/1 split within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.config import rng
from repro.events.store import EventStore

__all__ = ["RecallOutcome", "RecallStudy", "run_recognition_study"]


class RecallOutcome(Enum):
    """The three answer categories from the paper's survey."""

    RECOGNIZED = "recognized"
    DID_NOT_REMEMBER = "did_not_remember"
    ALL_WRONG = "all_wrong"


#: Probability that a presented trajectory suffered a linkage/identity
#: error upstream ("everything was wrong"): the paper reports 1 %.
LINKAGE_ERROR_RATE = 0.010

#: Base rate of recall failure for a 60-year-old with an average
#: (8-contact) trajectory; age and sparsity push it up, activity down.
BASE_FORGET_RATE = 0.055
FORGET_AGE_SLOPE = 0.022   # added per decade above 60
FORGET_SPARSITY = 0.035    # added for near-empty trajectories


@dataclass
class RecallStudy:
    """Aggregate outcome of a simulated recognition study."""

    n_patients: int
    counts: dict[RecallOutcome, int]

    def fraction(self, outcome: RecallOutcome) -> float:
        """Share of respondents giving ``outcome``."""
        return self.counts[outcome] / self.n_patients if self.n_patients else 0.0

    def as_percentages(self) -> dict[str, float]:
        """The paper-style summary: percentages per category."""
        return {
            outcome.value: 100.0 * self.fraction(outcome)
            for outcome in RecallOutcome
        }


def _forget_probability(age_years: np.ndarray, n_events: np.ndarray) -> np.ndarray:
    """Per-patient probability of 'did not remember'."""
    age_term = FORGET_AGE_SLOPE * np.maximum(0.0, (age_years - 60.0) / 10.0)
    sparsity_term = FORGET_SPARSITY * np.exp(-n_events / 4.0)
    activity_term = -0.010 * np.log1p(n_events / 8.0)
    p = BASE_FORGET_RATE + age_term + sparsity_term + activity_term
    return np.clip(p, 0.005, 0.60)


def run_recognition_study(
    store: EventStore,
    patient_ids: np.ndarray | list[int],
    reference_day: int,
    seed: int | None = None,
) -> RecallStudy:
    """Simulate mailing simplified trajectories to ``patient_ids``.

    ``reference_day`` is the day ages are computed against (the survey
    date).  Returns per-outcome counts; deterministic in the seed.
    """
    generator = rng(seed)
    ids = np.asarray(list(patient_ids), dtype=np.int64)
    # Features: age and trajectory event count per respondent.
    idx = np.searchsorted(store.patient_ids, ids)
    ages = (reference_day - store.birth_days[idx]) / 365.25
    counts_map = store.event_counts_per_patient(
        store.mask_patients(ids.tolist())
    )
    n_events = np.asarray([counts_map.get(int(p), 0) for p in ids], dtype=float)

    u = generator.random(len(ids))
    wrong = u < LINKAGE_ERROR_RATE
    forget_p = _forget_probability(ages, n_events)
    forget = (~wrong) & (
        generator.random(len(ids)) < forget_p
    )
    recognized = ~(wrong | forget)
    return RecallStudy(
        n_patients=len(ids),
        counts={
            RecallOutcome.ALL_WRONG: int(wrong.sum()),
            RecallOutcome.DID_NOT_REMEMBER: int(forget.sum()),
            RecallOutcome.RECOGNIZED: int(recognized.sum()),
        },
    )
