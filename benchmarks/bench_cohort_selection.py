"""E5 — cohort selection: 13,000 of 168,000 patients (paper Section IV).

"The prototype was used in the research project to select 13,000
patients from a data set of 168,000 patients based on predefined
characteristics."  The predefined characteristics here are the chronic
diabetes cohort with primary-care utilization — the synthetic
population's diabetes prevalence is calibrated so the selection lands at
the paper's ~7.7 % selectivity.

Reproduction criterion (shape): selected count within ±15 % of the
scaled 13,000, and selection latency comfortably interactive.
"""

from __future__ import annotations

from conftest import (
    PAPER_POPULATION,
    PAPER_SELECTED,
    print_experiment,
    scaled,
)

from repro.query.builder import QueryBuilder


def selection_query():
    return (
        QueryBuilder()
        .with_concept("T90")
        .min_count("gp_contact", 2)
        .build()
    )


def test_e5_selected_count_matches_paper(benchmark, paper_store, paper_engine):
    store, __ = paper_store
    query = selection_query()
    ids = benchmark.pedantic(
        lambda: paper_engine.patients(query), rounds=1, iterations=1
    )
    expected = scaled(PAPER_SELECTED)
    selectivity = len(ids) / store.n_patients
    paper_selectivity = PAPER_SELECTED / PAPER_POPULATION
    print_experiment(
        "E5 cohort selection (Section IV)",
        [
            ("population", f"{PAPER_POPULATION:,}", f"{store.n_patients:,}"),
            ("selected", f"{PAPER_SELECTED:,}", f"{len(ids):,}"),
            ("selectivity", f"{paper_selectivity:.1%}", f"{selectivity:.1%}"),
        ],
    )
    assert abs(len(ids) - expected) <= 0.15 * expected
    assert abs(selectivity - paper_selectivity) <= 0.015


def test_e5_selection_latency(benchmark, paper_engine):
    """The selection itself must be interactive on the full population."""
    query = selection_query()
    ids = benchmark(lambda: paper_engine.patients(query))
    assert len(ids) > 0


def test_e5_selection_is_deterministic(benchmark, paper_engine):
    first = paper_engine.patients(selection_query())
    second = benchmark.pedantic(
        lambda: paper_engine.patients(selection_query()),
        rounds=1, iterations=1,
    )
    assert (first == second).all()
