"""E7 / E9 — scale claims from the abstract and conclusion.

* "Health researchers have successfully analyzed large cohorts (over
  100,000 individuals) using the tool" — ingest + query at 100k+.
* "interactive personal health time-lines (for more than 10,000
  individuals) on the web" — batch HTML export throughput.
* "usable ... but it can be challenging to use for very large data
  sets" (E9) — render cost growth with cohort size.
"""

from __future__ import annotations

import os

import pytest
from conftest import print_experiment, scaled

from repro.query.builder import QueryBuilder
from repro.simulate.fast import generate_store_fast
from repro.query.engine import QueryEngine
from repro.viz.html_export import export_batch
from repro.viz.timeline_view import TimelineConfig, TimelineView

PAPER_ANALYZED = 100_000
PAPER_TIMELINES = 10_000


def test_e7_analyze_over_100k(benchmark, paper_store, paper_engine):
    """The full analysis loop (load -> select -> summarize) at scale."""
    import time

    from repro.cohort.stats import summarize

    store, __ = paper_store
    t0 = time.perf_counter()
    ids = paper_engine.patients(
        QueryBuilder().with_concept("T90").min_count("gp_contact", 2).build()
    )
    select_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    stats = benchmark.pedantic(
        lambda: summarize(store, ids), rounds=1, iterations=1
    )
    summarize_s = time.perf_counter() - t0
    print_experiment(
        "E7 cohort analysis at scale (abstract)",
        [
            ("individuals analyzed", ">100,000", f"{store.n_patients:,}"),
            ("events loaded", "-", f"{store.n_events:,}"),
            ("selection time", "interactive", f"{select_s * 1e3:.0f} ms"),
            ("summary time", "-", f"{summarize_s * 1e3:.0f} ms"),
        ],
    )
    assert store.n_patients >= scaled(PAPER_ANALYZED)
    assert stats.n_patients == len(ids)
    assert select_s < 2.0


def test_e7_generation_throughput(benchmark):
    """Regenerating a 20k-patient population (the ingest-side cost)."""
    store, __ = benchmark.pedantic(
        lambda: generate_store_fast(20_000, seed=1), rounds=2, iterations=1
    )
    assert store.n_patients == 20_000


def test_e7_export_10k_web_timelines(benchmark, paper_store, paper_engine,
                                     tmp_path):
    """The pastas.no deployment: >10,000 interactive HTML timelines."""
    import time

    store, __ = paper_store
    target = scaled(PAPER_TIMELINES)
    ids = paper_engine.patients(
        QueryBuilder().with_concept("T90").build()
    ).tolist()
    if len(ids) < target:
        extra = [p for p in store.patient_ids.tolist() if p not in set(ids)]
        ids = ids + extra[: target - len(ids)]
    ids = ids[:target]
    t0 = time.perf_counter()
    count = benchmark.pedantic(
        lambda: export_batch(store, ids, str(tmp_path / "web"),
                             simplified=True),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - t0
    pages = os.listdir(tmp_path / "web")
    print_experiment(
        "E7 web timeline export (abstract)",
        [
            ("timelines", ">10,000", f"{count:,}"),
            ("wall time", "-", f"{elapsed:.1f} s"),
            ("throughput", "-", f"{count / elapsed:.0f} pages/s"),
        ],
    )
    assert count >= target * 0.98  # allow a few empty histories
    assert len(pages) == count + 1  # plus index.html


@pytest.mark.parametrize("n_rows", [100, 1_000, 5_000])
def test_e9_view_cost_growth(benchmark, paper_store, paper_engine, n_rows):
    """Render cost vs cohort size: linear-ish ink, growing wall time —
    'challenging to use for very large data sets'."""
    import time

    store, __ = paper_store
    ids = paper_engine.patients(
        QueryBuilder().with_category("gp_contact").build()
    )[:n_rows].tolist()
    if len(ids) < n_rows:
        pytest.skip("population too small at this scale")
    t0 = time.perf_counter()
    scene = benchmark.pedantic(
        lambda: TimelineView(
            store, TimelineConfig(show_legend=False)
        ).render(ids),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - t0
    print_experiment(
        f"E9 view cost @ {n_rows} histories",
        [
            ("marks", "-", f"{scene.ink_marks:,}"),
            ("svg bytes", "-", f"{len(scene.svg_text):,}"),
            ("render time", "grows with size", f"{elapsed:.2f} s"),
            ("row height", "sub-pixel when huge",
             f"{scene.row_height:.2f} px"),
        ],
    )
    assert len(scene.rows) == n_rows


def test_e9_density_overview_remedy(benchmark, paper_store):
    """The overview-first remedy: aggregate density at full population
    costs a fraction of the 5,000-row timeline render (its ink is
    O(cells), not O(events))."""
    import time

    from repro.viz.density_view import render_density

    store, __ = paper_store
    t0 = time.perf_counter()
    scene = benchmark.pedantic(
        lambda: render_density(store), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - t0
    print_experiment(
        "E9 density overview at full population",
        [
            ("patients aggregated", "-", f"{scene.n_patients:,}"),
            ("grid", "-",
             f"{scene.n_row_buckets} x {scene.n_month_bins} cells"),
            ("render time", "<< 5k-row timeline", f"{elapsed:.2f} s"),
            ("svg rects", "O(cells)",
             f"{scene.svg_text.count('<rect'):,}"),
        ],
    )
    assert int(scene.grid.sum()) == store.n_events
    assert scene.svg_text.count("<rect") <= (
        scene.n_row_buckets * scene.n_month_bins + 2
    )


def test_e7_full_fidelity_ingest(benchmark):
    """The real integration pipeline — native-format records through
    parsing, free-text extraction, validation and dedup — at 20k
    patients (the fast path covers 168k; this measures the paper's core
    data path at fidelity)."""
    import time

    from repro.simulate.trajectories import generate_raw_sources
    from repro.sources.integrate import IntegrationPipeline

    n = scaled(20_000)
    t0 = time.perf_counter()
    raw = generate_raw_sources(n, seed=5)
    generate_s = time.perf_counter() - t0

    pipeline = IntegrationPipeline(horizon_day=raw.window.end_day)
    t0 = time.perf_counter()
    store, report = benchmark.pedantic(
        lambda: pipeline.run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        ),
        rounds=1, iterations=1,
    )
    integrate_s = time.perf_counter() - t0
    print_experiment(
        "E7 full-fidelity integration pipeline",
        [
            ("patients", "-", f"{n:,}"),
            ("raw records", "-", f"{raw.total_records():,}"),
            ("events loaded", "-", f"{report.loaded_events:,}"),
            ("bad records skipped", "counted, not fatal",
             f"{report.failed_records:,}"),
            ("duplicates collapsed", "-", f"{report.dedup.removed:,}"),
            ("generate time", "-", f"{generate_s:.1f} s"),
            ("integrate time", "-", f"{integrate_s:.1f} s"),
            ("throughput", "-",
             f"{report.loaded_events / integrate_s:,.0f} events/s"),
        ],
    )
    assert store.n_events == report.loaded_events
    assert report.failed_records < raw.total_records() * 0.02
