"""Ingestion throughput under injected faults (ISSUE-1 robustness).

Measures what resilience costs: the full integration pipeline over the
same raw-source bundle at 0%, 1% and 10% corrupt-record rates (each bad
record is parsed, rejected and dead-lettered), plus a run with one
registry completely down (the circuit-breaker degradation path).

Faults are injected with the seeded :class:`FaultySource` harness, so
every rate's schedule is identical across runs and machines.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_experiment

from repro.config import ResilienceConfig
from repro.resilience.faults import FaultPlan, FaultySource
from repro.resilience.quarantine import QuarantineStore
from repro.simulate import generate_raw_sources
from repro.sources.integrate import IntegrationPipeline

#: Population for the fault benchmark (raw-record generation is the
#: slow, non-vectorized path, so this stays modest).
POPULATION = 1_000


@pytest.fixture(scope="module")
def raw_bundle():
    return generate_raw_sources(POPULATION, seed=42)


def _pipeline(raw, quarantine=None):
    # Zero backoff: the benchmark measures pipeline work, not sleeping.
    return IntegrationPipeline(
        raw.window.end_day,
        resilience=ResilienceConfig(backoff_base_s=0.0, backoff_max_s=0.0),
        quarantine=quarantine,
        sleep=lambda s: None,
    )


def _run_with_corrupt_rate(raw, rate: float, quarantine=None):
    gp = FaultySource(raw.gp_claims, FaultPlan(seed=3, corrupt_rate=rate),
                      source="gp_claims")
    specialist = FaultySource(
        raw.specialist_claims, FaultPlan(seed=5, corrupt_rate=rate),
        source="specialist_claims",
    )
    t0 = time.perf_counter()
    store, report = _pipeline(raw, quarantine).run(
        raw.patients, gp, raw.hospital_episodes,
        raw.municipal_records, specialist,
    )
    return store, report, time.perf_counter() - t0


def test_throughput_vs_fault_rate(raw_bundle, tmp_path):
    """Records/second at increasing corruption, dead-lettering enabled."""
    raw = raw_bundle
    total = raw.total_records()
    rows = []
    reports = {}
    for rate in (0.0, 0.01, 0.10):
        quarantine = QuarantineStore(
            str(tmp_path / f"dead_{int(rate * 100)}.jsonl")
        )
        store, report, elapsed = _run_with_corrupt_rate(
            raw, rate, quarantine
        )
        reports[rate] = report
        rows.append((
            f"{rate:4.0%} corrupt",
            "completes",
            f"{total / elapsed:,.0f} rec/s  "
            f"({report.loaded_events:,} events, "
            f"{report.quarantined:,} quarantined, {elapsed:.2f} s)",
        ))
        assert not report.is_degraded
    print_experiment("Ingestion throughput under faults", rows)
    # more corruption, more dead letters; zero-fault run only sees the
    # simulator's own natively-bad records
    assert (reports[0.0].quarantined < reports[0.01].quarantined
            < reports[0.10].quarantined)
    assert reports[0.10].loaded_events < reports[0.0].loaded_events


def test_down_source_degradation_cost(raw_bundle):
    """A dead registry must cost (bounded) failed reads, not a crash."""
    raw = raw_bundle
    down = FaultySource(
        raw.municipal_records, FaultPlan(seed=4, down=True),
        source="municipal_records",
    )
    t0 = time.perf_counter()
    store, report = _pipeline(raw).run(
        raw.patients, raw.gp_claims, raw.hospital_episodes,
        down, raw.specialist_claims,
    )
    elapsed = time.perf_counter() - t0
    print_experiment(
        "Degraded-source ingestion",
        [
            ("run completes", "required", "yes"),
            ("degraded sources", "-",
             ", ".join(report.degraded_sources) or "none"),
            ("failed reads", "bounded", f"{report.failed_reads}"),
            ("events loaded", "-", f"{report.loaded_events:,}"),
            ("wall clock", "-", f"{elapsed:.2f} s"),
        ],
    )
    assert "municipal_records" in report.degraded_sources
    # bounded by failure_threshold, not by the registry's size
    assert report.failed_reads <= ResilienceConfig().failure_threshold
    assert store.n_events > 0


def test_retry_overhead_on_transient_faults(raw_bundle, benchmark):
    """Transient blips are retried inline; all events still load."""
    raw = raw_bundle

    def run():
        gp = FaultySource(
            raw.gp_claims,
            FaultPlan(seed=13, transient_rate=0.05, transient_failures=1),
            source="gp_claims",
        )
        return _pipeline(raw).run(raw.patients, gp, raw.hospital_episodes,
                                  raw.municipal_records,
                                  raw.specialist_claims)

    store, report = benchmark.pedantic(run, rounds=2, iterations=1)
    baseline, base_report = _pipeline(raw).run(
        raw.patients, raw.gp_claims, raw.hospital_episodes,
        raw.municipal_records, raw.specialist_claims,
    )
    print_experiment(
        "Retry overhead (5% transient reads)",
        [
            ("read retries", "-", f"{report.retries:,}"),
            ("events loaded", f"{base_report.loaded_events:,}",
             f"{report.loaded_events:,}"),
        ],
    )
    assert report.retries > 0
    assert store.content_equal(baseline)
