"""E3 (Figure 3) — preattentive pop-out vs conjunction search.

"Find the red circle" (Figure 3): pop-out time is independent of the
number of distracting elements, while conjunction search "increases
linearly with the number of distracting elements" (Section II-B1).

Reproduction criterion (shape): the fitted pop-out slope is ~0 ms/item
and the conjunction slope is clearly positive and near the serial model
(half the per-item cost, target-present trials).
"""

from __future__ import annotations

from conftest import print_experiment

from repro.perception.search_model import (
    BASE_RT_MS,
    SERIAL_COST_MS_PER_ITEM,
    fit_slope,
    make_conjunction_task,
    make_popout_task,
    simulate_search_times,
)

DISPLAY_SIZES = (10, 20, 40, 80, 160, 320, 640)


def _series(task_factory):
    return [
        simulate_search_times(task_factory(n), n_trials=200, seed=1000 + n)
        for n in DISPLAY_SIZES
    ]


def test_e3_flat_vs_linear(benchmark):
    popout, conjunction = benchmark.pedantic(
        lambda: (_series(make_popout_task), _series(make_conjunction_task)),
        rounds=1, iterations=1,
    )
    popout_slope, popout_icpt = fit_slope(popout)
    conj_slope, conj_icpt = fit_slope(conjunction)

    rows = [
        (f"pop-out RT @ {r.n_distractors}", "flat",
         f"{r.mean_rt_ms:.0f} ms") for r in popout
    ]
    rows += [
        (f"conjunction RT @ {r.n_distractors}", "linear",
         f"{r.mean_rt_ms:.0f} ms") for r in conjunction
    ]
    rows.append(("pop-out slope", "~0 ms/item", f"{popout_slope:.3f}"))
    rows.append(("conjunction slope", ">0 ms/item", f"{conj_slope:.2f}"))
    print_experiment("E3 / Figure 3 visual search", rows)

    assert abs(popout_slope) < 0.5
    assert conj_slope > 5.0
    # Serial self-terminating model: slope ~ cost/2 on present trials.
    assert abs(conj_slope - SERIAL_COST_MS_PER_ITEM / 2) < 5.0
    # Intercepts share the base RT; the serial model adds one item's
    # half-cost plus fit noise to the conjunction intercept.
    assert abs(popout_icpt - BASE_RT_MS) < 30.0
    assert abs(conj_icpt - BASE_RT_MS) < 150.0


def test_e3_search_simulation_benchmark(benchmark):
    result = benchmark(
        lambda: simulate_search_times(make_conjunction_task(320),
                                      n_trials=200, seed=3)
    )
    assert result.mode == "conjunction"


def test_e3_classification_is_display_driven(benchmark):
    """The model derives the mode from the display's feature structure —
    swapping distractor colors flips pop-out into conjunction."""
    from repro.perception.preattentive import (
        DisplayItem,
        SearchTask,
        classify_search,
    )

    target = DisplayItem.of(color_hue="red", curvature="circle")
    popout = SearchTask(
        target,
        [DisplayItem.of(color_hue="blue", curvature="circle")] * 20,
    )
    conjunction = SearchTask(
        target,
        [DisplayItem.of(color_hue="blue", curvature="circle")] * 10
        + [DisplayItem.of(color_hue="red", curvature="square")] * 10,
    )
    modes = benchmark.pedantic(
        lambda: (classify_search(popout), classify_search(conjunction)),
        rounds=1, iterations=1,
    )
    assert modes == ("preattentive", "conjunction")
