"""Aggregate-first cohort views: sketch folds vs row materialization.

The sketch-subsystem claim (ISSUE 8): cohort density views must be
served from per-shard sketch sidecar folds with **zero** per-patient
row materialization, at least 10x faster at E5 scale than the
row-materialization alternative (materialize the whole store, then
aggregate), and with fold latency roughly flat in rows-per-shard —
the sidecar is a fixed-size summary, so a million-patient fold costs
about the same as a ten-thousand-patient one.

Populations are generated with the **streamed** generator
(:func:`repro.simulate.stream.generate_streamed_store`) straight into
sharded stores, E4 through E6 (scaled by ``REPRO_BENCH_SCALE``), which
also exercises the delta-ingestion path at benchmark scale.  Results
are printed as a ``BENCH {json}`` line.
"""

from __future__ import annotations

import json
import time

import pytest
from conftest import bench_scale, print_experiment

from repro.config import ShardConfig
from repro.shard import ShardedEventStore
from repro.simulate.stream import generate_streamed_store
from repro.viz.cohort_views import render_cohort_density
from repro.viz.density_view import render_density

#: Sketch path must beat the row path by at least this factor at E5.
REQUIRED_SPEEDUP = 10.0

#: Fold latency across a 100x rows-per-shard range may grow at most
#: this much and still count as "roughly flat" (timing noise included).
FLATNESS_BOUND = 10.0

N_SHARDS = 8

#: Population scales (patients); shard count is held fixed so
#: rows-per-shard grows 100x from E4 to E6.
SCALES = {"E4": 10_000, "E5": 100_000, "E6": 1_000_000}


def _scaled(count: int) -> int:
    return max(500, int(count * bench_scale()))


@pytest.fixture(scope="module")
def streamed_stores(tmp_path_factory):
    """One streamed sharded store per scale, E4..E6."""
    root = tmp_path_factory.mktemp("sketchbench")
    stores = {}
    for label, population in SCALES.items():
        n = _scaled(population)
        path = str(root / f"{label.lower()}.shards")
        report = generate_streamed_store(
            n, path, n_shards=N_SHARDS,
            batch_size=max(200, min(50_000, n // 4)), seed=17,
        )
        stores[label] = (path, report)
    return stores


def _sketch_path_latency(path: str) -> tuple[float, float, dict]:
    """(cold_s, warm_s, counters) for fold + render on a fresh open."""
    store = ShardedEventStore(path, config=ShardConfig(
        verify_checksums=False))
    start = time.perf_counter()
    scene = render_cohort_density(store.store_sketch())
    cold = time.perf_counter() - start
    assert scene.n_groups > 0 and scene.n_buckets > 0
    start = time.perf_counter()
    render_cohort_density(store.store_sketch())
    warm = time.perf_counter() - start
    return cold, warm, dict(store.counters)


def test_density_view_latency_and_speedup(streamed_stores):
    rows = []
    bench: dict = {
        "experiment": "sketch_views",
        "scale_factor": bench_scale(),
        "n_shards": N_SHARDS,
        "scales": {},
    }
    cold_by_label = {}
    for label, (path, report) in streamed_stores.items():
        cold, warm, counters = _sketch_path_latency(path)
        # The headline contract: the sketch path touched zero rows.
        assert counters["row_materializations"] == 0, (
            f"{label}: sketch path materialized rows"
        )
        cold_by_label[label] = cold
        bench["scales"][label] = {
            "patients": report.n_patients,
            "events": report.n_events,
            "density_cold_s": round(cold, 4),
            "density_warm_s": round(warm, 4),
            "sidecar_loads": counters["sketch_sidecar_loads"],
            "sketch_rebuilds": counters["sketch_rebuilds"],
        }
        rows.append((
            f"{label} density ({report.n_patients:,} patients)",
            "n/a",
            f"{cold * 1000:.1f} ms cold / {warm * 1000:.1f} ms warm",
        ))

    # Row-materialization baseline: materialize every row, then
    # aggregate and render the per-patient density overview.  The 10x
    # claim is made *at E5 scale* (100k patients), so the baseline runs
    # on whichever store is closest to that size — under
    # REPRO_BENCH_SCALE < 1 the nominal "E5" store is smaller and the
    # scaled-down "E6" store is the honest stand-in.
    baseline_label = min(
        streamed_stores,
        key=lambda lbl: (streamed_stores[lbl][1].n_patients < 100_000,
                         abs(streamed_stores[lbl][1].n_patients - 100_000)),
    )
    base_path, base_report = streamed_stores[baseline_label]
    store = ShardedEventStore(base_path, config=ShardConfig(
        verify_checksums=False))
    start = time.perf_counter()
    flat = store.materialize_store()
    render_density(flat)
    row_s = time.perf_counter() - start
    assert store.counters["row_materializations"] == 1
    speedup = row_s / max(cold_by_label[baseline_label], 1e-9)
    bench["row_baseline"] = {
        "label": baseline_label,
        "patients": base_report.n_patients,
        "row_path_s": round(row_s, 4),
        "speedup": round(speedup, 1),
    }
    rows.append((f"{baseline_label} row-materialization path "
                 f"({base_report.n_patients:,} patients)",
                 "n/a", f"{row_s:.3f} s"))
    rows.append((f"{baseline_label} sketch speedup",
                 f">= {REQUIRED_SPEEDUP:.0f}x", f"{speedup:.1f}x"))

    # Fold latency vs rows-per-shard: 100x more rows, roughly flat fold.
    flatness = cold_by_label["E6"] / max(cold_by_label["E4"], 1e-9)
    bench["fold_growth_e4_to_e6"] = round(flatness, 2)
    rows.append(("fold growth E4->E6 (100x rows)",
                 f"<= {FLATNESS_BOUND:.0f}x", f"{flatness:.2f}x"))

    print_experiment("Aggregate-first density views (ISSUE 8)", rows)
    print("BENCH " + json.dumps(bench, sort_keys=True))

    # Below ~E4.5 the row path is too cheap for the E5-scale claim to
    # be meaningful; the speedup is still reported, just not enforced.
    if base_report.n_patients >= 50_000:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"sketch path only {speedup:.1f}x faster than the row path "
            f"on {base_report.n_patients:,} patients"
        )
    assert flatness <= FLATNESS_BOUND, (
        f"fold latency grew {flatness:.1f}x over a 100x row range"
    )


def test_query_masked_fold_touches_no_rows(streamed_stores):
    """Query-refined sketches subset per shard without whole-store
    materialization, and agree with the sidecar fold on totals."""
    path, report = streamed_stores["E4"]
    store = ShardedEventStore(path, config=ShardConfig(
        verify_checksums=False))
    from repro.query.parser import parse_query
    from repro.shard import ParallelExecutor

    executor = ParallelExecutor(config=store.config)
    sketch = executor.sketch_shards(store, parse_query("sex F"))
    whole = store.store_sketch()
    assert 0 < sketch.n_patients < whole.n_patients
    assert store.counters["row_materializations"] == 0
    # Sanity: a refined fold is a sub-multiset of the whole-store fold.
    assert sketch.n_events <= whole.n_events


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q", "-s"])
