"""E1 (Figure 1) — the main cohort timeline view.

Figure 1 shows gray history bars with diagnosis rectangles, blood-
pressure arrows and medication-class background colors, detail panes and
two zoom sliders.  The benchmark regenerates the artifact at increasing
cohort sizes and records render cost — the series behind the paper's
conclusion that the tool "can be challenging to use for very large data
sets" (E9 quantifies the growth; this file owns the artifact).
"""

from __future__ import annotations

import pytest
from conftest import print_experiment

from repro.query.builder import QueryBuilder
from repro.viz.timeline_view import TimelineConfig, TimelineView


@pytest.fixture(scope="module")
def cohort_ids(paper_engine):
    query = QueryBuilder().with_concept("T90").build()
    return paper_engine.patients(query)


def _render(store, ids):
    view = TimelineView(store, TimelineConfig())
    return view.render(list(ids))


@pytest.mark.parametrize("n_rows", [100, 1_000])
def test_e1_render_benchmark(benchmark, paper_store, cohort_ids, n_rows):
    store, __ = paper_store
    ids = cohort_ids[:n_rows]
    if len(ids) < n_rows:
        pytest.skip("cohort smaller than requested rows at this scale")
    scene = benchmark.pedantic(
        lambda: _render(store, ids), rounds=3, iterations=1
    )
    assert len(scene.rows) == n_rows
    assert scene.ink_marks > n_rows  # bars plus event marks


def test_e1_figure_artifact_structure(benchmark, paper_store, cohort_ids):
    """The Figure 1 ingredients are all present in the rendering."""
    store, __ = paper_store
    scene = benchmark.pedantic(
        lambda: _render(store, cohort_ids[:200]), rounds=1, iterations=1
    )
    kinds = {m.kind for m in scene.marks}
    categories = {m.category for m in scene.marks}
    mark_classes = {m.mark_class for m in scene.marks}
    print_experiment(
        "E1 / Figure 1 timeline artifact",
        [
            ("history bars", "gray bars", "bar" if "bar" in kinds else "-"),
            ("diagnosis glyphs", "small rectangles",
             "RectangleGlyph" if "RectangleGlyph" in mark_classes else "-"),
            ("blood-pressure marks", "arrows",
             "ArrowGlyph" if "ArrowGlyph" in mark_classes else "-"),
            ("medication coloring", "classes of medication",
             f"{len(scene.medication_colors)} ATC groups"),
            ("marks drawn", "-", f"{scene.ink_marks:,}"),
            ("svg bytes", "-", f"{len(scene.svg_text):,}"),
        ],
    )
    assert "bar" in kinds
    assert "RectangleGlyph" in mark_classes
    assert "ArrowGlyph" in mark_classes
    assert "blood_pressure" in categories
    assert len(scene.medication_colors) >= 3


def test_e1_aligned_mode(benchmark, paper_store, paper_engine, cohort_ids):
    """Section IV-B's second axis mode: months around the anchor."""
    from repro.cohort.alignment import compute_alignment
    from repro.query.ast import Concept

    store, __ = paper_store
    alignment = compute_alignment(paper_engine, Concept("T90"), "first T90")
    view = TimelineView(store, TimelineConfig(mode="aligned"))
    scene = benchmark.pedantic(
        lambda: view.render(cohort_ids[:300].tolist(), alignment),
        rounds=1, iterations=1,
    )
    assert "+6 mo" in scene.svg_text or "+3 mo" in scene.svg_text \
        or "mo" in scene.svg_text
