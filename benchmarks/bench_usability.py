"""U1 — usability model: task costs across interface designs.

The abstract claims "utility, usability and effect have been tested
extensively and the results so far are promising"; the published paper
reports no usability table.  We model the comparison the claims imply:
a researcher's task mix executed under four interface designs (text EHR,
list view, timeline without details-on-demand, the full workbench),
costed with the Section II-C1 cost-of-knowledge model.

Reproduction criterion (shape): the workbench design dominates the task
mix, and its advantage widens with data-set size — consistent with both
the "promising" usability claim and the "challenging for very large data
sets" caveat (navigation cost is what remains).
"""

from __future__ import annotations

from conftest import print_experiment

from repro.perception.cost_of_knowledge import DESIGNS, knowledge_cost

#: The task mix: (label, marks on screen, details to read, repetitions).
TASK_MIX = (
    ("review one patient's contacts", 60, 12, 5),
    ("scan a 500-patient cohort", 12_000, 8, 3),
    ("audit a 5,000-patient selection", 120_000, 10, 2),
)


def _total_cost(design, tasks=TASK_MIX) -> float:
    return sum(
        repetitions * knowledge_cost(design, total_marks, k_details)
        for __, total_marks, k_details, repetitions in tasks
    )


def test_u1_workbench_dominates_task_mix(benchmark):
    costs = benchmark.pedantic(
        lambda: {d.name: _total_cost(d) for d in DESIGNS},
        rounds=1, iterations=1,
    )
    ordered = sorted(costs.items(), key=lambda kv: kv[1])
    rows = [
        (name, "lower is better", f"{cost / 60:.1f} min")
        for name, cost in ordered
    ]
    best = ordered[0][0]
    rows.append(("best design", "timeline-workbench", best))
    print_experiment("U1 usability model: task-mix cost per design", rows)
    assert best == "timeline-workbench"
    # The workbench is at least 3x cheaper than the text EHR baseline.
    assert costs["text-ehr"] > 3.0 * costs["timeline-workbench"]


def test_u1_advantage_across_scale(benchmark):
    """The workbench wins at every scale, but its *margin narrows* on
    very large data sets as zoom navigation costs accumulate — the
    cost-of-knowledge model independently reproduces the paper's
    conclusion: "usable ... but challenging to use for very large data
    sets"."""
    workbench = next(d for d in DESIGNS if d.name == "timeline-workbench")
    text_ehr = next(d for d in DESIGNS if d.name == "text-ehr")

    def ratios():
        out = []
        for total_marks in (500, 5_000, 50_000, 500_000):
            ratio = (
                knowledge_cost(text_ehr, total_marks, 10)
                / knowledge_cost(workbench, total_marks, 10)
            )
            out.append((total_marks, ratio))
        return out

    series = benchmark.pedantic(ratios, rounds=1, iterations=1)
    rows = [
        (f"advantage @ {marks:,} marks", "wins, margin narrows",
         f"{ratio:.1f}x")
        for marks, ratio in series
    ]
    print_experiment("U1 workbench advantage vs scale", rows)
    ratios_only = [r for __, r in series]
    # Always ahead of the text EHR ...
    assert all(r > 1.5 for r in ratios_only)
    # ... but the margin narrows at scale (the paper's caveat) ...
    assert ratios_only[-1] < ratios_only[0]
    # ... because the workbench's own navigation cost grows with scale.
    small = knowledge_cost(workbench, 500, 10)
    huge = knowledge_cost(workbench, 500_000, 10)
    assert huge > 2.0 * small
