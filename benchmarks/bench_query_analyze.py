"""Static analyzer overhead vs cold planner time at paper scale.

The analyzer runs on the hot serving path whenever the ``analyze=True``
gate (or the webapp) is on, so it must be cheap relative to the work it
guards.  Acceptance criterion (ISSUE 5): analyzing the refinement
session costs **under 5 % of the cold planner time** for the same
queries on the E5-scale (168k-patient) store — i.e. turning the gate on
is effectively free.

Also pins the rejection latency itself: a crafted catastrophic
backtracking pattern must be refused in well under 100 ms, while
*matching* it against even one long code would take seconds.
"""

from __future__ import annotations

import time

from bench_query_planner import refinement_session
from conftest import print_experiment

from repro.errors import QueryAnalysisError
from repro.query.analyze import AnalysisContext, analyze_query
from repro.query.ast import CodeMatch, HasEvent
from repro.query.engine import QueryEngine

#: Analyzer time as a fraction of cold planner time (the 5 % criterion).
MAX_OVERHEAD_FRACTION = 0.05

#: Static rejection budget for a pathological pattern (milliseconds).
MAX_REJECTION_MS = 100.0


def _analyze_session(context, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        analyze_query(query, context)
    return time.perf_counter() - start


def test_analyzer_overhead_under_5pct_of_cold_plan(paper_store):
    store, __ = paper_store
    queries = refinement_session(store)
    context = AnalysisContext.from_store(store)

    analyze_query(queries[0], context)  # warm lazy imports
    analyze_s = min(_analyze_session(context, queries) for __ in range(3))

    cold = QueryEngine(store, optimize=True)
    start = time.perf_counter()
    for query in queries:
        cold.patients(query)
    cold_s = time.perf_counter() - start

    fraction = analyze_s / cold_s
    print_experiment(
        "Static analyzer (ISSUE 5): overhead on the refinement session "
        f"of {len(queries)} queries",
        [
            ("planner cold", "-", f"{cold_s * 1e3:8.1f} ms"),
            ("analyzer", "-", f"{analyze_s * 1e3:8.1f} ms"),
            ("overhead", f"< {MAX_OVERHEAD_FRACTION:.0%}",
             f"{fraction:8.2%}"),
        ],
    )
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"analyzer cost {fraction:.1%} of cold planning "
        f"(analyze {analyze_s * 1e3:.1f} ms, cold {cold_s * 1e3:.1f} ms)"
    )


def test_pathological_pattern_rejected_fast(paper_store):
    store, __ = paper_store
    engine = QueryEngine(store, analyze=True)
    query = HasEvent(CodeMatch("ICPC-2", "(A+)+"))
    engine.analyze(query)  # warm lazy imports

    start = time.perf_counter()
    rejected = False
    try:
        engine.patients(query)
    except QueryAnalysisError as exc:
        rejected = any(d.rule == "QA102" for d in exc.diagnostics)
    elapsed_ms = (time.perf_counter() - start) * 1e3

    print_experiment(
        "Static analyzer (ISSUE 5): catastrophic-backtracking rejection",
        [
            ("rejected", "yes", "yes" if rejected else "NO"),
            ("latency", f"< {MAX_REJECTION_MS:.0f} ms",
             f"{elapsed_ms:8.1f} ms"),
        ],
    )
    assert rejected, "gate failed to reject the ReDoS pattern"
    assert elapsed_ms < MAX_REJECTION_MS, (
        f"rejection took {elapsed_ms:.1f} ms"
    )
