"""E2 (Figure 2) — the NSEPter baseline graphs.

Figure 2(a): a small graph "merged around the first incidence of
diabetes" (T90), thicker edges where several patients follow the same
path.  Figure 2(b): several hundred patients, "basically a web of
edges" — quantified here through readability metrics and contrasted with
the timeline view's graceful degradation.
"""

from __future__ import annotations

import pytest
from conftest import print_experiment

from repro.nsepter.graph import build_graph
from repro.nsepter.layout import layout_graph, readability_metrics
from repro.nsepter.merge import merge_by_regex, recursive_neighbour_merge
from repro.query.builder import QueryBuilder
from repro.viz.graph_view import render_graph
from repro.viz.timeline_view import TimelineConfig, TimelineView


@pytest.fixture(scope="module")
def diabetic_ids(paper_engine):
    query = QueryBuilder().with_code("ICPC-2", "T90").build()
    return paper_engine.patients(query)


def test_e2a_merged_graph_around_t90(benchmark, paper_store, diabetic_ids):
    """Figure 2(a): 50 diabetic histories merged around T90."""
    store, __ = paper_store
    cohort = store.to_cohort(diabetic_ids[:50].tolist())
    graph = build_graph(cohort)
    before = graph.n_nodes
    benchmark.pedantic(
        lambda: recursive_neighbour_merge(
            graph, merge_by_regex(graph, "T90"), depth=2
        ),
        rounds=1, iterations=1,
    )
    layout = layout_graph(graph)
    edges = graph.edges()
    max_weight = max(edges.values())
    svg = render_graph(graph, layout)
    print_experiment(
        "E2a / Figure 2(a) merged NSEPter graph",
        [
            ("histories", "~50", "50"),
            ("nodes before merge", "-", f"{before:,}"),
            ("nodes after merge", "fewer", f"{graph.n_nodes:,}"),
            ("max edge weight", ">1 (thick lines)", str(max_weight)),
        ],
    )
    assert graph.n_nodes < before
    assert max_weight > 1  # several patients share a path
    assert "<svg" in svg.to_string()


def test_e2a_merge_benchmark(benchmark, paper_store, diabetic_ids):
    store, __ = paper_store
    cohort = store.to_cohort(diabetic_ids[:50].tolist())

    def run():
        graph = build_graph(cohort)
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=2)
        return graph

    graph = benchmark(run)
    assert graph.n_nodes > 0


def test_e2b_scale_readability_collapse(benchmark, paper_store, diabetic_ids):
    """Figure 2(b): at several hundred patients the graph view drowns in
    crossings while the timeline view's ink stays row-bounded."""
    store, __ = paper_store
    sizes = (50, 200, 400)
    crossings: list[int] = []
    timeline_marks: list[int] = []

    def measure_largest():
        ids = diabetic_ids[: sizes[-1]].tolist()
        graph = build_graph(store.to_cohort(ids))
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=1)
        return readability_metrics(layout_graph(graph), max_pairs=400_000)

    benchmark.pedantic(measure_largest, rounds=1, iterations=1)
    for n in sizes:
        ids = diabetic_ids[:n].tolist()
        cohort = store.to_cohort(ids)
        graph = build_graph(cohort)
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=1)
        metrics = readability_metrics(layout_graph(graph),
                                      max_pairs=400_000)
        crossings.append(metrics.edge_crossings)
        scene = TimelineView(store, TimelineConfig(show_legend=False)).render(
            ids
        )
        timeline_marks.append(scene.ink_marks)

    growth_graph = crossings[-1] / max(1, crossings[0])
    growth_marks = timeline_marks[-1] / max(1, timeline_marks[0])
    rows = [
        (f"crossings @ {n}", "web of edges", f"{c:,}")
        for n, c in zip(sizes, crossings)
    ]
    rows += [
        (f"timeline marks @ {n}", "linear in rows", f"{m:,}")
        for n, m in zip(sizes, timeline_marks)
    ]
    rows.append(("crossing growth 50->400", "superlinear (>8x)",
                 f"{growth_graph:.1f}x"))
    rows.append(("timeline growth 50->400", "~linear (~8x)",
                 f"{growth_marks:.1f}x"))
    print_experiment("E2b / Figure 2(b) readability collapse", rows)

    assert crossings[-1] > crossings[0]
    # Graph crossings grow much faster than the timeline's linear ink.
    assert growth_graph > 2.0 * growth_marks
    # Timeline ink is ~linear in rows (within 2x of proportional).
    assert growth_marks < 2.0 * (sizes[-1] / sizes[0])
