"""Static-analysis gate cost (ISSUE 10).

The dataflow rule family (LK201–LK204) builds per-function CFGs, a
project call graph, and interprocedural summaries on every CI run, so
its wall time is part of the developer loop.  This benchmark measures a
*cold* full-repo pass (the cached :class:`~tools.lintkit.callgraph.Project`
is dropped first) plus a cold dataflow-only pass over ``src/``, reports
per-rule timings, and enforces the budget the gate was designed to:
the dataflow pass over ``src/`` must finish within 30 seconds.

Results are printed as a machine-readable ``BENCH {json}`` line.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from conftest import print_experiment

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import all_rules, lint_paths
from tools.lintkit.rules_dataflow import _PROJECT_CACHE

#: Hard ceiling for the dataflow family over src/ (seconds).
DATAFLOW_BUDGET_S = 30.0

_DATAFLOW_IDS = {"LK201", "LK202", "LK203", "LK204"}


def _drop_project_cache() -> None:
    # Cold-start measurement: parsing + CFGs + summaries, not a dict hit.
    _PROJECT_CACHE.clear()


def test_lintkit_gate_wall_time():
    _drop_project_cache()
    timings: dict[str, float] = {}
    start = time.perf_counter()
    violations = lint_paths(
        [ROOT / "src" / "repro", ROOT / "tools"], root=ROOT,
        timings=timings,
    )
    full_wall = time.perf_counter() - start
    assert not violations, "the repo must lint clean before timing means much"

    _drop_project_cache()
    dataflow_rules = [r for r in all_rules() if r.id in _DATAFLOW_IDS]
    start = time.perf_counter()
    lint_paths([ROOT / "src" / "repro"], rules=dataflow_rules, root=ROOT)
    dataflow_wall = time.perf_counter() - start

    per_rule_ms = {
        rule_id: round(seconds * 1e3, 1)
        for rule_id, seconds in sorted(timings.items())
    }
    bench = {
        "bench": "lintkit",
        "full_repo_wall_s": round(full_wall, 3),
        "dataflow_src_wall_s": round(dataflow_wall, 3),
        "dataflow_budget_s": DATAFLOW_BUDGET_S,
        "rules": len(all_rules()),
        "violations": 0,
        "per_rule_ms": per_rule_ms,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    slowest = sorted(per_rule_ms.items(), key=lambda kv: -kv[1])[:3]
    print_experiment(
        "Static-analysis gate cost (ISSUE 10): cold full-repo lint",
        [
            ("full repo (all rules)", "seconds, not minutes",
             f"{full_wall:6.2f} s"),
            ("dataflow family over src/", f"<= {DATAFLOW_BUDGET_S:.0f} s",
             f"{dataflow_wall:6.2f} s"),
            *[
                (f"slowest rule: {rule_id}", "-", f"{ms:8.1f} ms")
                for rule_id, ms in slowest
            ],
        ],
    )
    assert dataflow_wall <= DATAFLOW_BUDGET_S, (
        f"dataflow pass over src/ took {dataflow_wall:.1f}s "
        f"(budget {DATAFLOW_BUDGET_S:.0f}s)"
    )


if __name__ == "__main__":  # pragma: no cover
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
