"""Scatter-gather vs single-store cohort selection at E5 scale.

The shard subsystem's performance claim: once the study population is
partitioned into on-disk segments, a planned query can be evaluated
per-shard in parallel worker processes and the merged answer arrives
faster than one engine scanning the whole flat store.

Acceptance criterion (ISSUE 3): with 4 workers over an 8-shard store,
one pass of distinct selection queries runs at least 2x faster than the
same pass on the flat store.  The assertion needs hardware that can
actually run 4 workers (>= 4 usable cores) and enough per-query work to
amortize process-pool dispatch, so it skips on smaller machines and on
heavily reduced ``REPRO_BENCH_SCALE`` smoke runs — the correctness
differential below runs everywhere.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import bench_scale, print_experiment

from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    CountAtLeast,
    HasEvent,
    PatientAnd,
)
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.shard import ParallelExecutor, ShardedEventStore, write_sharded_store

#: Speedup scatter-gather must deliver over the flat store (ISSUE 3).
REQUIRED_SPEEDUP = 2.0

N_SHARDS = 8
N_WORKERS = 4

_PATTERNS = [
    ("ICD-10", "E1[14]"), ("ICD-10", "I1.*"), ("ATC", "C07.*"),
    ("ATC", "A10.*"), ("ICPC-2", "F.*|H.*"), ("ICPC-2", "K8."),
]


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _query_corpus(store, count: int):
    """Distinct, moderately heavy selection queries (no cross-run cache)."""
    at_day = int(store.day.max())
    queries = []
    for i in range(count):
        system, pattern = _PATTERNS[i % len(_PATTERNS)]
        low = 20 + 5 * i
        queries.append(PatientAnd((
            HasEvent(CodeMatch(system, pattern)),
            CountAtLeast(Category("gp_contact"), 1 + i % 3),
            AgeRange(low, low + 40, at_day),
        )))
    return queries


@pytest.fixture(scope="module")
def sharded_paper(paper_store, tmp_path_factory):
    store, __ = paper_store
    path = str(tmp_path_factory.mktemp("bench") / "paper.shards")
    write_sharded_store(store, path, n_shards=N_SHARDS)
    return ShardedEventStore(path)


def test_sharded_matches_single_at_scale(paper_store, sharded_paper):
    store, __ = paper_store
    single = QueryEngine(store, optimize=True)
    engine = QueryEngine(sharded_paper)
    for query in _query_corpus(store, 6):
        expected = single.patients(query)
        got = engine.patients(query)
        assert np.array_equal(got, expected)


def test_scatter_gather_speedup(paper_store, sharded_paper):
    cpus = _usable_cpus()
    if cpus < N_WORKERS:
        pytest.skip(
            f"{N_WORKERS} workers need >= {N_WORKERS} usable cores "
            f"(found {cpus}); a pool cannot physically deliver "
            f"{REQUIRED_SPEEDUP:.0f}x here"
        )
    if bench_scale() < 0.25:
        pytest.skip(
            f"REPRO_BENCH_SCALE={bench_scale()} leaves too little "
            f"per-query work to amortize process-pool dispatch"
        )
    store, __ = paper_store
    queries = _query_corpus(store, 12)
    warmup = _query_corpus(store, 1)[0]

    single = QueryEngine(store, optimize=True, cache=QueryCache())
    single.patients(warmup)  # page in columns, build planner statistics
    start = time.perf_counter()
    for query in queries:
        single.patients(query)
    single_s = time.perf_counter() - start

    with ParallelExecutor(n_workers=N_WORKERS) as executor:
        engine = QueryEngine(sharded_paper, executor=executor)
        engine.patients(warmup)  # spawn the pool, open worker mmaps
        start = time.perf_counter()
        for query in queries:
            engine.patients(query)
        sharded_s = time.perf_counter() - start
        stats = executor.stats_dict()

    speedup = single_s / sharded_s
    print_experiment(
        f"Sharded scatter-gather (ISSUE 3): {len(queries)} queries, "
        f"{N_SHARDS} shards, {N_WORKERS} workers",
        [
            ("flat store", "-", f"{single_s * 1e3:8.1f} ms"),
            ("scatter-gather", "-", f"{sharded_s * 1e3:8.1f} ms"),
            ("speedup", f">= {REQUIRED_SPEEDUP:.0f}x", f"{speedup:8.1f}x"),
            ("executor", "-",
             f"{stats['parallel_queries']} parallel / "
             f"{stats['serial_queries']} serial / "
             f"{stats['pool_fallbacks']} fallbacks"),
        ],
    )
    assert stats["pool_fallbacks"] == 0, "process pool broke mid-benchmark"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"scatter-gather only {speedup:.2f}x faster than the flat store "
        f"(flat {single_s * 1e3:.1f} ms, sharded {sharded_s * 1e3:.1f} ms)"
    )


def test_shard_open_is_lazy_and_cheap(sharded_paper, benchmark):
    """Opening a sharded store reads manifests only — O(metadata)."""
    path = sharded_paper.path
    opened = benchmark(lambda: ShardedEventStore(path))
    assert opened.open_shard_count == 0
    assert opened.n_patients == sharded_paper.n_patients
