"""E6 — patient trajectory recognition: 92 % / 7 % / 1 % (Section IV).

"For the 13,000, their individual trajectories was created using the
prototype and presented to the patients in a simplified form ... only 1%
of the patients said that everything was wrong ... while 92% could
easily recognize their own trajectory and 7% did not remember."

The benchmark reproduces the pipeline: select the cohort, render a
sample of simplified trajectories (the artifact that was mailed), run
the recall model over the whole cohort and compare marginals.
"""

from __future__ import annotations

from conftest import print_experiment

from repro.query.builder import QueryBuilder
from repro.simulate.recall import RecallOutcome, run_recognition_study
from repro.viz.html_export import personal_timeline_svg


def _cohort_ids(engine):
    query = (
        QueryBuilder().with_concept("T90").min_count("gp_contact", 2).build()
    )
    return engine.patients(query)


def test_e6_recognition_marginals(benchmark, paper_store, paper_engine,
                                  window):
    store, __ = paper_store
    ids = _cohort_ids(paper_engine)
    study = benchmark.pedantic(
        lambda: run_recognition_study(store, ids, window.end_day, seed=7),
        rounds=1, iterations=1,
    )
    pct = study.as_percentages()
    print_experiment(
        "E6 trajectory recognition (Section IV)",
        [
            ("cohort size", "13,000", f"{study.n_patients:,}"),
            ("recognized", "92 %", f"{pct['recognized']:.1f} %"),
            ("did not remember", "7 %", f"{pct['did_not_remember']:.1f} %"),
            ("everything wrong", "1 %", f"{pct['all_wrong']:.1f} %"),
        ],
    )
    assert abs(pct["recognized"] - 92.0) <= 3.0
    assert abs(pct["did_not_remember"] - 7.0) <= 3.0
    assert abs(pct["all_wrong"] - 1.0) <= 0.8
    assert sum(study.counts.values()) == study.n_patients


def test_e6_simplified_trajectory_rendering(benchmark, paper_store,
                                            paper_engine):
    """Producing the mailed artifact: simplified per-patient SVG."""
    store, __ = paper_store
    ids = _cohort_ids(paper_engine)[:50].tolist()
    histories = [store.materialize(p) for p in ids]

    def render_all():
        return [personal_timeline_svg(h, simplified=True) for h in histories]

    pages = benchmark(render_all)
    assert len(pages) == len(ids)
    assert all("Your health service visits" in p for p in pages)


def test_e6_outcomes_exhaustive(benchmark, paper_store, paper_engine, window):
    store, __ = paper_store
    ids = _cohort_ids(paper_engine)[:2_000]
    study = benchmark.pedantic(
        lambda: run_recognition_study(store, ids, window.end_day, seed=9),
        rounds=1, iterations=1,
    )
    assert set(study.counts) == set(RecallOutcome)
