"""E4 (Figure 4) — the query-builder interface over regex hierarchies.

Section IV-A: clinicians get a GUI that assembles regular expressions
over the code hierarchies; the worked example is ``F.*|H.*`` for eye-or-
ear problems.  The benchmark drives the builder (the GUI as an API) and
the textual language against the full population, asserting agreement
and interactive latency.
"""

from __future__ import annotations

import numpy as np
from conftest import print_experiment

from repro.config import RESPONSE_TIME_BOUND_S
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query


def test_e4_eye_or_ear_example(benchmark, paper_store, paper_engine):
    """The paper's exact example: F.* | H.*."""
    store, __ = paper_store
    built = QueryBuilder().with_branch("ICPC-2", "F", "H").build()
    ids = benchmark.pedantic(
        lambda: paper_engine.patients(built), rounds=1, iterations=1
    )
    share = len(ids) / store.n_patients
    print_experiment(
        "E4 / Figure 4 query builder",
        [
            ("example regex", "F.*|H.*", built.expr.pattern),
            ("matching patients", "-", f"{len(ids):,} ({share:.1%})"),
        ],
    )
    assert len(ids) > 0
    # direct regex and builder agree
    from repro.query.ast import CodeMatch, HasEvent

    direct = paper_engine.patients(HasEvent(CodeMatch("ICPC-2", "F.*|H.*")))
    assert (ids == direct).all()


def test_e4_builder_vs_text_language(benchmark, paper_engine, window):
    built = (
        QueryBuilder()
        .with_concept("T90")
        .min_count("gp_contact", 2)
        .aged(40, 95, at_day=window.end_day)
        .build()
    )
    text = parse_query(
        "concept T90 and atleast 2 category gp_contact "
        f"and age 40 .. 95 at {window.end_day}"
    )
    a = paper_engine.patients(built)
    b = benchmark.pedantic(
        lambda: paper_engine.patients(text), rounds=1, iterations=1
    )
    assert (a == b).all()


def test_e4_query_latency_full_population(benchmark, paper_engine):
    """Regex -> id set -> columnar intersect at 168k patients."""
    query = QueryBuilder().with_branch("ICPC-2", "F", "H").build()
    ids = benchmark(lambda: paper_engine.patients(query))
    assert len(ids) > 0
    # Shneiderman's interactivity budget, on the whole population.
    assert benchmark.stats.stats.mean < RESPONSE_TIME_BOUND_S


def test_e4_compound_query_latency(benchmark, paper_engine, window):
    query = (
        QueryBuilder()
        .with_concept("T90")
        .either(
            parse_query("category hospital_stay"),
            parse_query("category specialist_contact"),
        )
        .aged(50, 90, at_day=window.end_day)
        .build()
    )
    ids = benchmark(lambda: paper_engine.patients(query))
    assert len(ids) > 0


def test_e4_disjunction_is_union(benchmark, paper_engine):
    f_only = benchmark.pedantic(
        lambda: paper_engine.patients(
            QueryBuilder().with_branch("ICPC-2", "F").build()
        ),
        rounds=1, iterations=1,
    )
    h_only = paper_engine.patients(
        QueryBuilder().with_branch("ICPC-2", "H").build()
    )
    both = paper_engine.patients(
        QueryBuilder().with_branch("ICPC-2", "F", "H").build()
    )
    assert set(both.tolist()) == set(np.union1d(f_only, h_only).tolist())
