"""Ablations A1-A3 — the design decisions DESIGN.md calls out.

A1: ontology-driven cross-terminology normalization (one concept query
    spanning ICPC-2 and ICD-10 sources) vs single-terminology queries.
A2: NSEPter's rank-based merge vs alignment-based merging under
    one-position noise (the weakness Section II-A1 documents).
A3: the columnar store vs a naive object scan (the paper's "pre-load
    into Java objects" decision, upgraded).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_experiment

from repro.alignment.multiple import star_alignment
from repro.alignment.similarity import SimilarityMatrix
from repro.nsepter.graph import HistoryGraph, Occurrence
from repro.nsepter.merge import merge_by_regex, recursive_neighbour_merge
from repro.query.ast import CodeMatch, Concept, HasEvent
from repro.terminology import icpc2


# -- A1: cross-terminology normalization --------------------------------------


def test_a1_ontology_normalization_recall(benchmark, paper_store,
                                          paper_engine):
    """A diabetes concept query must find patients whose diabetes is only
    coded in ICD-10 (hospital/specialist) — the integration payoff."""
    icpc_only = set(
        benchmark.pedantic(
            lambda: paper_engine.patients(
                HasEvent(CodeMatch("ICPC-2", "T90"))
            ),
            rounds=1, iterations=1,
        ).tolist()
    )
    icd_only = set(
        paper_engine.patients(
            HasEvent(CodeMatch("ICD-10", "E11|E14"))
        ).tolist()
    )
    unified = set(paper_engine.patients(HasEvent(Concept("T90"))).tolist())
    missed_by_icd = len(unified - icd_only)
    recall_icpc = len(icpc_only) / len(unified)
    recall_icd = len(icd_only) / len(unified)
    print_experiment(
        "A1 cross-terminology normalization",
        [
            ("unified concept cohort", "-", f"{len(unified):,}"),
            ("ICPC-2-only recall", "high (GP-managed)",
             f"{recall_icpc:.1%}"),
            ("ICD-10-only recall", "low (hospital view)",
             f"{recall_icd:.1%}"),
            ("diabetics invisible to ICD-10 alone", "> 0",
             f"{missed_by_icd:,}"),
        ],
    )
    assert unified == icpc_only | icd_only
    # A hospital-records-only view misses the GP-managed majority.
    assert missed_by_icd > 0
    assert recall_icd < 0.9
    # Neither single terminology alone reaches the unified cohort.
    assert max(recall_icpc, recall_icd) <= 1.0
    assert icpc_only != unified or icd_only != unified


# -- A2: merge noise resilience ----------------------------------------------


def _noisy_pairs(n_pairs: int, seed: int = 0):
    """Pairs of sequences identical except one substituted position.

    The substitution lands immediately *after* the first index code
    (T90) — the spot where NSEPter's neighbour expansion stalls, per the
    weakness Section II-A1 documents.
    """
    rng = np.random.default_rng(seed)
    base_codes = ["A01", "K86", "R74", "L84", "P76", "K74", "U01"]
    pairs = []
    for __ in range(n_pairs):
        tail = list(rng.permutation(base_codes))
        left = ["T90"] + tail
        right = list(left)
        right[1] = "U71"  # noise right after the index code
        pairs.append((left, right))
    return pairs


def _nsepter_shared_columns(left, right) -> int:
    """How many positions NSEPter's recursive merge manages to fuse."""
    graph = HistoryGraph({1: left, 2: right})
    seeds = merge_by_regex(graph, "T90")
    recursive_neighbour_merge(graph, seeds, depth=len(left))
    shared = 0
    for pos in range(len(left)):
        node = graph.node_of(1, pos)
        if any(m.patient_id == 2 for m in graph.members(node)):
            shared += 1
    return shared


def _alignment_shared_columns(left, right, sim) -> int:
    msa = star_alignment({1: left, 2: right}, sim)
    return sum(
        1 for col in msa.columns
        if col.support == 2 and col.agreement() == 1.0
    )


def test_a2_merge_noise_resilience(benchmark, paper_store):
    sim = SimilarityMatrix(icpc2())
    pairs = _noisy_pairs(40)
    max_shareable = len(pairs[0][0]) - 1  # one position was substituted
    nsepter_scores, aligned_scores = benchmark.pedantic(
        lambda: (
            [_nsepter_shared_columns(l, r) for l, r in pairs],
            [_alignment_shared_columns(l, r, sim) for l, r in pairs],
        ),
        rounds=1, iterations=1,
    )
    nsepter_mean = float(np.mean(nsepter_scores))
    aligned_mean = float(np.mean(aligned_scores))
    print_experiment(
        "A2 merge noise resilience (1-position substitution)",
        [
            ("shareable positions", "-", str(max_shareable)),
            ("NSEPter rank merge", "breaks at noise",
             f"{nsepter_mean:.1f} fused"),
            ("alignment merge", "absorbs noise",
             f"{aligned_mean:.1f} fused"),
            ("improvement", "alignment wins",
             f"{aligned_mean / max(nsepter_mean, 0.1):.1f}x"),
        ],
    )
    assert aligned_mean > nsepter_mean
    assert aligned_mean >= 0.9 * max_shareable


def test_a2_alignment_benchmark(benchmark):
    sim = SimilarityMatrix(icpc2())
    pairs = _noisy_pairs(10, seed=1)
    benchmark(
        lambda: [_alignment_shared_columns(l, r, sim) for l, r in pairs]
    )


# -- A3: columnar store vs naive object scan -----------------------------------


def _naive_scan(histories, codes: set[str]) -> list[int]:
    found = []
    for history in histories:
        for event in history.points:
            if event.code in codes:
                found.append(history.patient_id)
                break
    return found


def test_a3_columnar_vs_naive(benchmark, paper_store, paper_engine):
    """The pre-loaded columnar snapshot vs scanning materialized objects.

    Both representations hold exactly the same 20,000 patients, so the
    comparison isolates the data-layout decision (DESIGN.md §6).
    """
    from repro.events.model import Cohort
    from repro.events.store import EventStore

    store, __ = paper_store
    sample_ids = store.patient_ids[:20_000].tolist()
    histories = [store.materialize(p) for p in sample_ids]
    sub_store = EventStore.from_cohort(Cohort(histories))

    t0 = time.perf_counter()
    naive = benchmark.pedantic(
        lambda: _naive_scan(histories, {"T90"}), rounds=1, iterations=1
    )
    naive_s = time.perf_counter() - t0

    # Best of three for the fast side (sub-millisecond timings are noisy).
    columnar_s = float("inf")
    for __r in range(3):
        t0 = time.perf_counter()
        columnar = sub_store.patients_matching(
            sub_store.mask_pattern("ICPC-2", "T90")
        )
        columnar_s = min(columnar_s, time.perf_counter() - t0)

    speedup = naive_s / max(columnar_s, 1e-9)
    print_experiment(
        "A3 columnar store vs naive object scan (20k patients)",
        [
            ("events scanned", "-", f"{sub_store.n_events:,}"),
            ("naive scan", "-", f"{naive_s * 1e3:.1f} ms"),
            ("columnar query", "-", f"{columnar_s * 1e3:.1f} ms"),
            ("speedup", ">= 5x", f"{speedup:.0f}x"),
        ],
    )
    assert set(naive) == set(columnar.tolist())
    assert speedup >= 5.0


def test_a3_columnar_query_benchmark(benchmark, paper_store):
    store, __ = paper_store
    benchmark(
        lambda: store.patients_matching(store.mask_pattern("ICPC-2", "T90"))
    )


# -- A4: layout improvement cannot save the graph representation ---------------


def test_a4_layered_layout_helps_but_does_not_save(benchmark, paper_store,
                                                   paper_engine):
    """Barycenter crossing reduction improves NSEPter layouts, yet the
    zoomed-out graph still collapses at scale — supporting the paper's
    move to timelines rather than better graph drawing."""
    from repro.nsepter.graph import build_graph
    from repro.nsepter.layout import (
        layered_layout,
        layout_graph,
        readability_metrics,
    )
    from repro.nsepter.merge import merge_by_regex, recursive_neighbour_merge

    store, __ = paper_store
    ids = paper_engine.patients(
        HasEvent(CodeMatch("ICPC-2", "T90"))
    )[:300].tolist()
    graph = build_graph(store.to_cohort(ids))
    seeds = merge_by_regex(graph, "T90")
    recursive_neighbour_merge(graph, seeds, depth=1)

    naive = readability_metrics(layout_graph(graph), max_pairs=300_000)
    layered = benchmark.pedantic(
        lambda: readability_metrics(layered_layout(graph, 6),
                                    max_pairs=300_000),
        rounds=1, iterations=1,
    )
    reduction = 1.0 - layered.edge_crossings / max(1, naive.edge_crossings)
    print_experiment(
        "A4 layered layout vs naive NSEPter layout (300 histories)",
        [
            ("naive crossings", "-", f"{naive.edge_crossings:,}"),
            ("layered crossings", "fewer", f"{layered.edge_crossings:,}"),
            ("reduction", ">0 %", f"{reduction:.0%}"),
            ("still unreadable", "crossings/edge >> 1",
             f"{layered.crossings_per_edge:.1f}/edge"),
        ],
    )
    assert layered.edge_crossings < naive.edge_crossings
    # Even improved, the graph stays far beyond readable crossing budgets.
    assert layered.crossings_per_edge > 1.0
