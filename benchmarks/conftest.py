"""Shared benchmark fixtures.

The paper-scale population (168,000 patients) is generated once per
session with the fast vectorized path (DESIGN.md §2 substitution).  Set
``REPRO_BENCH_SCALE`` to a float in (0, 1] to shrink every population for
a quick pass (e.g. ``REPRO_BENCH_SCALE=0.1`` runs at 16,800 patients);
reported counts are asserted proportionally.
"""

from __future__ import annotations

import os

import pytest

from repro.events.store import EventStore
from repro.query.engine import QueryEngine
from repro.simulate.fast import FastGenerationSummary, generate_store_fast
from repro.simulate.trajectories import StudyWindow

#: The paper's population size (Section IV).
PAPER_POPULATION = 168_000

#: The paper's selected-cohort size (Section IV).
PAPER_SELECTED = 13_000


def bench_scale() -> float:
    """The population scale factor from the environment (default 1.0)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    scale = float(raw)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"REPRO_BENCH_SCALE must be in (0, 1], got {raw}")
    return scale


def scaled(count: int) -> int:
    """A paper count scaled to the configured population size."""
    return max(1, int(count * bench_scale()))


@pytest.fixture(scope="session")
def window() -> StudyWindow:
    return StudyWindow.for_year(2012)


@pytest.fixture(scope="session")
def paper_store() -> tuple[EventStore, FastGenerationSummary]:
    """The 168k-patient (scaled) study population."""
    store, summary = generate_store_fast(scaled(PAPER_POPULATION), seed=42)
    return store, summary


@pytest.fixture(scope="session")
def paper_engine(paper_store) -> QueryEngine:
    store, __ = paper_store
    return QueryEngine(store)


def print_experiment(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print one paper-vs-measured block (captured into bench_output.txt)."""
    width = max(len(r[0]) for r in rows)
    print(f"\n=== {title} ===")
    print(f"{'metric':<{width}} | {'paper':>16} | measured")
    for metric, paper, measured in rows:
        print(f"{metric:<{width}} | {paper:>16} | {measured}")
