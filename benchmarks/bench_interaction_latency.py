"""E8 — interaction responsiveness under Shneiderman's 0.1 s bound.

Section II-C2: "response times for mouse and typing actions should be
less than 0.1 second."  The interaction layer is a model (viewport +
hit index + details-on-demand), so the budget is tested on the exact
geometry a user would mouse over: a large rendered scene.
"""

from __future__ import annotations

import pytest
from conftest import print_experiment

from repro.config import RESPONSE_TIME_BOUND_S
from repro.query.builder import QueryBuilder
from repro.viz.interaction import InteractionSession, Viewport
from repro.viz.timeline_view import TimelineConfig, TimelineView


@pytest.fixture(scope="module")
def big_scene(paper_store, paper_engine):
    store, __ = paper_store
    ids = paper_engine.patients(
        QueryBuilder().with_concept("T90").build()
    )[:2_000].tolist()
    return TimelineView(store, TimelineConfig(show_legend=False)).render(ids)


@pytest.fixture(scope="module")
def session(big_scene):
    return InteractionSession(big_scene)


def test_e8_details_on_demand_latency(benchmark, session, big_scene):
    """Hover lookups across the plot area."""
    xs = [big_scene.plot_left + i * 37.0 % (big_scene.plot_right
                                            - big_scene.plot_left)
          for i in range(100)]
    ys = [big_scene.plot_top + i * 11.0 % (big_scene.plot_bottom
                                           - big_scene.plot_top)
          for i in range(100)]

    def sweep():
        hits = 0
        for x, y in zip(xs, ys):
            if session.details_at(x, y) is not None:
                hits += 1
        return hits

    benchmark(sweep)
    per_lookup = benchmark.stats.stats.mean / 100
    print_experiment(
        "E8 details-on-demand latency",
        [
            ("budget per action", "< 100 ms",
             f"{RESPONSE_TIME_BOUND_S * 1e3:.0f} ms"),
            ("measured per hover", "-", f"{per_lookup * 1e6:.1f} us"),
            ("headroom", "-",
             f"{RESPONSE_TIME_BOUND_S / per_lookup:,.0f}x"),
        ],
    )
    assert per_lookup < RESPONSE_TIME_BOUND_S


def test_e8_hit_index_build_cost(benchmark, big_scene):
    """Index construction happens once per rendering; it must not wreck
    the view-change budget either."""
    from repro.viz.interaction import HitIndex

    index = benchmark.pedantic(
        lambda: HitIndex(big_scene.marks), rounds=3, iterations=1
    )
    assert index.hit(big_scene.plot_left + 5, big_scene.plot_top + 5) \
        is not None or True


def test_e8_pan_zoom_state_ops(benchmark):
    """Viewport transitions are pure state math — effectively free."""
    vp = Viewport(15_000, 15_730, 0, 200)

    def navigate():
        current = vp
        for __ in range(100):
            current = current.pan_days(5).zoom_time(0.9).zoom_rows(1.02)
        return current

    final = benchmark(navigate)
    assert final.span_days > 0
    assert benchmark.stats.stats.mean / 100 < RESPONSE_TIME_BOUND_S / 100


def test_e8_patient_and_day_lookup(benchmark, session, big_scene):
    def sweep():
        for i in range(1_000):
            session.patient_at(big_scene.plot_top + (i % 300) * 1.7)
            session.day_at(big_scene.plot_left + (i % 700) * 1.3)

    benchmark(sweep)
    per_op = benchmark.stats.stats.mean / 2_000
    assert per_op < RESPONSE_TIME_BOUND_S / 100
