"""Cost of serving degraded and the fsck/repair round trip at scale.

Two numbers the quarantine design is accountable for:

* **Degraded-query overhead** — a store serving with one shard
  quarantined must not pay more per query than the proportional saving
  of scanning one shard less.  We time the same selection pass over the
  intact store and over a store with one of eight shards quarantined;
  the degraded pass must not be slower than the intact pass by more
  than a small tolerance (it scans 7/8 of the data).
* **fsck / repair round trip** — full-store re-verification and a
  token-verified salvage must both complete in seconds, not minutes,
  at the paper population, or no operator will run them.
"""

from __future__ import annotations

import os
import time

from conftest import print_experiment

from repro.config import ShardConfig
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.resilience.faults import ShardFaultPlan, apply_shard_faults
from repro.shard import (
    ParallelExecutor,
    ShardedEventStore,
    fsck_store,
    repair_store,
    write_sharded_store,
)
from repro.shard.format import MANIFEST_NAME, read_store_manifest

N_SHARDS = 8
N_QUERIES = 12

#: A degraded pass scans 7/8 of the events; allow bookkeeping slack.
DEGRADED_SLOWDOWN_TOLERANCE = 1.25


def _query_corpus(store, count: int):
    from bench_sharded_query import _query_corpus as corpus  # noqa: PLC0415

    return corpus(store, count)


def _timed_pass(sharded, queries) -> float:
    # A fresh single-entry cache per pass: per-shard results cannot be
    # reused across the distinct queries, so timing stays honest.
    executor = ParallelExecutor(config=sharded.config, n_workers=1,
                                cache=QueryCache(max_entries=1))
    start = time.perf_counter()
    for expr in queries:
        executor.patients(sharded, expr)
    return time.perf_counter() - start


def test_degraded_query_overhead(paper_store, tmp_path_factory):
    store, __ = paper_store
    root = str(tmp_path_factory.mktemp("degraded") / "paper.shards")
    write_sharded_store(store, root, n_shards=N_SHARDS)
    queries = _query_corpus(store, N_QUERIES)

    intact = ShardedEventStore(
        root, config=ShardConfig(on_damage="quarantine", n_workers=1))
    intact_s = _timed_pass(intact, queries)

    apply_shard_faults(root, ShardFaultPlan(seed=2, flip_bytes=1))
    degraded = ShardedEventStore(
        root, config=ShardConfig(on_damage="quarantine", n_workers=1))
    record = degraded.degradation()
    assert record.is_degraded and len(record.quarantined_shards) == 1
    degraded_s = _timed_pass(degraded, queries)

    print_experiment(
        "Degraded-query overhead (1 of 8 shards quarantined, serial)",
        [
            ("intact pass", f"{intact_s:.3f}s", f"{N_QUERIES} queries"),
            ("degraded pass", f"{degraded_s:.3f}s",
             f"{record.patients_lost:,} patients unavailable"),
            ("ratio", f"{degraded_s / intact_s:.2f}x",
             f"tolerance {DEGRADED_SLOWDOWN_TOLERANCE}x"),
        ],
    )
    assert degraded_s <= intact_s * DEGRADED_SLOWDOWN_TOLERANCE


def test_fsck_and_repair_round_trip(paper_store, tmp_path_factory):
    store, __ = paper_store
    root = str(tmp_path_factory.mktemp("repair") / "paper.shards")
    write_sharded_store(store, root, n_shards=N_SHARDS)
    clean_token = ShardedEventStore(root).content_token()

    start = time.perf_counter()
    report = fsck_store(root)
    fsck_clean_s = time.perf_counter() - start
    assert report.ok

    # Token-verified salvage: delete one shard's manifest.
    entry = read_store_manifest(root)["shards"][3]
    os.unlink(os.path.join(root, entry["name"], MANIFEST_NAME))
    start = time.perf_counter()
    repair = repair_store(root)
    repair_s = time.perf_counter() - start
    assert repair.ok
    assert repair.repaired[0].action == "salvaged"
    assert ShardedEventStore(root).content_token() == clean_token

    print_experiment(
        "fsck / repair round trip (8 shards, paper scale)",
        [
            ("fsck (clean)", f"{fsck_clean_s:.3f}s",
             f"{store.n_events:,} events re-verified"),
            ("repair (salvage)", f"{repair_s:.3f}s",
             "token-verified, byte-identical"),
        ],
    )
