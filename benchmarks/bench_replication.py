"""Replication cost envelope at E5 scale (ISSUE 9).

Replication buys online failover and self-repair; this benchmark pins
what it costs.  Two claims:

* **Write amplification** — building the same population at R=2 must
  cost at most 2.2x the R=1 bytes on disk (2x for the payload copies
  plus a small bounded manifest/sketch overhead).
* **Failover latency** — a cold query that has to fail over (its
  preferred replica's manifest is gone) must answer within 1.5x the
  healthy cold-query latency: the failover is one extra open attempt,
  not a retry storm.

Also reports scrubber verify throughput (bytes/s over one clean pass)
so regressions in background-scan cost show up in the BENCH record.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np
import pytest
from conftest import bench_scale, print_experiment

from repro.config import ShardConfig
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.resilience.faults import ShardFaultPlan, apply_shard_faults
from repro.shard import (
    Scrubber,
    ShardedEventStore,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast

#: R=2 bytes on disk must stay within this factor of R=1.
MAX_WRITE_AMPLIFICATION = 2.2

#: Cold failover-path query latency bound, relative to healthy.
MAX_FAILOVER_RATIO = 1.5

N_SHARDS = 8

#: The E5-scale population the claims are made at.
E5_POPULATION = 100_000

REPEATS = 5


def _tree_bytes(root: str) -> int:
    total = 0
    for dirpath, __, filenames in os.walk(root):
        for name in filenames:
            total += os.path.getsize(os.path.join(dirpath, name))
    return total


def _cold_query_s(path: str, query, config: ShardConfig) -> float:
    """Median seconds for open-store-and-answer, over fresh opens."""
    samples = []
    for __ in range(REPEATS):
        start = time.perf_counter()
        engine = QueryEngine(ShardedEventStore(path, config=config))
        engine.patients(query)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_replication_cost_envelope(tmp_path_factory):
    n_patients = max(2_000, int(E5_POPULATION * bench_scale()))
    population, __ = generate_store_fast(n_patients, seed=31)
    root = tmp_path_factory.mktemp("replication")
    query = parse_query("sex F or sex M")
    config = ShardConfig(verify_checksums=False, n_workers=1)

    r1_path = str(root / "r1.shards")
    start = time.perf_counter()
    write_sharded_store(population, r1_path, n_shards=N_SHARDS)
    r1_build_s = time.perf_counter() - start

    r2_path = str(root / "r2.shards")
    start = time.perf_counter()
    write_sharded_store(population, r2_path, n_shards=N_SHARDS,
                        config=ShardConfig(replication=2))
    r2_build_s = time.perf_counter() - start

    r1_bytes = _tree_bytes(r1_path)
    r2_bytes = _tree_bytes(r2_path)
    amplification = r2_bytes / r1_bytes
    assert amplification <= MAX_WRITE_AMPLIFICATION, (
        f"R=2 write amplification {amplification:.2f}x exceeds "
        f"{MAX_WRITE_AMPLIFICATION}x"
    )

    # Replication must not change answers.
    expected = np.asarray(
        QueryEngine(ShardedEventStore(r1_path, config=config))
        .patients(query)
    )
    healthy_s = _cold_query_s(r2_path, query, config)
    got = np.asarray(
        QueryEngine(ShardedEventStore(r2_path, config=config))
        .patients(query)
    )
    assert np.array_equal(got, expected)

    # Failover path: the preferred replica (r0) of one shard loses its
    # manifest, so every cold open of that shard pays one failed open
    # plus the peer open — still exact, bounded latency.
    applied = apply_shard_faults(
        r2_path, ShardFaultPlan(seed=13, delete_manifests=1, replica=0)
    )
    assert len(applied) == 1
    failover_s = _cold_query_s(r2_path, query, config)
    sharded = ShardedEventStore(r2_path, config=config)
    got = np.asarray(QueryEngine(sharded).patients(query))
    assert np.array_equal(got, expected)
    assert sharded.replication_stats()["replica_failovers"] >= 1
    ratio = failover_s / max(healthy_s, 1e-9)

    # Scrubber verify throughput over one full (healing) pass.
    start = time.perf_counter()
    report = Scrubber(r2_path).run_once()
    scrub_s = time.perf_counter() - start
    verified = report.verified_bytes
    assert len(report.repaired) >= 1  # it healed the deleted manifest

    bench = {
        "bench": "replication",
        "patients": int(population.n_patients),
        "events": int(population.n_events),
        "n_shards": N_SHARDS,
        "r1_bytes": int(r1_bytes),
        "r2_bytes": int(r2_bytes),
        "write_amplification": round(amplification, 3),
        "max_write_amplification": MAX_WRITE_AMPLIFICATION,
        "r1_build_s": round(r1_build_s, 4),
        "r2_build_s": round(r2_build_s, 4),
        "healthy_cold_query_s": round(healthy_s, 4),
        "failover_cold_query_s": round(failover_s, 4),
        "failover_ratio": round(ratio, 3),
        "max_failover_ratio": MAX_FAILOVER_RATIO,
        "scrub_pass_s": round(scrub_s, 4),
        "scrub_verified_bytes": int(verified),
        "scrub_bytes_per_s": round(verified / max(scrub_s, 1e-9)),
        "scrub_repaired": len(report.repaired),
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))
    print_experiment(
        f"Replication cost (ISSUE 9): {population.n_events:,} events, "
        f"{N_SHARDS} shards",
        [
            ("bytes R=1 / R=2", f"<= {MAX_WRITE_AMPLIFICATION}x",
             f"{r1_bytes / 1e6:8.1f} MB / {r2_bytes / 1e6:.1f} MB "
             f"({amplification:.2f}x)"),
            ("cold query healthy", "-", f"{healthy_s * 1e3:8.1f} ms"),
            ("cold query failover", f"<= {MAX_FAILOVER_RATIO}x",
             f"{failover_s * 1e3:8.1f} ms ({ratio:.2f}x)"),
            ("scrub pass", "-",
             f"{verified / 1e6:8.1f} MB in {scrub_s * 1e3:.1f} ms "
             f"({bench['scrub_bytes_per_s'] / 1e6:,.0f} MB/s)"),
        ],
    )
    if bench_scale() < 0.5:
        pytest.skip(
            f"REPRO_BENCH_SCALE={bench_scale()} makes cold-query medians "
            f"too noisy for the {MAX_FAILOVER_RATIO}x bound; measured "
            f"{ratio:.2f}x"
        )
    assert ratio <= MAX_FAILOVER_RATIO, (
        f"failover-path cold query {ratio:.2f}x healthy exceeds "
        f"{MAX_FAILOVER_RATIO}x"
    )


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q", "-s"])
