"""Query planner: cold vs warm vs naive on the E5-scale population.

The paper's cohort identification is an *iterative* loop — Section IV's
13,000-of-168,000 selection was reached by repeatedly refining a query
over predefined characteristics — so consecutive queries share most of
their sub-expressions.  This benchmark replays such a refinement
session three ways:

* **naive** — the recursive engine, every mask recomputed per query;
* **cold**  — the planner on a fresh cache (pays normalization plus the
  one-off selectivity statistics);
* **warm**  — the same session again: every sub-result is memoized, so
  each query is a cache lookup.

Acceptance criterion (ISSUE 2): the warm-cache replay is at least 5x
faster than the naive engine on the same sequence.
"""

from __future__ import annotations

import time

from conftest import print_experiment

from repro.query.ast import (
    AgeRange,
    Category,
    Concept,
    CountAtLeast,
    HasEvent,
    PatientAnd,
    SexIs,
)
from repro.query.engine import QueryEngine

#: Warm-replay speedup the planner must deliver over naive evaluation.
REQUIRED_SPEEDUP = 5.0


def refinement_session(store):
    """A clinician-style refinement sequence sharing sub-expressions."""
    at_day = int(store.day.max())
    base = HasEvent(Concept("T90"))
    utilization = CountAtLeast(Category("gp_contact"), 2)
    return [
        base,
        PatientAnd((base, utilization)),
        PatientAnd((base, utilization, SexIs("F"))),
        PatientAnd((base, utilization, SexIs("F"),
                    AgeRange(40, 90, at_day))),
        PatientAnd((base, utilization, SexIs("F"), AgeRange(40, 90, at_day),
                    HasEvent(Category("hospital_stay")))),
        PatientAnd((base, CountAtLeast(Category("gp_contact"), 4))),
    ]


def _run_session(engine, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        engine.patients(query)
    return time.perf_counter() - start


def test_planner_matches_naive_on_e5(paper_store):
    store, __ = paper_store
    planned = QueryEngine(store, optimize=True)
    naive = QueryEngine(store, optimize=False)
    for query in refinement_session(store):
        fast = planned.patients(query)
        slow = naive.patients(query)
        assert fast.tolist() == slow.tolist()


def test_warm_cache_refinement_speedup(paper_store):
    store, __ = paper_store
    queries = refinement_session(store)

    naive = QueryEngine(store, optimize=False)
    naive_s = min(_run_session(naive, queries) for __ in range(3))

    planned = QueryEngine(store, optimize=True)
    cold_s = _run_session(planned, queries)  # fills the cache
    warm_s = min(_run_session(planned, queries) for __ in range(3))

    stats = planned.cache.stats
    print_experiment(
        "Query planner (ISSUE 2): refinement session of "
        f"{len(queries)} queries",
        [
            ("naive", "-", f"{naive_s * 1e3:8.1f} ms"),
            ("planned cold", "-", f"{cold_s * 1e3:8.1f} ms"),
            ("planned warm", "-", f"{warm_s * 1e3:8.1f} ms"),
            ("warm speedup", f">= {REQUIRED_SPEEDUP:.0f}x",
             f"{naive_s / warm_s:8.1f}x"),
            ("cache", "-",
             f"{stats.hits} hits / {stats.misses} misses"),
        ],
    )
    assert naive_s >= REQUIRED_SPEEDUP * warm_s, (
        f"warm replay only {naive_s / warm_s:.1f}x faster than naive "
        f"(naive {naive_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms)"
    )


def test_warm_query_latency(benchmark, paper_store):
    """Steady-state latency of one fully-cached refinement query."""
    store, __ = paper_store
    planned = QueryEngine(store, optimize=True)
    queries = refinement_session(store)
    _run_session(planned, queries)  # warm up
    ids = benchmark(lambda: planned.patients(queries[-2]))
    assert len(ids) > 0
