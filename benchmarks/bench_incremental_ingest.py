"""Incremental delta ingestion vs full rebuild at E5 scale.

The incremental-ingestion claim (ISSUE 7): when a nightly batch of new
patients arrives at a *serving* store (open, warmed, production config
— per-open re-verification off, as ``ShardConfig.verify_checksums``
documents), landing it as checksummed delta segments with one atomic
manifest bump must make the events queryable at least 5x faster than
the only alternative the store had before — merging the batch into the
flat snapshot, re-sharding the whole population and answering from the
rebuilt store.  The benchmark measures that ingest-to-queryable
latency on both paths over a ~100k-patient population (scaled by
``REPRO_BENCH_SCALE``), asserts the speedup, checks both paths answer
a probe query identically, and reports background-compaction
throughput (events merged per second) as a ``BENCH {json}`` line.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from conftest import bench_scale, print_experiment

from repro.config import ShardConfig
from repro.io import merge_stores
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.shard import (
    Compactor,
    DeltaWriter,
    ShardedEventStore,
    fsck_store,
    subset_store,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast

#: Speedup delta-append must deliver over merge-and-reshard (ISSUE 7).
REQUIRED_SPEEDUP = 5.0

N_SHARDS = 8

#: The E5-scale population the latency claim is made at.
E5_POPULATION = 100_000

#: Nightly-batch fraction of the population.
BATCH_FRACTION = 0.01


@pytest.fixture(scope="module")
def ingest_population():
    n_patients = max(2_000, int(E5_POPULATION * bench_scale()))
    store, __ = generate_store_fast(n_patients, seed=31)
    pids = np.sort(store.patient_ids)
    cut = len(pids) - max(20, int(len(pids) * BATCH_FRACTION))
    return subset_store(store, pids[:cut]), subset_store(store, pids[cut:])


def _probe_query(store):
    return parse_query("sex F or sex M")


def test_ingest_to_queryable_speedup(ingest_population, tmp_path_factory):
    base, batch = ingest_population
    root = tmp_path_factory.mktemp("ingest")
    query = _probe_query(base)
    config = ShardConfig(verify_checksums=False)

    # Incremental path: the store is already serving (open and warm);
    # time from batch arrival to a query answering over base+batch.
    inc_path = str(root / "incremental.shards")
    write_sharded_store(base, inc_path, n_shards=N_SHARDS)
    inc_store = ShardedEventStore(inc_path, config=config)
    engine = QueryEngine(inc_store)
    engine.patients(query)  # warm: open every shard, page in columns
    start = time.perf_counter()
    DeltaWriter(inc_path).append(batch)
    inc_store.refresh()
    inc_ids = engine.patients(query)
    append_s = time.perf_counter() - start

    # Rebuild path: merge the batch into the snapshot, re-shard
    # everything, answer the same query from the rebuilt store.
    rebuild_path = str(root / "rebuild.shards")
    start = time.perf_counter()
    union = merge_stores(base, batch)
    write_sharded_store(union, rebuild_path, n_shards=N_SHARDS)
    rebuild_ids = QueryEngine(
        ShardedEventStore(rebuild_path, config=config)
    ).patients(query)
    rebuild_s = time.perf_counter() - start

    assert np.array_equal(inc_ids, rebuild_ids)
    assert len(inc_ids) == base.n_patients + batch.n_patients

    # Background compaction: fold the pending deltas and report merge
    # throughput over every event the compactor rewrote.
    start = time.perf_counter()
    report = Compactor(inc_path).compact()
    compact_s = time.perf_counter() - start
    events_merged = sum(a.events_merged for a in report.compacted)
    assert report.compacted
    assert fsck_store(inc_path).ok
    inc_store.refresh()
    assert np.array_equal(engine.patients(query), inc_ids)

    speedup = rebuild_s / append_s
    bench = {
        "bench": "incremental_ingest",
        "patients": int(base.n_patients + batch.n_patients),
        "batch_patients": int(batch.n_patients),
        "batch_events": int(batch.n_events),
        "n_shards": N_SHARDS,
        "append_to_queryable_s": round(append_s, 4),
        "rebuild_to_queryable_s": round(rebuild_s, 4),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "compact_s": round(compact_s, 4),
        "compact_events_merged": int(events_merged),
        "compact_events_per_s": round(events_merged / max(compact_s, 1e-9)),
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))
    print_experiment(
        f"Incremental ingestion (ISSUE 7): "
        f"{batch.n_events:,}-event batch into {N_SHARDS} shards",
        [
            ("delta append", "-", f"{append_s * 1e3:8.1f} ms to queryable"),
            ("full rebuild", "-", f"{rebuild_s * 1e3:8.1f} ms to queryable"),
            ("speedup", f">= {REQUIRED_SPEEDUP:.0f}x", f"{speedup:8.1f}x"),
            ("compaction", "-",
             f"{events_merged:,} events in {compact_s * 1e3:.1f} ms "
             f"({bench['compact_events_per_s']:,} events/s)"),
        ],
    )
    if bench_scale() < 0.5:
        pytest.skip(
            f"REPRO_BENCH_SCALE={bench_scale()} leaves too little rebuild "
            f"work for the {REQUIRED_SPEEDUP:.0f}x bound to be meaningful: "
            f"the append path's cost is a near-constant fsync floor "
            f"(~{2 * 15 * N_SHARDS} durable writes) while rebuild work "
            f"scales with the population (measured {speedup:.1f}x)"
        )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"delta append only {speedup:.2f}x faster than a full rebuild "
        f"(append {append_s * 1e3:.1f} ms, rebuild {rebuild_s * 1e3:.1f} ms)"
    )


def test_repeated_appends_bound_read_amplification(tmp_path_factory):
    """Ten appends then a compaction: the effective view stays correct
    and the compacted store answers as fast as a fresh rebuild."""
    n_patients = max(1_000, int(20_000 * bench_scale()))
    store, __ = generate_store_fast(n_patients, seed=33)
    pids = np.sort(store.patient_ids)
    cut = int(len(pids) * 0.9)
    base = subset_store(store, pids[:cut])
    path = str(tmp_path_factory.mktemp("amplify") / "amplify.shards")
    write_sharded_store(base, path, n_shards=4)

    writer = DeltaWriter(path)
    step = max(1, (len(pids) - cut) // 10)
    for lo in range(cut, len(pids), step):
        writer.append(subset_store(store, pids[lo:lo + step]))
    sharded = ShardedEventStore(path)
    stats = sharded.delta_stats()
    assert stats["pending_deltas"] >= 10

    query = _probe_query(store)
    expected = QueryEngine(store, optimize=True).patients(query)
    assert np.array_equal(QueryEngine(sharded).patients(query), expected)

    Compactor(path).compact()
    sharded.refresh()
    assert sharded.delta_stats()["pending_deltas"] == 0
    assert np.array_equal(QueryEngine(sharded).patients(query), expected)
    print("BENCH " + json.dumps({
        "bench": "incremental_ingest_amplification",
        "appends": int(stats["pending_deltas"]),
        "delta_events": int(stats["delta_events"]),
        "patients": int(n_patients),
    }, sort_keys=True))
