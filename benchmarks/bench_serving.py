"""Serving-tier load benchmark: worker scaling and overload behaviour.

Two claims from the production-serving ISSUE, each printed as a
machine-readable ``BENCH {json}`` line:

* **Scaling** — on warm cached queries (every worker holds the rendered
  bodies in its response cache), a 4-worker pre-forked pool sustains at
  least 2x the throughput of a single worker: request handling is
  Python CPU (parse, ETag, header assembly), so only additional
  processes can scale it.  Asserted only where 4 workers can physically
  run (>= 4 usable cores); measured and reported everywhere.
* **Overload** — with admission control at ``max_inflight`` and the
  offered load at 2x that, the p99 latency of *admitted* requests stays
  within 3x of the uncontended p99 while the excess is shed with
  ``429 Retry-After`` — load shedding buys bounded latency, queueing
  would not.

Client load is generated from separate processes (the measuring process
would otherwise GIL-bottleneck before a 4-worker pool does) over
persistent HTTP/1.1 connections that periodically reconnect so the
kernel re-balances them across workers.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from concurrent.futures import ProcessPoolExecutor
from http.client import HTTPConnection
from multiprocessing import get_context

import pytest
from conftest import bench_scale, print_experiment

from repro.config import ServingConfig, ShardConfig
from repro.serving import ServingPool
from repro.shard import write_sharded_store
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench

#: Throughput a 4-worker pool must deliver over 1 worker (ISSUE 6).
REQUIRED_SPEEDUP = 2.0
#: Admitted p99 under 2x oversubscription vs uncontended p99 (ISSUE 6).
MAX_P99_BLOWUP = 3.0

N_WORKERS = 4
N_CLIENT_PROCS = 8
REQUESTS_PER_CLIENT = 120

#: Distinct warm-cacheable targets (one rendered body each per worker).
_PATHS = [
    "/cohort?q=concept%20T90",
    "/cohort?q=sex%20F",
    "/cohort?q=atleast%202%20category%20gp_contact",
    "/cohort?q=concept%20T90%20or%20atleast%202%20category%20gp_contact",
    "/cohort?q=sex%20F%20and%20concept%20T90",
]


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _client_pass(host: str, port: int, n_requests: int) -> list[float]:
    """One client process: ``n_requests`` GETs over keep-alive
    connections, reconnecting every 16 so accept() re-balances."""
    latencies = []
    conn = None
    for i in range(n_requests):
        if conn is None or i % 16 == 0:
            if conn is not None:
                conn.close()
            conn = HTTPConnection(host, port, timeout=60)
        path = _PATHS[i % len(_PATHS)]
        start = time.perf_counter()
        conn.request("GET", path)
        response = conn.getresponse()
        response.read()
        latencies.append(time.perf_counter() - start)
        if response.status != 200:
            raise AssertionError(
                f"warm cached request answered {response.status}"
            )
    conn.close()
    return latencies


def _measure_pool(factory, workers: int) -> dict:
    config = ServingConfig(workers=workers, max_inflight=256)
    with ServingPool(factory, workers=workers, config=config) as pool:
        # Warm every worker's response cache: accept() load-balancing is
        # probabilistic, so over-sample until a cold worker is unlikely.
        for i in range(8 * workers * len(_PATHS)):
            with urllib.request.urlopen(
                pool.url + _PATHS[i % len(_PATHS)], timeout=60
            ) as response:
                response.read()
        start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=N_CLIENT_PROCS, mp_context=get_context("fork")
        ) as clients:
            passes = list(clients.map(
                _client_pass,
                [pool.host] * N_CLIENT_PROCS,
                [pool.port] * N_CLIENT_PROCS,
                [REQUESTS_PER_CLIENT] * N_CLIENT_PROCS,
            ))
        elapsed = time.perf_counter() - start
    latencies = [sample for one in passes for sample in one]
    return {
        "workers": workers,
        "requests": len(latencies),
        "elapsed_s": round(elapsed, 4),
        "rps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


@pytest.fixture(scope="module")
def sharded_root(tmp_path_factory):
    n_patients = max(2_000, int(40_000 * bench_scale()))
    store, __ = generate_store_fast(n_patients, seed=17)
    root = str(tmp_path_factory.mktemp("servebench") / "serve.shards")
    write_sharded_store(store, root, n_shards=4)
    return root


def test_worker_pool_throughput_scaling(sharded_root):
    def factory():
        return Workbench.from_shards(
            sharded_root, shard_config=ShardConfig(n_workers=1)
        )

    results = {
        workers: _measure_pool(factory, workers)
        for workers in (1, N_WORKERS)
    }
    speedup = results[N_WORKERS]["rps"] / results[1]["rps"]
    bench = {
        "bench": "serving_scaling",
        "paths": len(_PATHS),
        "clients": N_CLIENT_PROCS,
        "per_worker": list(results.values()),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "usable_cpus": _usable_cpus(),
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))
    print_experiment(
        f"Serving throughput (ISSUE 6): warm cached queries, "
        f"{N_CLIENT_PROCS} client processes",
        [
            ("1 worker", "-", f"{results[1]['rps']:9.1f} rps "
                              f"(p99 {results[1]['p99_ms']:.1f} ms)"),
            (f"{N_WORKERS} workers", "-",
             f"{results[N_WORKERS]['rps']:9.1f} rps "
             f"(p99 {results[N_WORKERS]['p99_ms']:.1f} ms)"),
            ("speedup", f">= {REQUIRED_SPEEDUP:.0f}x", f"{speedup:9.2f}x"),
        ],
    )
    cpus = _usable_cpus()
    if cpus < N_WORKERS:
        pytest.skip(
            f"{N_WORKERS} workers need >= {N_WORKERS} usable cores "
            f"(found {cpus}); a pool cannot physically deliver "
            f"{REQUIRED_SPEEDUP:.0f}x here — measured "
            f"{speedup:.2f}x, reported above"
        )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"{N_WORKERS}-worker pool only {speedup:.2f}x the single-worker "
        f"throughput ({results[N_WORKERS]['rps']} vs {results[1]['rps']} rps)"
    )


# -- overload: shed, don't queue --------------------------------------------

_SERVICE_S = 0.05
_MAX_INFLIGHT = 4
_OVERLOAD_CLIENTS = 2 * _MAX_INFLIGHT
_OVERLOAD_REQUESTS = 12


def _timed_get(url: str) -> tuple[int, str, float]:
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            return response.status, \
                response.headers.get("Retry-After", ""), \
                time.perf_counter() - start
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code, exc.headers.get("Retry-After", ""), \
            time.perf_counter() - start


def test_overload_sheds_instead_of_queueing():
    store, __ = generate_store_fast(500, seed=23)
    config = ServingConfig(max_inflight=_MAX_INFLIGHT, debug_routes=True,
                           retry_after_s=1.0)
    target = f"/debug/sleep?s={_SERVICE_S}"
    with WorkbenchServer(Workbench(store), config=config) as server:
        url = server.url + target
        uncontended = [_timed_get(url)[2] for __ in range(30)]
        results: list[tuple[int, str, float]] = []
        collect = threading.Lock()

        def client() -> None:
            mine = [_timed_get(url) for __ in range(_OVERLOAD_REQUESTS)]
            with collect:
                results.extend(mine)

        threads = [threading.Thread(target=client)
                   for __ in range(_OVERLOAD_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    admitted = [elapsed for status, __, elapsed in results if status == 200]
    shed = [(retry, elapsed) for status, retry, elapsed in results
            if status == 429]
    unexpected = [status for status, __, __e in results
                  if status not in (200, 429)]
    uncontended_p99 = _percentile(uncontended, 0.99)
    admitted_p99 = _percentile(admitted, 0.99) if admitted else float("inf")
    bench = {
        "bench": "serving_overload",
        "max_inflight": _MAX_INFLIGHT,
        "offered_clients": _OVERLOAD_CLIENTS,
        "service_s": _SERVICE_S,
        "requests": len(results),
        "admitted": len(admitted),
        "shed_429": len(shed),
        "shed_rate": round(len(shed) / len(results), 3),
        "uncontended_p50_ms":
            round(_percentile(uncontended, 0.50) * 1e3, 2),
        "uncontended_p99_ms": round(uncontended_p99 * 1e3, 2),
        "admitted_p50_ms":
            round(_percentile(admitted, 0.50) * 1e3, 2) if admitted else None,
        "admitted_p99_ms": round(admitted_p99 * 1e3, 2),
        "shed_p99_ms":
            round(_percentile([e for __, e in shed], 0.99) * 1e3, 2)
            if shed else None,
        "max_p99_blowup": MAX_P99_BLOWUP,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))
    print_experiment(
        f"Overload shedding (ISSUE 6): {_OVERLOAD_CLIENTS} clients over "
        f"max_inflight={_MAX_INFLIGHT}",
        [
            ("uncontended p99", "-", f"{uncontended_p99 * 1e3:8.1f} ms"),
            ("admitted p99",
             f"<= {MAX_P99_BLOWUP:.0f}x uncontended",
             f"{admitted_p99 * 1e3:8.1f} ms"),
            ("shed", ">= 1 (with 429)",
             f"{len(shed)} of {len(results)} "
             f"({100 * len(shed) / len(results):.0f}%)"),
        ],
    )
    assert not unexpected, f"unexpected statuses under overload: {unexpected}"
    assert admitted, "overload run admitted nothing"
    assert shed, "2x oversubscription never shed a request"
    assert all(retry for retry, __ in shed), "429 without Retry-After"
    assert admitted_p99 <= MAX_P99_BLOWUP * uncontended_p99, (
        f"admitted p99 {admitted_p99 * 1e3:.1f} ms blew past "
        f"{MAX_P99_BLOWUP:.0f}x the uncontended "
        f"{uncontended_p99 * 1e3:.1f} ms — work is queueing somewhere"
    )


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
