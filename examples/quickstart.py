"""Quickstart: generate a cohort, identify a sub-cohort, draw the
timeline.

Runs in a few seconds and writes two artifacts next to this script:

* ``quickstart_cohort.svg`` — the Figure 1-style cohort timeline.
* ``quickstart_patient.html`` — one interactive personal timeline.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import Workbench
from repro.query.ast import Concept
from repro.simulate import generate_raw_sources

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    # 1. Simulate the heterogeneous registries (GP claims, hospital
    #    episodes, municipal services, specialist claims) and integrate
    #    them into one workbench — the paper's aggregation step.
    print("generating and integrating 2,000 synthetic patients ...")
    raw = generate_raw_sources(2_000, seed=7)
    wb = Workbench.from_raw_sources(raw)
    report = wb.report
    assert report is not None
    print(
        f"  integrated {report.loaded_events:,} events "
        f"({report.failed_records} bad records skipped, "
        f"{report.dedup.removed} duplicates collapsed)"
    )

    # 2. Identify a cohort with the textual query language (the Figure 4
    #    query builder's scripted face).
    query = "concept T90 and atleast 2 category gp_contact"
    ids = wb.select(query)
    print(f"  query {query!r} -> {len(ids)} patients")
    print(wb.stats(ids).format_table())

    # 3. Draw the cohort timeline (Figure 1), aligned on the first
    #    diabetes event so trajectories become comparable.
    alignment = wb.align(Concept("T90"), "first diabetes diagnosis")
    from repro.viz.timeline_view import TimelineConfig

    scene = wb.timeline(ids[:80], TimelineConfig(mode="aligned"), alignment)
    svg_path = os.path.join(OUT_DIR, "quickstart_cohort.svg")
    scene.save(svg_path)
    print(f"  wrote {svg_path} ({scene.ink_marks:,} marks)")

    # 4. Export one interactive personal timeline (the pastas.no page).
    html_path = os.path.join(OUT_DIR, "quickstart_patient.html")
    wb.personal_timeline(int(ids[0]), path=html_path)
    print(f"  wrote {html_path}")

    # 5. Details-on-demand, programmatically: what is under this pixel?
    from repro.viz.interaction import InteractionSession

    session = InteractionSession(scene)
    probe_x = (scene.plot_left + scene.plot_right) / 2
    for row in range(3):
        y = scene.plot_top + (row + 0.5) * scene.row_height
        detail = session.details_at(probe_x, y)
        if detail:
            print(f"  hover({probe_x:.0f},{y:.0f}): {detail}")


if __name__ == "__main__":
    main()
