"""An explorative analysis session: history, undo, extraction, statistics.

Walks Shneiderman's "seldom implemented" tasks (paper Section II-C3) —
history, extract, relationships — through one realistic investigation:

1. select the diabetes cohort, refine step by step (with an undo),
2. inspect the session history,
3. compare the final cohort against the rest of the population,
4. extract ids, a reloadable sub-store and a per-patient feature matrix,
5. audit the rendering perceptually before sharing it.

Usage::

    python examples/analysis_session.py
"""

from __future__ import annotations

import os

from repro import Workbench
from repro.cohort.compare import compare_cohorts
from repro.cohort.features import build_feature_matrix
from repro.io import load_store
from repro.simulate import generate_store_fast
from repro.viz.audit import audit_scene

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    print("generating 20,000 synthetic patients ...")
    store, __ = generate_store_fast(20_000, seed=42)
    wb = Workbench.from_store(store)

    # -- an explorative selection with history ---------------------------
    session = wb.session()
    session.select("concept T90", "diabetes")
    session.refine("atleast 2 category gp_contact", "actively managed")
    session.refine("sex F", "women only")          # ... second thoughts
    session.undo()                                  # back to both sexes
    session.refine("age 50 .. 95 at 15706", "50+")
    print("session history (cursor ->):")
    print(session.describe())

    # -- relationships: cohort vs everyone else ---------------------------
    comparison = compare_cohorts(store, list(session.selected_ids))
    print("\ncohort vs reference:")
    print(comparison.format_table(top=5))

    # -- extraction --------------------------------------------------------
    ids_path = os.path.join(OUT_DIR, "session_cohort_ids.csv")
    store_path = os.path.join(OUT_DIR, "session_cohort.npz")
    features_path = os.path.join(OUT_DIR, "session_features.csv")
    n_ids = session.extract_ids(ids_path)
    n_store = session.extract_store(store_path)
    matrix = build_feature_matrix(store, list(session.selected_ids))
    matrix.to_csv(features_path)
    print(f"\nextracted {n_ids} ids -> {ids_path}")
    print(f"extracted sub-store ({n_store} patients) -> {store_path}")
    print(f"feature matrix {matrix.values.shape} -> {features_path}")

    reloaded = load_store(store_path)
    print(f"sub-store reloads: {reloaded}")

    # -- perceptual audit of the shared rendering ---------------------------
    scene = wb.timeline(list(session.selected_ids)[:150])
    audit = audit_scene(scene)
    print(
        f"\nscene audit: {audit.n_marks:,} marks, "
        f"{audit.distinct_hues} hues, "
        f"{audit.readable_glyph_fraction:.0%} glyphs readable, "
        f"preattentive identity: {audit.preattentive_identity}"
    )
    for warning in audit.warnings:
        print(f"  warning: {warning}")
    scene.save(os.path.join(OUT_DIR, "session_cohort.svg"))


if __name__ == "__main__":
    main()
