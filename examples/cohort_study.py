"""The paper's research-project workflow at scale (Section IV).

Recreates the study pipeline end to end:

1. build the 168,000-patient population (fast generator; pass a smaller
   ``--patients`` for a quicker run),
2. select ~13,000 patients on predefined characteristics,
3. produce simplified trajectories (the artifact mailed to patients),
4. run the recognition survey model and print the 92/7/1-style table,
5. mine code associations over the selected cohort — the "discover new
   hypotheses" use case from the paper's conclusion.

Usage::

    python examples/cohort_study.py [--patients 168000]
"""

from __future__ import annotations

import argparse
import os
import time

from repro import Workbench
from repro.alignment import mine_code_pairs
from repro.events.store import EventStore
from repro.simulate import generate_store_fast
from repro.simulate.trajectories import StudyWindow

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=168_000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    window = StudyWindow.for_year(2012)
    print(f"generating {args.patients:,} patients (fast path) ...")
    t0 = time.perf_counter()
    store, summary = generate_store_fast(args.patients, seed=args.seed)
    print(
        f"  {store.n_events:,} events in {time.perf_counter() - t0:.1f}s"
    )
    wb = Workbench.from_store(store)

    # -- selection on predefined characteristics (the 13k of 168k) -------
    query = (
        wb.query()
        .with_concept("T90")            # diabetes in either terminology
        .min_count("gp_contact", 2)     # active primary-care utilization
        .build()
    )
    t0 = time.perf_counter()
    ids = wb.select(query)
    print(
        f"selected {len(ids):,} of {store.n_patients:,} patients "
        f"({len(ids) / store.n_patients:.1%}) "
        f"in {(time.perf_counter() - t0) * 1e3:.0f} ms "
        f"(paper: 13,000 of 168,000 = 7.7%)"
    )
    print(wb.stats(ids).format_table())

    # -- the mailed artifact: simplified trajectories --------------------
    mailout_dir = os.path.join(OUT_DIR, "cohort_study_mailout")
    sample = ids[:25].tolist()
    count = wb.export_timelines(sample, mailout_dir, simplified=True)
    print(f"wrote {count} simplified trajectory pages to {mailout_dir}/")

    # -- the recognition survey -------------------------------------------
    study = wb.recognition_study(ids, window.end_day, seed=7)
    pct = study.as_percentages()
    print("recognition survey (paper: 92% / 7% / 1%):")
    for outcome, value in pct.items():
        print(f"  {outcome:<18} {value:5.1f} %")

    # -- relationships: how does the cohort differ from everyone else? ----
    from repro.cohort.compare import compare_cohorts

    comparison = compare_cohorts(store, ids[:5_000], at_day=window.end_day)
    print("cohort vs rest of population:")
    print(comparison.format_table(top=5))

    # -- time-to-event: diabetes index to first hospital admission --------
    from repro.cohort.alignment import compute_alignment
    from repro.cohort.survival import (
        TimeToEvent,
        kaplan_meier,
        logrank_test,
        time_to_event,
    )
    from repro.query.ast import Category, Concept
    from repro.viz.km_plot import render_km_plot
    import numpy as np

    alignment = compute_alignment(wb.engine, Concept("T90"),
                                  "first diabetes")
    data = time_to_event(wb.engine, alignment, Category("hospital_stay"),
                         window.end_day)
    hf = set(wb.select("concept K77").tolist())
    mask = np.asarray([pid in hf for pid in alignment.aligned_ids()])
    with_hf = TimeToEvent(data.durations[mask], data.observed[mask])
    without = TimeToEvent(data.durations[~mask], data.observed[~mask])
    chi2, p = logrank_test(with_hf, without)
    print(
        f"time to first admission after diabetes index: "
        f"log-rank chi2={chi2:.1f}, p={p:.2e} "
        f"(heart-failure comorbidity, n={int(mask.sum())}, "
        f"vs without, n={int((~mask).sum())})"
    )
    km_path = os.path.join(OUT_DIR, "cohort_study_km.svg")
    render_km_plot(
        {"with heart failure": kaplan_meier(with_hf),
         "without": kaplan_meier(without)},
        title="Time from diabetes index to first hospital admission",
    ).save(km_path)
    print(f"KM curves -> {km_path}")

    # -- hypothesis discovery: code association mining ---------------------
    print("top code associations in the selected cohort "
          "(support/confidence/lift):")
    sub_store = EventStore.from_cohort(wb.cohort(ids[:3_000]))
    rules = mine_code_pairs(sub_store, min_support=0.05,
                            min_confidence=0.3, min_lift=1.1)
    for rule in rules[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
