"""NSEPter baseline vs the timeline view vs alignment-based merging.

Recreates the paper's Section II argument as runnable artifacts:

* Figure 2(a): a small graph of diabetic histories merged around the
  first T90 incidence — readable, thick shared paths.
* Figure 2(b): the same pipeline at several hundred patients — the
  "web of edges", quantified by readability metrics.
* The timeline view of the same cohorts, whose ink grows linearly.
* The successor project's alignment-based merge, which survives the
  one-position noise that breaks NSEPter's rank merge.

Usage::

    python examples/nsepter_comparison.py
"""

from __future__ import annotations

import os

from repro import Workbench
from repro.alignment import SimilarityMatrix, star_alignment
from repro.nsepter import (
    build_graph,
    layout_graph,
    merge_by_regex,
    readability_metrics,
    recursive_neighbour_merge,
)
from repro.simulate import generate_store_fast
from repro.terminology import icpc2
from repro.viz import render_graph
from repro.viz.timeline_view import TimelineConfig, TimelineView

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def nsepter_figure(wb: Workbench, ids: list[int], name: str) -> None:
    """Build, merge, measure and render one NSEPter graph."""
    cohort = wb.cohort(ids)
    graph = build_graph(cohort)
    seeds = merge_by_regex(graph, "T90")
    recursive_neighbour_merge(graph, seeds, depth=2)
    layout = layout_graph(graph)
    metrics = readability_metrics(layout, max_pairs=400_000)
    path = os.path.join(OUT_DIR, name)
    render_graph(graph, layout, label_nodes=len(ids) <= 60).save(path)
    print(
        f"  {name}: {metrics.n_nodes:,} nodes, {metrics.n_edges:,} edges, "
        f"{metrics.edge_crossings:,} crossings "
        f"({metrics.crossings_per_edge:.1f}/edge) -> {path}"
    )


def main() -> None:
    print("generating 5,000 synthetic patients ...")
    store, __ = generate_store_fast(5_000, seed=42)
    wb = Workbench.from_store(store)
    diabetics = wb.select("code icpc2 /T90/").tolist()
    print(f"  {len(diabetics)} diabetic histories available")

    print("Figure 2(a): small merged graph (50 histories)")
    nsepter_figure(wb, diabetics[:50], "fig2a_nsepter_small.svg")

    print("Figure 2(b): several hundred histories — the web of edges")
    nsepter_figure(wb, diabetics[:350], "fig2b_nsepter_large.svg")

    print("timeline view of the same 350 histories (linear ink):")
    scene = TimelineView(store, TimelineConfig()).render(diabetics[:350])
    path = os.path.join(OUT_DIR, "fig2_timeline_contrast.svg")
    scene.save(path)
    print(f"  {scene.ink_marks:,} marks -> {path}")

    print("alignment-based merging vs NSEPter under 1-position noise:")
    sim = SimilarityMatrix(icpc2())
    # The differing position sits right after the index event, so
    # NSEPter's neighbour expansion stops there and never reaches the
    # identical tail — the weakness Section II-A1 documents.
    left = ["T90", "K86", "L84", "R74"]
    right = ["T90", "U71", "L84", "R74"]
    msa = star_alignment({1: left, 2: right}, sim)
    aligned = sum(
        1 for c in msa.columns if c.support == 2 and c.agreement() == 1.0
    )
    from repro.nsepter.graph import HistoryGraph

    graph = HistoryGraph({1: left, 2: right})
    seeds = merge_by_regex(graph, "T90")
    recursive_neighbour_merge(graph, seeds, depth=3)
    fused = sum(
        1
        for pos in range(len(left))
        if any(
            m.patient_id == 2 for m in graph.members(graph.node_of(1, pos))
        )
    )
    print(f"  sequences: {left} vs {right}")
    print(f"  NSEPter rank merge fuses {fused}/3 shareable positions")
    print(f"  star alignment fuses     {aligned}/3 shareable positions")


if __name__ == "__main__":
    main()
