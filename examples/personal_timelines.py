"""Batch export of interactive personal health timelines (pastas.no).

The abstract: "We have also used the tool to produce interactive
personal health time-lines (for more than 10,000 individuals) on the
web."  This example exports a browsable mini-site: an index page linking
one self-contained interactive HTML timeline per patient, in both the
full clinician-facing form and the simplified patient-facing form used
for the recognition study.

Usage::

    python examples/personal_timelines.py [--patients 500]
"""

from __future__ import annotations

import argparse
import os
import time

from repro import Workbench
from repro.simulate import generate_store_fast

OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=500,
                        help="number of timelines to export")
    args = parser.parse_args()

    print("generating 10,000 synthetic patients ...")
    store, __ = generate_store_fast(10_000, seed=42)
    wb = Workbench.from_store(store)

    # Pick the busiest trajectories — the interesting pages.
    ids = wb.select("atleast 10 category gp_contact")[: args.patients]
    print(f"exporting {len(ids)} personal timelines ...")

    full_dir = os.path.join(OUT_DIR, "timelines_full")
    simple_dir = os.path.join(OUT_DIR, "timelines_simplified")
    t0 = time.perf_counter()
    n_full = wb.export_timelines(ids, full_dir)
    n_simple = wb.export_timelines(ids, simple_dir, simplified=True)
    elapsed = time.perf_counter() - t0
    throughput = (n_full + n_simple) / elapsed
    print(
        f"  {n_full} full + {n_simple} simplified pages in {elapsed:.1f}s "
        f"({throughput:.0f} pages/s)"
    )
    print(f"  open {full_dir}/index.html in a browser; scroll to zoom, "
          f"drag to pan, hover for details")

    # At the measured throughput, the paper's >10,000 timelines take:
    eta = 10_000 / (throughput / 2)
    print(f"  extrapolated wall time for 10,000 full pages: {eta:.0f}s")


if __name__ == "__main__":
    main()
