"""Temporal pattern search and interval reasoning.

Demonstrates the workbench's temporal machinery:

1. pattern search — "diabetes diagnosis, then a hospital admission
   within a year, then a specialist follow-up" (the Fails-et-al-style
   temporal query from Section II-D2),
2. alignment — trajectories re-expressed in months around the first
   diabetes event (Section IV-B's second axis mode),
3. Allen-algebra constraint reasoning over one patient's intervals —
   the CNTRO-style functionality the paper reports implementing.

Usage::

    python examples/temporal_patterns.py
"""

from __future__ import annotations

from collections import Counter

from repro import Workbench
from repro.query.ast import Category, Concept
from repro.query.temporal_patterns import PatternStep, TemporalPattern
from repro.simulate import generate_store_fast
from repro.temporal import (
    AllenRelation,
    Interval,
    TemporalConstraintNetwork,
    relation_between,
)


def main() -> None:
    print("generating 20,000 synthetic patients ...")
    store, __ = generate_store_fast(20_000, seed=42)
    wb = Workbench.from_store(store)

    # -- 1. temporal pattern search --------------------------------------
    pattern = TemporalPattern(
        steps=(
            PatternStep(Concept("T90"), "diabetes diagnosis"),
            PatternStep(Category("hospital_stay"), "hospital admission"),
            PatternStep(Category("specialist_contact"), "specialist visit"),
        ),
        min_gap=1,
        max_gap=365,
    )
    matches = wb.find_patterns(pattern)
    patients = {m.patient_id for m in matches}
    print(
        f"pattern <diabetes -> admission (<=365d) -> specialist (<=365d)>: "
        f"{len(matches)} matches across {len(patients)} patients"
    )
    spans = [m.span_days for m in matches]
    if spans:
        spans.sort()
        print(
            f"  match span days: median {spans[len(spans) // 2]}, "
            f"min {spans[0]}, max {spans[-1]}"
        )

    # The Fails-et-al event chart: one row per hit, aligned on step 1.
    if matches:
        import os

        from repro.viz.event_chart import render_event_chart

        chart = render_event_chart(matches, pattern)
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "pattern_event_chart.svg")
        chart.save(path)
        print(f"  event chart ({chart.n_rows} rows) -> {path}")

    # -- 1b. the complementary absence query: care gaps --------------------
    from repro.query.temporal_patterns import AbsencePattern, find_care_gaps

    gap_pattern = AbsencePattern(
        anchor=Concept("T90"),
        expected=Category("gp_contact"),
        within=180,
    )
    gaps = find_care_gaps(wb.engine, gap_pattern)
    print(
        f"care gaps: {len(gaps)} diabetics had no GP contact within "
        f"180 days of their first diabetes code"
    )

    # -- 2. alignment: relative months around the index event --------------
    alignment = wb.align(Concept("T90"), "first diabetes")
    months = Counter()
    mask = wb.engine.event_mask(Category("hospital_stay"))
    stay_patients = store.patient[mask]
    stay_days = store.day[mask]
    for pid, day in zip(stay_patients.tolist(), stay_days.tolist()):
        if pid in alignment:
            months[round(alignment.relative_months(pid, day))] += 1
    print("hospital admissions by months since first diabetes code:")
    for month in sorted(m for m in months if -6 <= m <= 12):
        print(f"  {month:+3d} mo: {'#' * min(60, months[month])}")

    # -- 3. interval reasoning over one trajectory --------------------------
    pid = sorted(patients)[0] if patients else int(store.patient_ids[0])
    history = store.materialize(pid)
    intervals = {
        f"{iv.category}:{i}": iv.interval
        for i, iv in enumerate(history.intervals[:4])
    }
    print(f"Allen relations between patient {pid}'s first intervals:")
    names = list(intervals)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            rel = relation_between(intervals[a], intervals[b])
            print(f"  {a} {rel.name.lower()} {b}")

    # A constraint problem: when could an (unrecorded) rehabilitation
    # period have happened, given it started during the first stay and
    # finished before the next prescription ended?
    network = TemporalConstraintNetwork()
    stay = next(
        (iv.interval for iv in history.intervals
         if iv.category == "hospital_stay"),
        Interval(15_400, 15_410),
    )
    rx = next(
        (iv.interval for iv in history.intervals
         if iv.category == "prescription" and iv.start >= stay.start),
        Interval(stay.end + 10, stay.end + 100),
    )
    network.constrain("rehab", "stay",
                      [AllenRelation.OVERLAPPED_BY, AllenRelation.STARTS,
                       AllenRelation.DURING, AllenRelation.FINISHES])
    network.constrain("rehab", "rx",
                      [AllenRelation.BEFORE, AllenRelation.MEETS,
                       AllenRelation.OVERLAPS, AllenRelation.DURING])
    network.constrain("stay", "rx",
                      relation_between(stay, rx))
    network.propagate()
    print("feasible rehab-vs-stay relations after propagation:",
          sorted(r.value for r in network.relation("rehab", "stay")))
    scenario = network.realize()
    print("one consistent scenario (abstract day line):",
          {k: (v.start, v.end) for k, v in scenario.items()})


if __name__ == "__main__":
    main()
