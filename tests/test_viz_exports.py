"""Tests for personal-timeline HTML export and NSEPter graph rendering."""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET

import pytest

from repro.errors import RenderError
from repro.events.model import Cohort, History, PointEvent
from repro.events.store import EventStore
from repro.nsepter import build_graph, layout_graph, merge_by_regex
from repro.query.ast import Concept
from repro.viz.graph_view import render_graph
from repro.viz.html_export import (
    export_batch,
    export_personal_timeline,
    personal_timeline_svg,
)


@pytest.fixture(scope="module")
def ids(small_engine):
    return small_engine.patients(Concept("T90"))[:12].tolist()


class TestPersonalTimeline:
    def test_svg_valid_and_faceted(self, small_store, ids):
        history = small_store.materialize(ids[0])
        svg = personal_timeline_svg(history)
        ET.fromstring(svg)
        assert "Diagnoses" in svg
        assert "Medications" in svg

    def test_simplified_form_hides_clinical_facets(self, small_store, ids):
        history = small_store.materialize(ids[0])
        svg = personal_timeline_svg(history, simplified=True)
        assert "Diagnoses" not in svg
        assert "Your health service visits" in svg

    def test_empty_history_rejected(self):
        history = History(patient_id=1, birth_day=0)
        with pytest.raises(RenderError):
            personal_timeline_svg(history)

    def test_html_is_self_contained(self, small_store, ids, tmp_path):
        path = tmp_path / "p.html"
        html = export_personal_timeline(small_store, ids[0], str(path))
        assert path.exists()
        assert "<svg" in html
        assert "<script>" in html
        assert "http://" not in html.split("xmlns")[0]  # no external deps

    def test_batch_export_writes_index(self, small_store, ids, tmp_path):
        directory = tmp_path / "web"
        count = export_batch(small_store, ids, str(directory))
        assert count == len(ids)
        assert (directory / "index.html").exists()
        pages = [f for f in os.listdir(directory) if f.startswith("patient_")]
        assert len(pages) == count

    def test_batch_skips_empty_histories(self, tmp_path):
        cohort = Cohort([
            History(patient_id=1, birth_day=0,
                    points=[PointEvent(day=10, category="diagnosis",
                                       code="T90", system="ICPC-2")]),
            History(patient_id=2, birth_day=0),  # empty
        ])
        store = EventStore.from_cohort(cohort)
        count = export_batch(store, [1, 2], str(tmp_path / "w"))
        assert count == 1


class TestGraphRendering:
    def test_graph_svg_valid(self, small_store, ids):
        cohort = small_store.to_cohort(ids)
        graph = build_graph(cohort)
        merge_by_regex(graph, "T90")
        svg = render_graph(graph, layout_graph(graph))
        ET.fromstring(svg.to_string())

    def test_merged_node_highlighted(self, small_store, ids):
        cohort = small_store.to_cohort(ids)
        graph = build_graph(cohort)
        merge_by_regex(graph, "T90")
        text = render_graph(graph, layout_graph(graph)).to_string()
        assert "#D55E00" in text  # merged-node color present

    def test_large_canvas_scaled_down(self, small_store):
        ids = small_store.patient_ids[:150].tolist()
        cohort = small_store.to_cohort(ids)
        graph = build_graph(cohort)
        svg = render_graph(graph, layout_graph(graph), max_canvas=800.0)
        root = ET.fromstring(svg.to_string())
        assert float(root.get("width")) <= 800.0
        assert float(root.get("height")) <= 800.0


class TestCohortPage:
    def test_cohort_page_interactive(self, small_store, ids, tmp_path):
        from repro.viz.html_export import export_cohort_page

        path = str(tmp_path / "cohort.html")
        html = export_cohort_page(small_store, ids, path,
                                  title="Diabetes cohort")
        assert "<svg" in html
        assert "wheel" in html  # the zoom script
        assert "Diabetes cohort" in html
        assert open(path, encoding="utf-8").read() == html
