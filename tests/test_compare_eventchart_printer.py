"""Tests for cohort comparison, the event chart and the query printer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cohort.compare import compare_cohorts
from repro.errors import QueryError, RenderError
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventAnd,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
    TimeWindow,
    ValueRange,
)
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.printer import to_text
from repro.query.temporal_patterns import (
    PatternSearcher,
    PatternStep,
    TemporalPattern,
)
from repro.viz.event_chart import render_event_chart


class TestCompareCohorts:
    def test_diabetes_cohort_over_represents_its_codes(self, small_store,
                                                       small_engine):
        ids = small_engine.patients(HasEvent(Concept("T90")))
        comparison = compare_cohorts(small_store, ids)
        over = {c.code for c in comparison.over_represented[:15]}
        assert "T90" in over
        # medication classes follow (the simulator prescribes them)
        assert {"A10BA02", "A10BB12"} & over

    def test_relative_risk_finite_with_smoothing(self, small_store,
                                                 small_engine):
        ids = small_engine.patients(HasEvent(Concept("T90")))
        comparison = compare_cohorts(small_store, ids)
        for contrast in comparison.over_represented:
            assert contrast.relative_risk < 1e6

    def test_reference_default_is_complement(self, small_store,
                                             small_engine):
        ids = small_engine.patients(HasEvent(Concept("T90")))
        comparison = compare_cohorts(small_store, ids)
        assert (comparison.n_cohort + comparison.n_reference
                == small_store.n_patients)

    def test_explicit_reference(self, small_store, small_engine):
        diabetics = small_engine.patients(HasEvent(Concept("T90")))
        females = small_engine.patients(SexIs("F"))
        comparison = compare_cohorts(small_store, diabetics, females)
        assert comparison.n_reference == len(females)

    def test_utilization_ratio_above_one_for_chronic(self, small_store,
                                                     small_engine):
        ids = small_engine.patients(HasEvent(Concept("T90")))
        comparison = compare_cohorts(small_store, ids)
        assert comparison.events_per_patient_ratio > 1.2

    def test_empty_cohort_rejected(self, small_store):
        with pytest.raises(QueryError):
            compare_cohorts(small_store, [])

    def test_format_table(self, small_store, small_engine):
        ids = small_engine.patients(HasEvent(Concept("T90")))
        text = compare_cohorts(small_store, ids).format_table()
        assert "over-represented" in text
        assert "RR=" in text


class TestEventChart:
    @pytest.fixture(scope="class")
    def matches(self, small_engine):
        pattern = TemporalPattern(
            steps=(
                PatternStep(Concept("T90"), "diabetes"),
                PatternStep(Category("hospital_stay"), "admission"),
            ),
            min_gap=1, max_gap=365,
        )
        return PatternSearcher(small_engine).find(pattern), pattern

    def test_valid_svg_one_row_per_match(self, matches):
        found, pattern = matches
        scene = render_event_chart(found[:30], pattern)
        ET.fromstring(scene.svg_text)
        assert scene.n_rows == min(30, len(found))

    def test_sampling_beyond_max_rows(self, matches):
        found, pattern = matches
        if len(found) < 10:
            pytest.skip("too few matches at this scale")
        scene = render_event_chart(found, pattern, max_rows=10)
        assert scene.n_rows == 10

    def test_step_labels_in_header(self, matches):
        found, pattern = matches
        scene = render_event_chart(found[:5], pattern)
        assert "diabetes" in scene.svg_text
        assert "admission" in scene.svg_text

    def test_empty_matches_rejected(self, matches):
        __, pattern = matches
        with pytest.raises(RenderError):
            render_event_chart([], pattern)


# -- query printer round-trip --------------------------------------------------

_atoms = st.sampled_from([
    HasEvent(Concept("T90")),
    HasEvent(Category("gp_contact")),
    HasEvent(CodeMatch("ICPC-2", "F.*|H.*")),
    HasEvent(CodeMatch("ICD-10", "I2[015]")),
    HasEvent(EventAnd((Category("gp_contact"), TimeWindow(15_340, 15_700)))),
    CountAtLeast(Category("gp_contact"), 3),
    FirstBefore(Concept("K86"), 15_600),
    AgeRange(40, 90, 15_706),
    SexIs("F"),
])


def _queries(depth: int):
    if depth == 0:
        return _atoms
    smaller = _queries(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(PatientNot, smaller),
        st.builds(lambda a, b: PatientAnd((a, b)), smaller, smaller),
        st.builds(lambda a, b: PatientOr((a, b)), smaller, smaller),
    )


class TestQueryPrinter:
    @given(_queries(2))
    def test_roundtrip_identity(self, query):
        assert parse_query(to_text(query)) == query

    def test_roundtrip_preserves_semantics(self, small_engine):
        query = PatientAnd((
            HasEvent(Concept("T90")),
            PatientOr((SexIs("F"), CountAtLeast(Category("gp_contact"), 5))),
        ))
        reparsed = parse_query(to_text(query))
        a = small_engine.patients(query)
        b = small_engine.patients(reparsed)
        assert (a == b).all()

    def test_regex_slash_escaping(self):
        query = HasEvent(CodeMatch("ICPC-2", "F.*/x"))
        assert parse_query(to_text(query)) == query

    def test_unprintable_raises(self):
        with pytest.raises(QueryError):
            to_text(HasEvent(ValueRange(1, 2)))

    def test_during_form(self):
        query = HasEvent(
            EventAnd((Category("gp_contact"), TimeWindow(100, 200)))
        )
        text = to_text(query)
        assert text.startswith("during 100 .. 200")
        assert parse_query(text) == query
