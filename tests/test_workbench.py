"""End-to-end integration tests through the Workbench facade."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.query.ast import Category, Concept
from repro.query.temporal_patterns import PatternStep, TemporalPattern
from repro.simulate.recall import RecallOutcome
from repro.viz.timeline_view import TimelineConfig
from repro.workbench import Workbench


class TestEndToEnd:
    def test_text_and_builder_selection_agree(self, workbench):
        from_text = workbench.select("concept T90")
        from_builder = workbench.select(
            workbench.query().with_concept("T90").build()
        )
        assert (from_text == from_builder).all()

    def test_select_returns_sorted_ids(self, workbench):
        ids = workbench.select("category gp_contact")
        assert (np.diff(ids) > 0).all()

    def test_cohort_materialization(self, workbench):
        ids = workbench.select("concept T90")[:10]
        cohort = workbench.cohort(ids)
        assert cohort.patient_ids == [int(p) for p in ids]

    def test_stats_roundtrip(self, workbench):
        ids = workbench.select("concept T90")
        stats = workbench.stats(ids)
        assert stats.n_patients == len(ids)

    def test_timeline_calendar_and_aligned(self, workbench):
        ids = workbench.select("concept T90")[:20]
        scene = workbench.timeline(ids)
        ET.fromstring(scene.svg_text)
        alignment = workbench.align(Concept("T90"), "first diabetes")
        aligned = workbench.timeline(
            ids, TimelineConfig(mode="aligned"), alignment
        )
        ET.fromstring(aligned.svg_text)
        assert aligned.rows  # at least the anchored subset drawn

    def test_personal_timeline_export(self, workbench, tmp_path):
        ids = workbench.select("concept T90")[:3]
        count = workbench.export_timelines(ids, str(tmp_path / "web"))
        assert count == 3

    def test_pattern_search(self, workbench):
        pattern = TemporalPattern(
            steps=(
                PatternStep(Concept("T90")),
                PatternStep(Category("gp_contact")),
            ),
            min_gap=1,
        )
        matches = workbench.find_patterns(pattern)
        diabetics = set(workbench.select("concept T90").tolist())
        assert {m.patient_id for m in matches} <= diabetics

    def test_nsepter_baseline(self, workbench):
        ids = workbench.select("code icpc2 /T90/")[:25]
        plain = workbench.nsepter_graph(ids)
        merged = workbench.nsepter_graph(ids, merge_pattern="T90",
                                         recursion_depth=1)
        assert merged.n_nodes < plain.n_nodes

    def test_recognition_study(self, workbench, raw_sources):
        ids = workbench.select("concept T90")
        study = workbench.recognition_study(
            ids, raw_sources.window.end_day, seed=1
        )
        assert sum(study.counts.values()) == len(ids)
        assert study.fraction(RecallOutcome.RECOGNIZED) > 0.8

    def test_full_paper_workflow(self, workbench, raw_sources, tmp_path):
        """The paper's Section IV workflow end to end: select a cohort on
        predefined characteristics, build trajectories, present them
        simplified, collect recognition feedback."""
        window_end = raw_sources.window.end_day
        selection = (
            workbench.query()
            .with_concept("T90")
            .min_count("gp_contact", 1)
            .build()
        )
        ids = workbench.select(selection)
        assert 0 < len(ids) < workbench.store.n_patients
        exported = workbench.export_timelines(
            ids[:5], str(tmp_path / "mailout"), simplified=True
        )
        assert exported == 5
        study = workbench.recognition_study(ids, window_end, seed=7)
        pct = study.as_percentages()
        assert pct["recognized"] > 80.0
        assert pct["all_wrong"] < 5.0
