"""Tests for axis rendering details (ticks, labels, month boundaries)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import date

from repro.temporal.timeline import day_number
from repro.viz.axes import (
    TimeScale,
    ZoomSliders,
    render_aligned_axis,
    render_calendar_axis,
    render_patient_axis,
)
from repro.viz.svg import SvgDocument


def text_labels(svg: SvgDocument) -> list[str]:
    root = ET.fromstring(svg.to_string())
    ns = "{http://www.w3.org/2000/svg}"
    return [el.text for el in root.iter(f"{ns}text")]


class TestCalendarAxis:
    def test_year_boundaries_labelled_with_year(self):
        svg = SvgDocument(1200, 100)
        first = day_number(date(2011, 11, 1))
        last = day_number(date(2012, 3, 1))
        scale = TimeScale(first, 6.0, 40)
        render_calendar_axis(svg, scale, first, last, 60, 10)
        labels = text_labels(svg)
        assert "2012" in labels  # the January tick shows the year
        assert any(lab in labels for lab in ("Nov", "Dec", "Feb"))

    def test_zoomed_out_thins_labels(self):
        svg = SvgDocument(600, 80)
        first = day_number(date(2010, 1, 1))
        last = day_number(date(2014, 1, 1))
        scale = TimeScale(first, 0.3, 40)  # ~9px per month
        render_calendar_axis(svg, scale, first, last, 60, 10)
        labels = [lab for lab in text_labels(svg) if lab]
        n_months = 48
        assert 0 < len(labels) < n_months / 2

    def test_grid_optional(self):
        first = day_number(date(2012, 1, 1))
        last = day_number(date(2012, 6, 1))
        scale = TimeScale(first, 4.0, 40)
        with_grid = SvgDocument(900, 80)
        render_calendar_axis(with_grid, scale, first, last, 60, 10,
                             grid=True)
        without = SvgDocument(900, 80)
        render_calendar_axis(without, scale, first, last, 60, 10,
                             grid=False)
        assert with_grid.to_string().count("<line") > \
            without.to_string().count("<line")


class TestAlignedAxis:
    def test_anchor_labelled_zero(self):
        svg = SvgDocument(900, 80)
        scale = TimeScale(-200, 2.0, 450)
        render_aligned_axis(svg, scale, -200, 200, 60, 10)
        labels = text_labels(svg)
        assert "0" in labels
        assert any(lab and lab.startswith("+") for lab in labels)
        assert any(lab and lab.startswith("-") for lab in labels)

    def test_signed_month_labels(self):
        svg = SvgDocument(900, 80)
        scale = TimeScale(-100, 3.0, 350)
        render_aligned_axis(svg, scale, -100, 100, 60, 10)
        labels = [lab for lab in text_labels(svg) if lab and "mo" in lab]
        assert labels  # has e.g. "+2 mo"


class TestPatientAxis:
    def test_labels_drawn_when_rows_readable(self):
        svg = SvgDocument(300, 300)
        render_patient_axis(svg, [101, 202, 303], row_height=20.0,
                            plot_top=10, x=60)
        labels = text_labels(svg)
        assert {"101", "202", "303"} <= set(labels)

    def test_labels_skipped_when_rows_tiny(self):
        svg = SvgDocument(300, 300, background=None)
        render_patient_axis(svg, list(range(100)), row_height=2.0,
                            plot_top=10, x=60)
        assert "<text" not in svg.to_string()


class TestZoomFitEdgeCases:
    def test_single_day_single_row(self):
        sliders = ZoomSliders.fit(1, 1, 800, 600)
        assert sliders.px_per_day > 0
        assert sliders.row_height > 0

    def test_huge_cohort_clamps_to_minimum(self):
        sliders = ZoomSliders.fit(100_000, 1_000_000, 800, 600)
        assert sliders.horizontal == 0.0 or sliders.px_per_day <= 0.05
        assert sliders.vertical == 0.0 or sliders.row_height <= 0.06
