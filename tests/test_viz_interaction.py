"""Tests for the interaction layer: viewport, hit index, details, diffing."""

from __future__ import annotations

import time

import pytest

from repro.config import RESPONSE_TIME_BOUND_S
from repro.errors import RenderError
from repro.query.ast import Category, Concept
from repro.viz.interaction import (
    HitIndex,
    InteractionSession,
    Viewport,
    diff_scenes,
)
from repro.viz.timeline_view import TimelineConfig, TimelineView


class TestViewport:
    def test_pan_and_zoom(self):
        vp = Viewport(100, 200, 0, 50)
        assert vp.pan_days(10).first_day == 110
        assert vp.pan_rows(-10).top_row == 0  # clamped
        zoomed = vp.zoom_time(0.5)
        assert zoomed.span_days == pytest.approx(50)
        assert (zoomed.first_day + zoomed.last_day) / 2 == pytest.approx(150)

    def test_zoom_around_pivot_keeps_pivot(self):
        vp = Viewport(0, 100, 0, 10)
        zoomed = vp.zoom_time(0.5, around_day=20)
        # pivot keeps its relative position (20% from the left)
        assert (20 - zoomed.first_day) / zoomed.span_days == pytest.approx(0.2)

    def test_invalid_viewport_rejected(self):
        with pytest.raises(RenderError):
            Viewport(10, 10, 0, 5)
        with pytest.raises(RenderError):
            Viewport(0, 10, 0, 0)
        with pytest.raises(RenderError):
            Viewport(0, 10, 0, 5).zoom_time(0)

    def test_zoom_rows(self):
        vp = Viewport(0, 10, 0, 10)
        assert vp.zoom_rows(0.5).n_rows == 5
        assert vp.zoom_rows(0.01).n_rows == 1  # floor at 1


@pytest.fixture(scope="module")
def scene(small_store, small_engine):
    ids = small_engine.patients(Concept("T90"))[:40].tolist()
    return TimelineView(small_store).render(ids)


class TestHitIndex:
    def test_hit_finds_drawn_mark(self, scene):
        index = HitIndex(scene.marks)
        target = next(m for m in scene.marks if m.kind == "point")
        hit = index.hit(target.x + target.width / 2,
                        target.y + target.height / 2)
        assert hit is not None
        assert hit.patient_id == target.patient_id

    def test_miss_outside_canvas(self, scene):
        index = HitIndex(scene.marks)
        assert index.hit(-100.0, -100.0) is None

    def test_topmost_over_background_bar(self, scene):
        """Point glyphs win over the history bar beneath them."""
        index = HitIndex(scene.marks)
        target = next(m for m in scene.marks if m.kind == "point")
        hit = index.hit(target.x + target.width / 2,
                        target.y + target.height / 2)
        assert hit.kind != "bar"

    def test_bad_cell_size_rejected(self, scene):
        with pytest.raises(RenderError):
            HitIndex(scene.marks, cell_size=0)


class TestInteractionSession:
    def test_details_text_format(self, scene):
        session = InteractionSession(scene)
        target = next(m for m in scene.marks if m.kind == "point")
        text = session.details_at(target.x + target.width / 2,
                                  target.y + target.height / 2)
        assert text is not None
        assert f"patient {target.patient_id}" in text

    def test_details_memoized(self, scene):
        session = InteractionSession(scene)
        first = session.details_at(300, 100)
        second = session.details_at(300, 100)
        assert first == second

    def test_response_time_bound(self, scene):
        """Shneiderman's 0.1 s budget — with huge margin (E8 shape)."""
        session = InteractionSession(scene)
        start = time.perf_counter()
        lookups = 0
        for x in range(100, 1000, 9):
            for y in range(20, 700, 13):
                session.details_at(float(x), float(y))
                lookups += 1
        per_lookup = (time.perf_counter() - start) / lookups
        assert per_lookup < RESPONSE_TIME_BOUND_S / 10

    def test_patient_at_row(self, scene):
        session = InteractionSession(scene)
        y = scene.plot_top + scene.row_height * 2.5
        assert session.patient_at(y) == scene.rows[2]
        assert session.patient_at(-5.0) is None

    def test_day_at_inverts_scale(self, scene):
        session = InteractionSession(scene)
        x = scene.scale.x(15_400)
        assert session.day_at(x) == pytest.approx(15_400)


class TestDiffScenes:
    def test_pan_zoom_reports_no_changes(self, small_store, scene):
        """Same data, different zoom: change highlighting stays quiet."""
        from repro.viz.axes import ZoomSliders

        other = TimelineView(
            small_store,
            TimelineConfig(sliders=ZoomSliders(horizontal=0.9, vertical=0.9)),
        ).render(scene.rows)
        appeared, disappeared = diff_scenes(scene, other)
        assert appeared == [] and disappeared == []

    def test_filter_change_reports_exact_delta(self, small_store, scene):
        without_contacts = TimelineView(
            small_store, TimelineConfig(draw_contacts=False)
        ).render(scene.rows)
        appeared, disappeared = diff_scenes(scene, without_contacts)
        assert appeared == []
        assert disappeared
        assert all("contact" in m.category or m.category in
                   ("outpatient_visit", "day_treatment")
                   for m in disappeared)
