"""Tests for deduplication and the end-to-end integration pipeline."""

from __future__ import annotations

import pytest

from repro.sources.dedup import deduplicate
from repro.sources.integrate import IntegrationPipeline, PatientRecord
from repro.sources.parsed import ParsedEvent
from repro.sources.schema import (
    GPClaim,
    HospitalEpisode,
    MunicipalServiceRecord,
    SpecialistClaim,
)


def diag(pid, day, code, system, source):
    return ParsedEvent(patient_id=pid, day=day, category="diagnosis",
                       code=code, system=system, source_kind=source)


class TestDedup:
    def test_exact_duplicates_removed(self):
        event = diag(1, 10, "T90", "ICPC-2", "gp_claim")
        kept, report = deduplicate([event, event])
        assert len(kept) == 1
        assert report.exact_duplicates == 1

    def test_concept_duplicate_across_terminologies(self):
        """T90 (GP) and E11 (specialist) on the same day are one concept."""
        events = [
            diag(1, 10, "T90", "ICPC-2", "gp_claim"),
            diag(1, 10, "E11", "ICD-10", "specialist_claim"),
        ]
        kept, report = deduplicate(events)
        assert len(kept) == 1
        assert report.concept_duplicates == 1
        assert report.cross_source_pairs == [("gp_claim", "specialist_claim")]

    def test_different_days_not_deduped(self):
        events = [
            diag(1, 10, "T90", "ICPC-2", "gp_claim"),
            diag(1, 11, "E11", "ICD-10", "specialist_claim"),
        ]
        kept, __ = deduplicate(events)
        assert len(kept) == 2

    def test_different_patients_not_deduped(self):
        events = [
            diag(1, 10, "T90", "ICPC-2", "gp_claim"),
            diag(2, 10, "E11", "ICD-10", "specialist_claim"),
        ]
        kept, __ = deduplicate(events)
        assert len(kept) == 2

    def test_unrelated_concepts_kept(self):
        events = [
            diag(1, 10, "T90", "ICPC-2", "gp_claim"),
            diag(1, 10, "K86", "ICPC-2", "gp_claim"),
        ]
        kept, __ = deduplicate(events)
        assert len(kept) == 2

    def test_non_diagnosis_events_never_concept_deduped(self):
        events = [
            ParsedEvent(patient_id=1, day=10, category="gp_contact",
                        source_kind="gp_claim"),
            ParsedEvent(patient_id=1, day=10, category="gp_contact",
                        source_kind="gp_claim", detail="second visit"),
        ]
        kept, __ = deduplicate(events)
        assert len(kept) == 2


class TestPipeline:
    @pytest.fixture()
    def pipeline(self) -> IntegrationPipeline:
        return IntegrationPipeline(horizon_day=20_000)

    def test_failed_records_counted_not_fatal(self, pipeline):
        store, report = pipeline.run(
            patients=[PatientRecord(1, 0, "F")],
            gp_claims=[
                GPClaim(1, "31.02.2012", "T90"),  # impossible date
                GPClaim(1, "15.03.2012", "T90"),
            ],
        )
        assert report.failed_records == 1
        assert store.n_events == 2  # contact + diagnosis

    def test_before_birth_rule(self, pipeline):
        store, report = pipeline.run(
            patients=[PatientRecord(1, 16_000, "F")],  # born ~2013
            gp_claims=[GPClaim(1, "15.03.2012", "T90")],  # pre-birth
        )
        assert report.before_birth == 2
        assert store.n_events == 0

    def test_unknown_patient_dropped(self, pipeline):
        store, report = pipeline.run(
            patients=[PatientRecord(1, 0, "F")],
            gp_claims=[GPClaim(99, "15.03.2012", "T90")],
        )
        assert report.unknown_patient == 2
        assert store.n_events == 0

    def test_interval_truncated_to_horizon(self):
        pipeline = IntegrationPipeline(horizon_day=15_500)
        store, report = pipeline.run(
            patients=[PatientRecord(1, 0, "F")],
            municipal_records=[
                MunicipalServiceRecord(1, "nursing_home", "2012-03-01", ""),
            ],
        )
        assert store.n_events == 1
        history = store.materialize(1)
        assert history.intervals[0].end == 15_501

    def test_care_levels_counted_via_ontology(self, pipeline):
        __, report = pipeline.run(
            patients=[PatientRecord(1, 0, "F")],
            gp_claims=[GPClaim(1, "15.03.2012", "")],
            hospital_episodes=[
                HospitalEpisode(1, "2012-05-01", "2012-05-03", "inpatient")
            ],
            municipal_records=[
                MunicipalServiceRecord(1, "home_care", "2012-06-01",
                                       "2012-07-01")
            ],
            specialist_claims=[SpecialistClaim(1, "20/03/2012")],
        )
        assert report.contacts_by_care_level == {
            "PrimaryCare": 1, "SpecialistCare": 2, "MunicipalCare": 1,
        }

    def test_loaded_events_arithmetic(self, pipeline):
        __, report = pipeline.run(
            patients=[PatientRecord(1, 0, "F")],
            gp_claims=[
                GPClaim(1, "15.03.2012", "T90"),
                GPClaim(1, "15.03.2012", "T90"),  # exact dup of both events
            ],
        )
        assert report.parsed_events == 4
        assert report.dedup.removed == 2
        assert report.loaded_events == 2

    def test_end_to_end_fixture(self, workbench):
        """The 400-patient session fixture integrated without surprises."""
        report = workbench.report
        assert report is not None
        assert report.patients == 400
        assert report.loaded_events == workbench.store.n_events
        assert report.failed_records < report.parsed_events * 0.02
        # every care level observed in a 400-patient two-year window
        assert all(v > 0 for v in report.contacts_by_care_level.values())
