"""Tests for the ICPC-2 <-> ICD-10 concept map and regex helpers."""

from __future__ import annotations

import pytest

from repro.errors import TerminologyError, UnknownCodeError
from repro.terminology import (
    TerminologyMap,
    any_of,
    branch_selection,
    exact,
    icpc2,
    icpc2_to_icd10_map,
    prefix_pattern,
)


class TestMapping:
    def test_diabetes_both_directions(self):
        mapping = icpc2_to_icd10_map()
        assert set(mapping.to_icd10("T90")) == {"E11", "E14"}
        assert "T90" in mapping.to_icpc2("E11")

    def test_unmapped_returns_empty(self):
        mapping = icpc2_to_icd10_map()
        assert mapping.to_icd10("A97") != ()  # mapped (Z00)
        assert mapping.to_icd10("Z29") == ()  # social problems: unmapped

    def test_expand_concept_from_either_side(self):
        mapping = icpc2_to_icd10_map()
        icpc_side, icd_side = mapping.expand_concept("T90")
        assert icpc_side == {"T90"}
        assert icd_side == {"E11", "E14"}
        icpc_side2, icd_side2 = mapping.expand_concept("E11")
        assert "T90" in icpc_side2
        assert icd_side2 == {"E11"}

    def test_expand_unknown_code_raises(self):
        with pytest.raises(UnknownCodeError):
            icpc2_to_icd10_map().expand_concept("NOPE")

    def test_map_validates_codes_at_build_time(self):
        with pytest.raises(UnknownCodeError):
            TerminologyMap({"T90": ("NOT-A-CODE",)})
        with pytest.raises(UnknownCodeError):
            TerminologyMap({"XX99": ("E11",)})

    def test_backward_is_exact_inverse(self):
        mapping = icpc2_to_icd10_map()
        for icpc_code in mapping.mapped_icpc2_codes():
            for icd_code in mapping.to_icd10(icpc_code):
                assert icpc_code in mapping.to_icpc2(icd_code)


class TestRegexHelpers:
    def test_prefix_pattern_is_the_paper_idiom(self):
        assert prefix_pattern("F") == "F.*"

    def test_prefix_pattern_escapes_metacharacters(self):
        pattern = prefix_pattern("I20-I25")
        hits = [c.code for c in __import__(
            "repro.terminology", fromlist=["icd10"]
        ).icd10().match(pattern)]
        assert "I20-I25" in hits

    def test_any_of_reproduces_eye_or_ear(self):
        pattern = any_of(prefix_pattern("F"), prefix_pattern("H"))
        hits = icpc2().match(pattern)
        assert {c.code[0] for c in hits} == {"F", "H"}

    def test_exact(self):
        assert icpc2().match(exact("T90")) == [icpc2().get("T90")]

    def test_empty_prefix_rejected(self):
        with pytest.raises(TerminologyError):
            prefix_pattern("")

    def test_any_of_requires_patterns(self):
        with pytest.raises(TerminologyError):
            any_of()

    def test_branch_selection_label_defaults(self):
        selection = branch_selection(icpc2(), "F", "H")
        assert selection.label == "F|H"
        assert len(selection.ids) > 80
