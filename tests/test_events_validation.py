"""Tests for history cleaning (the paper's invalid-date rule)."""

from __future__ import annotations

from repro.events.model import History, IntervalEvent, PointEvent
from repro.events.validation import clean_history
from repro.temporal.timeline import Interval


def test_pre_birth_points_dropped():
    """Section IV: entries dated before birth are ignored."""
    history = History(
        patient_id=1, birth_day=1000,
        points=[
            PointEvent(day=500, category="diagnosis", code="T90"),
            PointEvent(day=1500, category="diagnosis", code="T90"),
        ],
    )
    cleaned, report = clean_history(history)
    assert report.before_birth == 1
    assert [p.day for p in cleaned.points] == [1500]


def test_interval_straddling_birth_truncated():
    history = History(
        patient_id=1, birth_day=1000,
        intervals=[IntervalEvent(Interval(900, 1100), "hospital_stay")],
    )
    cleaned, report = clean_history(history)
    assert report.truncated_intervals == 1
    assert cleaned.intervals[0].interval == Interval(1000, 1100)


def test_interval_entirely_before_birth_dropped():
    history = History(
        patient_id=1, birth_day=1000,
        intervals=[IntervalEvent(Interval(100, 200), "hospital_stay")],
    )
    cleaned, report = clean_history(history)
    assert report.before_birth == 1
    assert not cleaned.intervals


def test_horizon_drops_and_truncates():
    history = History(
        patient_id=1, birth_day=0,
        points=[PointEvent(day=400, category="diagnosis")],
        intervals=[IntervalEvent(Interval(250, 500), "nursing_home")],
    )
    cleaned, report = clean_history(history, horizon_day=300)
    assert report.after_horizon == 1       # the day-400 point
    assert report.truncated_intervals == 1
    assert cleaned.intervals[0].interval == Interval(250, 301)


def test_exact_duplicates_collapse():
    event = PointEvent(day=100, category="diagnosis", code="T90",
                       system="ICPC-2", source="gp_claim")
    history = History(patient_id=1, birth_day=0, points=[event, event])
    cleaned, report = clean_history(history)
    assert report.duplicates == 1
    assert len(cleaned.points) == 1


def test_near_duplicates_kept():
    history = History(
        patient_id=1, birth_day=0,
        points=[
            PointEvent(day=100, category="diagnosis", code="T90",
                       source="gp_claim"),
            PointEvent(day=100, category="diagnosis", code="T90",
                       source="specialist_claim"),
        ],
    )
    cleaned, report = clean_history(history)
    assert report.duplicates == 0
    assert len(cleaned.points) == 2


def test_report_merge_accumulates():
    h1 = History(patient_id=1, birth_day=1000,
                 points=[PointEvent(day=1, category="x")])
    h2 = History(patient_id=2, birth_day=1000,
                 points=[PointEvent(day=2, category="x")])
    __, r1 = clean_history(h1)
    __, r2 = clean_history(h2)
    r1.merge(r2)
    assert r1.before_birth == 2
    assert r1.dropped == 2


def test_clean_history_preserves_demographics():
    history = History(patient_id=7, birth_day=123, sex="M")
    cleaned, report = clean_history(history)
    assert (cleaned.patient_id, cleaned.birth_day, cleaned.sex) == (7, 123, "M")
    assert report.kept == 0
