"""Crash matrix: kill append/compaction at *every* durable-write step.

The incremental-ingestion protocol claims each multi-step operation is
atomic at its single root-manifest replace: a crash at any earlier
fsync/``os.replace`` boundary leaves the store exactly in its
pre-operation state (plus harmless orphan directories), and a crash at
any later boundary leaves it exactly in the post-operation state.  No
intermediate state is ever observable, no delta event is ever lost or
duplicated.

Rather than hand-pick "interesting" crash sites, the matrix first runs
each operation under :class:`~repro.resilience.faults.count_crashpoints`
to enumerate every instrumented boundary, then re-runs it once per
boundary under :class:`~repro.resilience.faults.crash_at` and checks
the reopened store with the strict (non-quarantining) config:

* it opens — no checksum or format error;
* ``fsck`` is clean (orphans are reported, never failures);
* its effective event content equals the pre- or the post-state;
* if pre, simply re-running the operation reaches the post-state.

A final test drives concurrent readers — fresh opens and a warmed
process pool — through a compaction install and asserts every observed
``content_token`` is the pre- or post-token (never a torn hybrid) and
every query answer stays correct.
"""

from __future__ import annotations

import shutil
import threading

import numpy as np
import pytest

from repro.errors import SimulatedCrashError
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.resilience.faults import count_crashpoints, crash_at
from repro.shard import (
    Compactor,
    DeltaWriter,
    ParallelExecutor,
    ShardedEventStore,
    fsck_store,
    subset_store,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast


@pytest.fixture(scope="module")
def population():
    store, __ = generate_store_fast(40, seed=5)
    return store


@pytest.fixture(scope="module")
def split(population):
    pids = np.sort(population.patient_ids)
    base = subset_store(population, pids[:30])
    batch = subset_store(population, pids[30:])
    return base, batch


@pytest.fixture(scope="module")
def template(split, tmp_path_factory):
    """A pristine 2-shard base store the matrix copies per crash step."""
    base, __ = split
    path = str(tmp_path_factory.mktemp("crash") / "base.shards")
    write_sharded_store(base, path, n_shards=2)
    return path


def _copy(template: str, tmp_path, name: str) -> str:
    dst = str(tmp_path / name)
    shutil.copytree(template, dst)
    return dst


def _effective(path: str):
    """The store's effective event content under the strict config."""
    return ShardedEventStore(path).materialize_store()


def _enumerate(op, path) -> int:
    """How many crash boundaries ``op`` passes on a throwaway copy."""
    with count_crashpoints() as trace:
        op(path)
    assert trace.labels, "operation passed no crash points"
    assert all(
        label.split(":", 1)[0] in ("fsync", "replace", "install", "installed")
        for label in trace.labels
    )
    return len(trace.labels)


def test_append_crash_matrix(template, split, tmp_path):
    __, batch = split
    pre = _effective(template)
    probe = _copy(template, tmp_path, "probe")
    DeltaWriter(probe).append(batch)
    post = _effective(probe)
    assert not pre.content_equal(post)

    n = _enumerate(lambda p: DeltaWriter(p).append(batch),
                   _copy(template, tmp_path, "count"))
    committed = 0
    for step in range(1, n + 1):
        work = _copy(template, tmp_path, f"append-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            DeltaWriter(work).append(batch)
        assert fsck_store(work).ok, f"fsck dirty after crash at step {step}"
        state = _effective(work)
        if state.content_equal(post):
            committed += 1
        else:
            # Pre-commit crash: nothing of the batch is visible, and a
            # plain retry (which sweeps the orphan delta dirs) lands it.
            assert state.content_equal(pre), (
                f"torn state after crash at step {step}"
            )
            DeltaWriter(work).append(batch)
            assert _effective(work).content_equal(post)
            assert fsck_store(work).ok
    # The commit point is the single root-manifest replace: exactly the
    # crash *after* it (and any later boundary) shows the post-state.
    assert committed >= 1
    assert committed < n


def test_compact_crash_matrix(template, split, tmp_path):
    __, batch = split
    appended = _copy(template, tmp_path, "appended")
    DeltaWriter(appended).append(batch)
    truth = _effective(appended)

    n = _enumerate(lambda p: Compactor(p).compact(),
                   _copy(appended, tmp_path, "count"))
    for step in range(1, n + 1):
        work = _copy(appended, tmp_path, f"compact-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            Compactor(work).compact()
        # Compaction never changes content, so *every* crash leaves the
        # effective view identical — only the physical layout may be in
        # the pre- or post-install arrangement.
        assert fsck_store(work).ok, f"fsck dirty after crash at step {step}"
        assert _effective(work).content_equal(truth), (
            f"content changed by crashed compaction at step {step}"
        )
        # Re-running the compactor finishes the job idempotently.
        Compactor(work).compact()
        reopened = ShardedEventStore(work)
        assert not reopened.has_pending_deltas
        assert reopened.materialize_store().content_equal(truth)
        assert fsck_store(work).ok


def test_append_then_compact_crash_chain(template, split, tmp_path):
    """A crash mid-append followed by a crash mid-compact still
    converges: retry append, retry compact, content intact."""
    __, batch = split
    work = _copy(template, tmp_path, "chain")
    probe = _copy(template, tmp_path, "chain-probe")
    DeltaWriter(probe).append(batch)
    truth = _effective(probe)

    with crash_at(3), pytest.raises(SimulatedCrashError):
        DeltaWriter(work).append(batch)
    DeltaWriter(work).append(batch)
    with crash_at(2), pytest.raises(SimulatedCrashError):
        Compactor(work).compact()
    Compactor(work).compact()
    store = ShardedEventStore(work)
    assert not store.has_pending_deltas
    assert store.materialize_store().content_equal(truth)
    assert fsck_store(work).ok


# -- sketch sidecars under crashes ---------------------------------------------


def _assert_sketches_truthful(path: str, context: str) -> None:
    """The reopened store's sketch fold must equal a fresh row sketch.

    This is the "never silently wrong" contract: a crash may leave a
    sidecar absent or stale (the read path rebuilds from columns), but
    folding must always reproduce the brute-force row recomputation.
    """
    from repro.sketch import build_sketch

    store = ShardedEventStore(path)
    folded = store.store_sketch()
    truth = build_sketch(store.materialize_store())
    assert folded.content_equal(truth), (
        f"sketch fold diverged from rows {context}"
    )
    statuses = {h["status"] for h in store.sketch_health()}
    assert statuses <= {"ok", "missing", "stale", "corrupt"}


def test_sketch_writes_pass_crash_boundaries(template, split, tmp_path):
    """Sidecar writes ride the same crashpoint() harness as every other
    durable store file — they are part of the enumerated matrix, not a
    side channel."""
    __, batch = split
    with count_crashpoints() as trace:
        DeltaWriter(_copy(template, tmp_path, "labels")).append(batch)
    assert any("sketch.npz" in label for label in trace.labels)
    with count_crashpoints() as trace:
        appended = _copy(template, tmp_path, "labels-compact")
        DeltaWriter(appended).append(batch)
        Compactor(appended).compact()
    assert any("sketch.npz" in label for label in trace.labels)


def test_append_crash_matrix_keeps_sketches_truthful(template, split,
                                                     tmp_path):
    __, batch = split
    n = _enumerate(lambda p: DeltaWriter(p).append(batch),
                   _copy(template, tmp_path, "sk-count"))
    for step in range(1, n + 1):
        work = _copy(template, tmp_path, f"sk-append-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            DeltaWriter(work).append(batch)
        _assert_sketches_truthful(work, f"after append crash at step {step}")
        # Rebuilding sidecars restores full health without content change.
        store = ShardedEventStore(work)
        store.rebuild_sketches()
        assert all(h["status"] == "ok" for h in store.sketch_health())
        _assert_sketches_truthful(work, f"after rebuild at step {step}")


def test_compact_crash_matrix_keeps_sketches_truthful(template, split,
                                                      tmp_path):
    __, batch = split
    appended = _copy(template, tmp_path, "sk-appended")
    DeltaWriter(appended).append(batch)
    n = _enumerate(lambda p: Compactor(p).compact(),
                   _copy(appended, tmp_path, "sk-count2"))
    for step in range(1, n + 1):
        work = _copy(appended, tmp_path, f"sk-compact-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            Compactor(work).compact()
        _assert_sketches_truthful(work, f"after compact crash at step {step}")
        # Finishing the compaction leaves sidecar-only folds exact.
        Compactor(work).compact()
        store = ShardedEventStore(work)
        store.rebuild_sketches()
        assert all(h["status"] == "ok" for h in store.sketch_health())
        _assert_sketches_truthful(work, f"after recompact at step {step}")


# -- concurrent readers through a compaction install ---------------------------


def test_concurrent_reads_see_pre_or_post_never_torn(tmp_path):
    population, __ = generate_store_fast(120, seed=9)
    pids = np.sort(population.patient_ids)
    base = subset_store(population, pids[:90])
    path = str(tmp_path / "live.shards")
    write_sharded_store(base, path, n_shards=4)
    writer = DeltaWriter(path)
    for lo in range(90, 120, 10):
        writer.append(subset_store(population, pids[lo:lo + 10]))

    query = parse_query("sex F or sex M")
    flat = QueryEngine(population, optimize=True)
    expected = flat.patients(query)
    pre_token = ShardedEventStore(path).content_token()

    tokens_seen: set[str] = set()
    failures: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            snapshot = ShardedEventStore(path)
            # Per-open token snapshot: whatever revision this reader
            # caught, its token and its answers must be consistent.
            tokens_seen.add(snapshot.content_token())
            got = QueryEngine(snapshot).patients(query)
            if not np.array_equal(got, expected):
                failures.append(
                    f"query returned {len(got)} of {len(expected)} ids"
                )
                return

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        Compactor(path).compact()
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    post_token = ShardedEventStore(path).content_token()
    assert post_token != pre_token
    assert not failures
    assert tokens_seen <= {pre_token, post_token}, (
        f"torn token observed: {tokens_seen - {pre_token, post_token}}"
    )


def test_warmed_pool_survives_append_and_compact(tmp_path):
    """Pool workers cache per-path stores; the revision handshake must
    reopen them after an append or a compaction install."""
    population, __ = generate_store_fast(60, seed=21)
    pids = np.sort(population.patient_ids)
    base = subset_store(population, pids[:45])
    batch = subset_store(population, pids[45:])
    path = str(tmp_path / "pool.shards")
    write_sharded_store(base, path, n_shards=2)

    query = parse_query("sex F or sex M")
    sharded = ShardedEventStore(path)
    with ParallelExecutor(n_workers=2) as executor:
        engine = QueryEngine(sharded, executor=executor)
        before = engine.patients(query)
        assert len(before) == base.n_patients

        DeltaWriter(path).append(batch)
        assert sharded.refresh()
        after_append = engine.patients(query)
        assert len(after_append) == population.n_patients

        Compactor(path).compact()
        assert sharded.refresh()
        after_compact = engine.patients(query)
        assert np.array_equal(after_compact, after_append)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
