"""Unit tests for the query planner, the LRU result cache and explain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.events.store import EventStoreBuilder
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventAnd,
    EventNot,
    EventOr,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
    TimeWindow,
)
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.planner import (
    AllEvents,
    AllPatients,
    EmptyEvents,
    NoPatients,
    SelectivityEstimator,
    normalize_event,
    normalize_patient,
    plan_query,
)

_A = Category("gp_contact")
_B = Category("hospital_stay")
_C = Category("blood_pressure")
_PA = SexIs("F")
_PB = HasEvent(_A)
_PC = AgeRange(40, 90, 15_700)


class TestNormalization:
    def test_flattens_nested_and(self):
        nested = EventAnd((EventAnd((_A, _B)), _C))
        flat = normalize_event(nested)
        assert isinstance(flat, EventAnd)
        assert set(flat.children) == {_A, _B, _C}

    def test_commuted_queries_share_one_plan_key(self):
        left = PatientAnd((_PA, PatientAnd((_PB, _PC))))
        right = PatientAnd((PatientAnd((_PC, _PA)), _PB))
        assert plan_query(left).key == plan_query(right).key

    def test_duplicate_children_deduped(self):
        assert normalize_event(EventAnd((_A, _A))) == _A
        assert normalize_patient(PatientOr((_PA, _PA))) == _PA

    def test_double_negation_cancels(self):
        assert normalize_event(EventNot(EventNot(_A))) == _A
        assert normalize_patient(PatientNot(PatientNot(_PA))) == _PA

    def test_de_morgan_pushes_not_to_leaves(self):
        norm = normalize_event(EventNot(EventAnd((_A, _B))))
        assert isinstance(norm, EventOr)
        assert set(norm.children) == {EventNot(_A), EventNot(_B)}
        norm = normalize_patient(PatientNot(PatientOr((_PA, _PB))))
        assert isinstance(norm, PatientAnd)
        assert set(norm.children) == {PatientNot(_PA), PatientNot(_PB)}

    def test_contradiction_folds_empty(self):
        assert normalize_event(EventAnd((_A, EventNot(_A)))) == EmptyEvents()
        assert normalize_patient(
            PatientAnd((_PA, PatientNot(_PA)))
        ) == NoPatients()

    def test_tautology_folds_universal(self):
        assert normalize_event(EventOr((_A, EventNot(_A)))) == AllEvents()
        assert normalize_patient(
            PatientOr((_PA, PatientNot(_PA)))
        ) == AllPatients()

    def test_empty_terms_propagate(self):
        empty = EventAnd((_A, EventNot(_A)))  # folds to EmptyEvents
        assert normalize_patient(HasEvent(empty)) == NoPatients()
        assert normalize_patient(CountAtLeast(empty, 3)) == NoPatients()
        assert normalize_patient(FirstBefore(empty, 15_000)) == NoPatients()
        # ... and through the boolean layer above.
        assert normalize_patient(
            PatientAnd((_PA, HasEvent(empty)))
        ) == NoPatients()
        assert normalize_patient(
            PatientOr((_PA, HasEvent(empty)))
        ) == _PA

    def test_has_event_of_universal_is_not_all_patients(self):
        # A patient with zero events is in the store but has no row.
        universal = EventOr((_A, EventNot(_A)))
        norm = normalize_patient(HasEvent(universal))
        assert norm == HasEvent(AllEvents())

    def test_event_expr_implicitly_wrapped(self):
        assert normalize_patient(_A) == HasEvent(_A)

    def test_unknown_nodes_rejected(self):
        class Weird:
            pass

        with pytest.raises(QueryError):
            plan_query(Weird())  # type: ignore[arg-type]


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache(max_entries=4)
        key = ("tok", "mask", "k")
        assert cache.get(key) is None
        stored = cache.put(key, np.arange(5))
        assert cache.get(key) is stored
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_entries_are_read_only(self):
        cache = QueryCache()
        array = cache.put(("t", "patients", "k"), np.arange(3, dtype=np.int64))
        with pytest.raises(ValueError):
            array[0] = 99

    def test_lru_eviction_by_entries(self):
        cache = QueryCache(max_entries=2)
        keys = [("t", "mask", str(i)) for i in range(3)]
        cache.put(keys[0], np.zeros(1))
        cache.put(keys[1], np.zeros(1))
        cache.get(keys[0])  # refresh 0 so 1 is the LRU victim
        cache.put(keys[2], np.zeros(1))
        assert keys[0] in cache and keys[2] in cache
        assert keys[1] not in cache
        assert cache.stats.evictions == 1

    def test_eviction_by_bytes(self):
        cache = QueryCache(max_entries=100, max_bytes=100)
        cache.put(("t", "mask", "a"), np.zeros(10, dtype=np.float64))  # 80 B
        cache.put(("t", "mask", "b"), np.zeros(10, dtype=np.float64))
        assert len(cache) == 1
        assert cache.nbytes <= 100

    def test_oversized_entry_still_cached(self):
        cache = QueryCache(max_entries=4, max_bytes=8)
        key = ("t", "mask", "big")
        cache.put(key, np.zeros(100))
        assert key in cache

    def test_stats_dict_shape(self):
        stats = QueryCache().stats_dict()
        assert set(stats) == {
            "hits", "misses", "evictions", "hit_rate", "entries", "bytes",
            "max_entries", "max_bytes",
        }


class TestEngineIntegration:
    def test_repeated_query_hits_cache(self, small_store):
        engine = QueryEngine(small_store, optimize=True)
        query = PatientAnd((_PB, _PA))
        first = engine.patients(query)
        hits_before = engine.cache.stats.hits
        second = engine.patients(query)
        assert np.array_equal(first, second)
        assert engine.cache.stats.hits > hits_before

    def test_refinement_reuses_shared_subtrees(self, small_store):
        engine = QueryEngine(small_store, optimize=True)
        engine.patients(PatientAnd((_PB, _PA)))
        misses_before = engine.cache.stats.misses
        # The refinement shares both children; only the new conjunction
        # and the added clause are fresh work.
        engine.patients(PatientAnd((_PB, _PA, _PC)))
        fresh = engine.cache.stats.misses - misses_before
        assert fresh <= 3

    def test_shared_cache_across_stores_is_safe(self, small_store):
        other = EventStoreBuilder()
        other.add_patient(1, birth_day=-10_000, sex="M")
        other.add_event(1, 15_400, "gp_contact", source="gp_claim")
        other_store = other.build()
        shared = QueryCache()
        engine_a = QueryEngine(small_store, cache=shared)
        engine_b = QueryEngine(other_store, cache=shared)
        ids_a = engine_a.patients(_PB)
        ids_b = engine_b.patients(_PB)
        assert ids_b.tolist() == [1]
        assert not np.array_equal(ids_a, ids_b)
        assert small_store.content_token() != other_store.content_token()

    def test_content_token_memoized_and_content_addressed(self, small_store):
        assert small_store.content_token() == small_store.content_token()
        builder = EventStoreBuilder()
        builder.add_patient(1, birth_day=-10_000, sex="M")
        a = builder.build()
        builder.add_event(1, 15_400, "gp_contact", source="gp_claim")
        b = builder.build()
        assert a.content_token() != b.content_token()

    def test_planned_first_before_matches_naive(self, small_store):
        planned = QueryEngine(small_store, optimize=True)
        naive = QueryEngine(small_store, optimize=False)
        expr = FirstBefore(Concept("T90"), 15_500)
        assert np.array_equal(planned.patients(expr), naive.patients(expr))

    def test_event_and_orders_by_selectivity(self, small_store):
        # Evaluating the rare clause first must not change the mask.
        planned = QueryEngine(small_store, optimize=True)
        naive = QueryEngine(small_store, optimize=False)
        expr = EventAnd((_A, TimeWindow(15_400, 15_410),
                         CodeMatch("ICPC-2", "T90")))
        assert np.array_equal(planned.event_mask(expr),
                              naive.event_mask(expr))

    def test_explain_mentions_cache_state(self, small_store):
        engine = QueryEngine(small_store, optimize=True)
        query = PatientAnd((_PB, _PA))
        before = engine.explain(query)
        assert "[cached]" not in before
        engine.patients(query)
        after = engine.explain(query)
        assert "[cached]" in after
        assert "est=" in after
        assert "plan for:" in after

    def test_cache_stats_payload(self, small_store):
        engine = QueryEngine(small_store, optimize=True)
        engine.patients(_PA)
        payload = engine.cache_stats()
        assert payload["optimize"] is True
        assert payload["misses"] >= 1


class TestSelectivityEstimator:
    def test_estimates_bounded(self, small_store):
        estimator = SelectivityEstimator(small_store)
        exprs = [
            _A, EventNot(_A), EventAnd((_A, _B)), EventOr((_A, _B)),
            CodeMatch("ICPC-2", "T90"), Concept("T90"),
            TimeWindow(15_000, 16_000),
        ]
        for expr in exprs:
            assert 0.0 <= estimator.event(expr) <= 1.0
        for expr in [_PA, _PB, _PC, PatientNot(_PA),
                     CountAtLeast(_A, 3), FirstBefore(_A, 15_500)]:
            assert 0.0 <= estimator.patient(expr) <= 1.0

    def test_rarer_category_estimates_lower(self, small_store):
        estimator = SelectivityEstimator(small_store)
        common = estimator.event(Category("gp_contact"))
        missing = estimator.event(Category("no_such_category"))
        assert missing == 0.0
        assert common > 0.0

    def test_sex_estimate_exact(self, small_store):
        estimator = SelectivityEstimator(small_store)
        exact = (small_store.sexes == 1).mean()
        assert estimator.patient(SexIs("F")) == pytest.approx(exact)

    def test_empty_store_estimates_zero(self):
        store = EventStoreBuilder().build()
        estimator = SelectivityEstimator(store)
        assert estimator.event(_A) == 0.0
        assert estimator.patient(_PA) == 0.0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
