"""Tests for the EL-style reasoner: subsumption, realization, consistency."""

from __future__ import annotations

import pytest

from repro.errors import InconsistentOntologyError
from repro.ontology.model import (
    Conjunction,
    DataHasValue,
    NamedClass,
    ObjectSomeValuesFrom,
    Ontology,
    SubPropertyOf,
)
from repro.ontology.reasoner import Reasoner


def chain_ontology() -> Ontology:
    ont = Ontology("chain")
    a = ont.declare_class("A")
    b = ont.declare_class("B")
    c = ont.declare_class("C")
    ont.subclass_of(a, b)
    ont.subclass_of(b, c)
    return ont


class TestSubsumption:
    def test_transitive_closure(self):
        reasoner = Reasoner(chain_ontology())
        assert reasoner.is_subclass_of("A", "C")
        assert not reasoner.is_subclass_of("C", "A")

    def test_reflexive_and_thing(self):
        reasoner = Reasoner(chain_ontology())
        assert reasoner.is_subclass_of("A", "A")
        assert reasoner.is_subclass_of("A", "Thing")

    def test_direct_superclasses_skip_indirect(self):
        reasoner = Reasoner(chain_ontology())
        assert reasoner.direct_superclasses("A") == {"B"}

    def test_subclasses(self):
        reasoner = Reasoner(chain_ontology())
        assert reasoner.subclasses("C") == {"A", "B", "C"}

    def test_equivalence_creates_mutual_subsumption(self):
        ont = Ontology("eq")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        ont.equivalent(a, b)
        reasoner = Reasoner(ont)
        assert reasoner.is_subclass_of("A", "B")
        assert reasoner.is_subclass_of("B", "A")

    def test_conjunction_subsumption(self):
        ont = Ontology("conj")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        d = ont.declare_class("D")
        ont.subclass_of(Conjunction((a, b)), c)
        ont.subclass_of(d, a)
        ont.subclass_of(d, b)
        reasoner = Reasoner(ont)
        assert reasoner.is_subclass_of("D", "C")
        assert not reasoner.is_subclass_of("A", "C")

    def test_existential_chain(self):
        """A ⊑ ∃r.B, ∃r.B ⊑ C entails A ⊑ C."""
        ont = Ontology("ex")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        ont.declare_object_property("r")
        ont.subclass_of(a, ObjectSomeValuesFrom("r", b))
        ont.subclass_of(ObjectSomeValuesFrom("r", b), c)
        reasoner = Reasoner(ont)
        assert reasoner.is_subclass_of("A", "C")

    def test_existential_filler_subsumption(self):
        """A ⊑ ∃r.B1, B1 ⊑ B, ∃r.B ⊑ C entails A ⊑ C (CR4 via filler)."""
        ont = Ontology("ex2")
        a = ont.declare_class("A")
        b1 = ont.declare_class("B1")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        ont.declare_object_property("r")
        ont.subclass_of(b1, b)
        ont.subclass_of(a, ObjectSomeValuesFrom("r", b1))
        ont.subclass_of(ObjectSomeValuesFrom("r", b), c)
        assert Reasoner(ont).is_subclass_of("A", "C")

    def test_property_hierarchy_in_existentials(self):
        """A ⊑ ∃s.B, s ⊑ r, ∃r.B ⊑ C entails A ⊑ C."""
        ont = Ontology("props")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        ont.declare_object_property("r")
        ont.declare_object_property("s")
        ont.add_axiom(SubPropertyOf("s", "r"))
        ont.subclass_of(a, ObjectSomeValuesFrom("s", b))
        ont.subclass_of(ObjectSomeValuesFrom("r", b), c)
        assert Reasoner(ont).is_subclass_of("A", "C")

    def test_data_value_atoms(self):
        ont = Ontology("vals")
        a = ont.declare_class("A")
        ont.declare_data_property("kind")
        ont.subclass_of(DataHasValue("kind", "x"), a)
        reasoner = Reasoner(ont)
        ind = ont.add_individual("i")
        ind.set_value("kind", "x")
        reasoner2 = Reasoner(ont)
        assert "A" in reasoner2.instance_types("i")


class TestRealization:
    def test_types_close_under_subsumption(self):
        ont = chain_ontology()
        ont.add_individual("x").assert_type(NamedClass("A"))
        reasoner = Reasoner(ont)
        assert reasoner.instance_types("x") >= {"A", "B", "C"}

    def test_role_assertion_triggers_existential(self):
        ont = Ontology("role")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        ont.declare_object_property("r")
        ont.subclass_of(ObjectSomeValuesFrom("r", b), c)
        x = ont.add_individual("x")
        y = ont.add_individual("y")
        x.relate("r", "y")
        y.assert_type(b)
        reasoner = Reasoner(ont)
        assert "C" in reasoner.instance_types("x")
        assert "C" not in reasoner.instance_types("y")

    def test_instances_of(self):
        ont = chain_ontology()
        ont.add_individual("x").assert_type(NamedClass("A"))
        ont.add_individual("y").assert_type(NamedClass("C"))
        reasoner = Reasoner(ont)
        assert reasoner.instances_of("C") == {"x", "y"}
        assert reasoner.instances_of("A") == {"x"}


class TestConsistency:
    def test_unsatisfiable_class_detected(self):
        ont = Ontology("bad")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        c = ont.declare_class("C")
        ont.disjoint(a, b)
        ont.subclass_of(c, a)
        ont.subclass_of(c, b)
        reasoner = Reasoner(ont)
        assert "C" in reasoner.unsatisfiable_classes()
        with pytest.raises(InconsistentOntologyError, match="unsatisfiable"):
            reasoner.check_consistency()

    def test_individual_disjointness_violation(self):
        ont = Ontology("badind")
        a = ont.declare_class("A")
        b = ont.declare_class("B")
        ont.disjoint(a, b)
        ind = ont.add_individual("x")
        ind.assert_type(a)
        ind.assert_type(b)
        with pytest.raises(InconsistentOntologyError, match="x"):
            Reasoner(ont).check_consistency()

    def test_consistent_ontology_passes(self):
        Reasoner(chain_ontology()).check_consistency()

    def test_reasoner_is_snapshot(self):
        ont = chain_ontology()
        reasoner = Reasoner(ont)
        d = ont.declare_class("D")
        ont.subclass_of(d, NamedClass("A"))
        # The old reasoner does not see D; a new one does.
        assert not reasoner.is_subclass_of("D", "C")
        assert Reasoner(ont).is_subclass_of("D", "C")
