"""Tests for the SVG backend and preattentive color assignment."""

from __future__ import annotations

import pytest

from repro.errors import RenderError
from repro.viz.colors import (
    MAX_PREATTENTIVE_HUES,
    QUALITATIVE_PALETTE,
    assign_colors,
    contrast_ratio,
    label_color_for,
    relative_luminance,
)
from repro.viz.svg import SvgDocument


class TestSvgDocument:
    def test_minimal_document_is_valid_xml(self):
        import xml.etree.ElementTree as ET

        svg = SvgDocument(100, 50)
        svg.rect(1, 2, 10, 10, fill="#ff0000", title="tip")
        svg.line(0, 0, 10, 10)
        svg.circle(5, 5, 2)
        svg.polygon([(0, 0), (4, 0), (2, 3)])
        svg.text(1, 1, "héllo <&>")
        svg.path("M 0 0 L 5 5")
        ET.fromstring(svg.to_string())

    def test_bad_canvas_rejected(self):
        with pytest.raises(RenderError):
            SvgDocument(0, 10)

    def test_zero_size_rect_skipped(self):
        svg = SvgDocument(10, 10, background=None)
        svg.rect(0, 0, 0, 5)
        assert "<rect" not in svg.to_string()

    def test_groups_must_balance(self):
        svg = SvgDocument(10, 10)
        svg.open_group(id="g1")
        with pytest.raises(RenderError, match="unclosed"):
            svg.to_string()
        svg.close_group()
        assert "</g>" in svg.to_string()

    def test_close_without_open_rejected(self):
        with pytest.raises(RenderError):
            SvgDocument(10, 10).close_group()

    def test_title_tooltip_escaped(self):
        svg = SvgDocument(10, 10)
        svg.rect(0, 0, 5, 5, title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in svg.to_string()

    def test_attribute_quoting(self):
        svg = SvgDocument(10, 10)
        svg.text(0, 5, "x", family='serif"evil')
        import xml.etree.ElementTree as ET

        ET.fromstring(svg.to_string())

    def test_save(self, tmp_path):
        svg = SvgDocument(10, 10)
        path = tmp_path / "out.svg"
        svg.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_polygon_needs_three_points(self):
        with pytest.raises(RenderError):
            SvgDocument(10, 10).polygon([(0, 0), (1, 1)])


class TestColors:
    def test_palette_within_preattentive_budget(self):
        assert len(QUALITATIVE_PALETTE) <= MAX_PREATTENTIVE_HUES

    def test_assignment_stable_and_deterministic(self):
        keys = ["C07", "A10", "C09", "C07"]  # duplicate key
        assignment = assign_colors(keys)
        assert assignment["C07"] == QUALITATIVE_PALETTE[0]
        assert assignment["A10"] == QUALITATIVE_PALETTE[1]
        assert len(assignment.colors) == 3
        assert not assignment.saturated

    def test_saturation_flag_past_budget(self):
        keys = [f"G{i}" for i in range(MAX_PREATTENTIVE_HUES + 3)]
        assignment = assign_colors(keys)
        assert assignment.saturated
        # every key still gets a distinct color
        assert len(set(assignment.colors.values())) == len(keys)

    def test_fallback_colors_are_valid_hex(self):
        keys = [f"G{i}" for i in range(20)]
        for color in assign_colors(keys).colors.values():
            assert len(color) == 7 and color.startswith("#")
            relative_luminance(color)  # must parse

    def test_luminance_bounds(self):
        assert relative_luminance("#000000") == 0.0
        assert relative_luminance("#ffffff") == pytest.approx(1.0)

    def test_contrast_ratio_range(self):
        assert contrast_ratio("#000000", "#ffffff") == pytest.approx(21.0)
        assert contrast_ratio("#888888", "#888888") == 1.0

    def test_label_color_readable(self):
        for background in QUALITATIVE_PALETTE:
            label = label_color_for(background)
            assert contrast_ratio(background, label) >= 3.0

    def test_bad_hex_rejected(self):
        with pytest.raises(RenderError):
            relative_luminance("red")

    def test_get_with_default(self):
        assignment = assign_colors(["A"])
        assert assignment.get("missing") == "#888888"
        assert "A" in assignment
