"""Tests for the three concrete code systems (ICPC-2, ICD-10, ATC)."""

from __future__ import annotations

import pytest

from repro.terminology import (
    ATC_MAIN_GROUPS,
    CHAPTERS,
    ancestor_at_level,
    atc,
    component_of,
    icd10,
    icpc2,
    level_of,
)


class TestIcpc2:
    def test_all_17_chapters_present(self):
        system = icpc2()
        assert len(CHAPTERS) == 17
        for letter in CHAPTERS:
            assert letter in system
            assert system.get(letter).kind == "chapter"

    def test_paper_examples_exist(self):
        system = icpc2()
        # T90 is the diabetes code from the NSEPter figure.
        assert system.get("T90").display.startswith("Diabetes")
        assert system.get("K86").display.startswith("Hypertension")

    def test_process_codes_identical_across_chapters(self):
        system = icpc2()
        assert (
            system.get("A50").display
            == system.get("T50").display
            == "Medication - prescription/request/renewal/injection"
        )

    def test_every_rubric_child_of_its_chapter(self):
        system = icpc2()
        for code in system:
            if code.kind != "chapter":
                assert code.parent == code.code[0]

    def test_eye_or_ear_regex_spans_two_chapters(self):
        hits = icpc2().match("F.*|H.*")
        chapters = {c.code[0] for c in hits}
        assert chapters == {"F", "H"}
        assert len(hits) > 80  # both chapters' full rubric sets

    @pytest.mark.parametrize(
        "code,component",
        [("A01", 1), ("T34", 2), ("K50", 3), ("D60", 4), ("N62", 5),
         ("R67", 6), ("T90", 7)],
    )
    def test_component_of(self, code, component):
        assert component_of(code) == component


class TestIcd10:
    def test_all_chapters_present(self):
        system = icd10()
        assert len(system.roots()) == 22

    def test_category_under_block_under_chapter(self):
        system = icd10()
        ancestors = [c.code for c in system.ancestors("E11")]
        assert ancestors == ["E10-E14", "IV"]

    def test_diabetes_block_subtree(self):
        system = icd10()
        codes = {system.code_of(i).code for i in system.subtree_ids("E10-E14")}
        assert {"E10", "E11", "E14"} <= codes

    def test_category_regex(self):
        hits = {c.code for c in icd10().match("I2[015]")}
        assert hits == {"I20", "I21", "I25"}


class TestAtc:
    def test_14_main_groups(self):
        system = atc()
        assert len(ATC_MAIN_GROUPS) == 14
        assert len(system.roots()) == 14

    def test_paper_beta_blocker_example(self):
        """The paper names atenolol and propranolol under 'beta blocker'."""
        system = atc()
        assert system.get("C07AB03").display == "atenolol"
        assert system.get("C07AA05").display == "propranolol"
        assert system.is_a("C07AB03", "C07")
        assert system.is_a("C07AA05", "C07")
        assert system.get("C07").display == "Beta blocking agents"

    def test_level_of(self):
        assert level_of("C") == 1
        assert level_of("C07") == 2
        assert level_of("C07A") == 3
        assert level_of("C07AB") == 4
        assert level_of("C07AB02") == 5

    def test_ancestor_at_level_matches_hierarchy(self):
        system = atc()
        for substance in ("C07AB02", "A10BA02", "N06AB04"):
            structural = ancestor_at_level(substance, 2)
            via_hierarchy = [
                a.code for a in system.ancestors(substance) if len(a.code) == 3
            ]
            assert [structural] == via_hierarchy

    def test_every_substance_is_level5(self):
        system = atc()
        for code in system:
            if code.kind == "substance":
                assert level_of(code.code) == 5
                assert system.depth(code.code) == 4
