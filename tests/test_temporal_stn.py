"""Tests for the Simple Temporal Network, including schedule properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InconsistentConstraintsError, TemporalError
from repro.temporal.stn import SimpleTemporalNetwork


def care_pathway() -> SimpleTemporalNetwork:
    """discharge -> follow-up in 20..60d -> prescription 0..3d after."""
    stn = SimpleTemporalNetwork()
    stn.constrain("discharge", "follow_up", 20, 60)
    stn.constrain("follow_up", "rx", 0, 3)
    return stn


class TestConsistency:
    def test_consistent_pathway(self):
        care_pathway().check_consistency()

    def test_negative_cycle_detected(self):
        stn = SimpleTemporalNetwork()
        stn.constrain("a", "b", 10, 20)
        stn.constrain("b", "c", 10, 20)
        stn.constrain("a", "c", 0, 15)  # needs >= 20
        with pytest.raises(InconsistentConstraintsError):
            stn.check_consistency()

    def test_empty_bound_rejected(self):
        with pytest.raises(TemporalError):
            SimpleTemporalNetwork().constrain("a", "b", 5, 3)

    def test_repeated_constraints_intersect(self):
        stn = SimpleTemporalNetwork()
        stn.constrain("a", "b", 0, 100)
        stn.constrain("a", "b", 10, 50)
        assert stn.feasible_window("a", "b") == (10, 50)


class TestSchedules:
    def test_earliest_schedule(self):
        stn = care_pathway()
        earliest = stn.earliest_schedule("discharge")
        assert earliest["discharge"] == 0
        assert earliest["follow_up"] == 20
        assert earliest["rx"] == 20

    def test_latest_schedule(self):
        stn = care_pathway()
        latest = stn.latest_schedule("discharge")
        assert latest["follow_up"] == 60
        assert latest["rx"] == 63

    def test_schedules_satisfy_constraints(self):
        stn = care_pathway()
        for prefer in ("earliest", "latest"):
            schedule = stn.schedule("discharge", prefer)
            finite = {p: v for p, v in schedule.items()
                      if abs(v) < math.inf}
            assert stn.satisfied_by(finite)

    def test_feasible_window_propagates(self):
        stn = care_pathway()
        assert stn.feasible_window("discharge", "rx") == (20, 63)

    def test_anchor(self):
        stn = care_pathway()
        stn.anchor("discharge", 15_000)
        earliest = stn.earliest_schedule("__origin__")
        assert earliest["discharge"] == 15_000
        assert earliest["rx"] == 15_020

    def test_unknown_point_rejected(self):
        with pytest.raises(TemporalError):
            care_pathway().earliest_schedule("ghost")

    def test_from_interval_chain(self):
        stn = SimpleTemporalNetwork.from_interval_chain(
            [("dx", 0, 0), ("admission", 1, 365), ("surgery", 0, 10)]
        )
        lo, hi = stn.feasible_window("start", "surgery")
        assert (lo, hi) == (1, 375)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4), st.integers(0, 4),
            st.integers(-20, 20), st.integers(0, 30),
        ),
        min_size=1, max_size=8,
    )
)
def test_property_schedules_always_satisfy(constraints):
    """For any consistent random network, both extreme schedules satisfy
    every constraint; inconsistent networks raise."""
    stn = SimpleTemporalNetwork()
    for a, b, lo, width in constraints:
        if a == b:
            continue
        stn.constrain(f"p{a}", f"p{b}", lo, lo + width)
    if not stn.points:
        return
    origin = stn.points[0]
    try:
        earliest = stn.earliest_schedule(origin)
        latest = stn.latest_schedule(origin)
    except InconsistentConstraintsError:
        return
    finite_e = {p: v for p, v in earliest.items() if abs(v) < math.inf}
    finite_l = {p: v for p, v in latest.items() if abs(v) < math.inf}
    assert stn.satisfied_by(finite_e)
    assert stn.satisfied_by(finite_l)
    for point in finite_e:
        if point in finite_l:
            assert finite_e[point] <= finite_l[point] + 1e-9
