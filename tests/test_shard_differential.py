"""Differential harness: sharded scatter-gather ≡ single-store results.

The sharded store is only admissible if splitting a population across
segments is *invisible* to queries: for every query the planner can
express, evaluating per shard and merging patient ids must return the
bit-identical array a flat :class:`EventStore` returns.  This suite
re-uses the seeded 17-node AST generator from
``tests/test_query_planner_property.py`` and proves that equivalence
for 1, 2 and 7 shards — including a store where some shards hold zero
patients — on both the serial and the process-pool execution paths.

It also covers the failure side of the format contract: a single
flipped byte in any column file must be caught by the manifest
checksums and surface as a typed :class:`~repro.errors.ShardChecksumError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ShardConfig
from repro.errors import ShardChecksumError, ShardFormatError, ShardStoreError
from repro.query.engine import QueryEngine
from repro.shard import (
    ParallelExecutor,
    ShardedEventStore,
    verify_segment,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast
from tests.test_query_planner_property import (
    ALL_NODE_TYPES,
    _generated_corpus,
)


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(250, seed=11)
    return store


@pytest.fixture(scope="module")
def tiny_store():
    """Five patients — sharding 7 ways guarantees zero-patient shards."""
    store, __ = generate_store_fast(5, seed=3)
    return store


def _sharded(store, tmp_path_factory, n_shards, partition="hash"):
    path = str(tmp_path_factory.mktemp("shards") / f"s{n_shards}.shards")
    write_sharded_store(store, path, n_shards=n_shards, partition=partition)
    return ShardedEventStore(path)


@pytest.mark.parametrize("n_shards,count", [(1, 500), (2, 500), (7, 300)])
def test_sharded_equals_flat(flat_store, tmp_path_factory, n_shards, count):
    sharded = _sharded(flat_store, tmp_path_factory, n_shards)
    single = QueryEngine(flat_store, optimize=True)
    engine = QueryEngine(sharded)
    for i, query in enumerate(_generated_corpus(flat_store, 2016, count)):
        expected = single.patients(query)
        got = engine.patients(query)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected), (
            f"case {i} with {n_shards} shard(s) diverged: sharded "
            f"{len(got)} vs flat {len(expected)} patients for {query!r}"
        )


def test_differential_corpus_covers_all_17_node_types(flat_store):
    """The corpus driven through the shards spans the whole AST."""
    remaining = set(ALL_NODE_TYPES)

    def visit(node):
        remaining.discard(type(node))
        for child in getattr(node, "children", ()):
            visit(child)
        for attr in ("child", "expr"):
            child = getattr(node, attr, None)
            if child is not None and not isinstance(child, (str, int, float)):
                visit(child)

    for query in _generated_corpus(flat_store, 2016, 500):
        visit(query)
    assert not remaining, f"never generated: {remaining}"


def test_zero_patient_shards_are_transparent(tiny_store, tmp_path_factory):
    """7 shards over 5 patients: empty segments change nothing."""
    sharded = _sharded(tiny_store, tmp_path_factory, 7)
    empty = [e for e in sharded.shard_entries if e["n_patients"] == 0]
    assert empty, "expected at least one zero-patient shard"
    single = QueryEngine(tiny_store, optimize=True)
    engine = QueryEngine(sharded)
    for query in _generated_corpus(tiny_store, 77, 200):
        assert np.array_equal(engine.patients(query),
                              single.patients(query))


def test_range_partition_equals_flat(flat_store, tmp_path_factory):
    sharded = _sharded(flat_store, tmp_path_factory, 3, partition="range")
    single = QueryEngine(flat_store, optimize=True)
    engine = QueryEngine(sharded)
    for query in _generated_corpus(flat_store, 4242, 150):
        assert np.array_equal(engine.patients(query),
                              single.patients(query))


def test_naive_scatter_gather_equals_flat(flat_store, tmp_path_factory):
    """optimize=False rides the same per-shard path and must agree too."""
    sharded = _sharded(flat_store, tmp_path_factory, 3)
    single = QueryEngine(flat_store, optimize=False)
    engine = QueryEngine(sharded, optimize=False)
    for query in _generated_corpus(flat_store, 99, 150):
        assert np.array_equal(engine.patients(query),
                              single.patients(query))


def test_parallel_pool_equals_flat(flat_store, tmp_path_factory):
    """The process-pool path returns the same arrays as the flat store."""
    sharded = _sharded(flat_store, tmp_path_factory, 2)
    single = QueryEngine(flat_store, optimize=True)
    with ParallelExecutor(n_workers=2) as executor:
        engine = QueryEngine(sharded, executor=executor)
        for query in _generated_corpus(flat_store, 7, 40):
            expected = single.patients(query)
            got = engine.patients(query)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)
        stats = executor.stats_dict()
    # Every query either ran through the pool or fell back exactly once
    # to an equally-correct serial pass; either way the results matched.
    assert stats["queries"] == 40
    assert stats["parallel_queries"] + stats["serial_queries"] == 40
    if stats["pool_fallbacks"] == 0:
        assert stats["parallel_queries"] == 40


# -- corruption ----------------------------------------------------------------


def _flip_byte(path: str, offset: int = 512) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


def test_flipped_byte_fails_checksum(flat_store, tmp_path):
    path = str(tmp_path / "corrupt.shards")
    write_sharded_store(flat_store, path, n_shards=2)
    sharded = ShardedEventStore(path)
    column = f"{sharded.shard_dir(1)}/day.npy"
    _flip_byte(column)
    with pytest.raises(ShardChecksumError) as excinfo:
        sharded.shard(1)
    assert "day" in str(excinfo.value)
    assert isinstance(excinfo.value, ShardStoreError)
    # verify_segment reports the same corruption without opening columns.
    with pytest.raises(ShardChecksumError):
        verify_segment(sharded.shard_dir(1))
    # The sibling shard is untouched and still opens.
    assert sharded.shard(0).n_events > 0


def test_corruption_skipped_when_verification_disabled(flat_store, tmp_path):
    """verify_checksums=False trades the integrity check for open speed."""
    path = str(tmp_path / "unverified.shards")
    write_sharded_store(flat_store, path, n_shards=2)
    sharded = ShardedEventStore(
        path, config=ShardConfig(verify_checksums=False)
    )
    _flip_byte(f"{sharded.shard_dir(0)}/value.npy", offset=256)
    # Opens without raising: the caller opted out of verification.
    assert sharded.shard(0).n_events >= 0


def test_truncated_manifest_is_a_format_error(flat_store, tmp_path):
    path = str(tmp_path / "broken.shards")
    write_sharded_store(flat_store, path, n_shards=2)
    sharded = ShardedEventStore(path)
    with open(f"{sharded.shard_dir(0)}/manifest.json", "w") as f:
        f.write("{not json")
    with pytest.raises(ShardFormatError):
        sharded.shard(0)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
