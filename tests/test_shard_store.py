"""Unit tests for the shard subsystem: format, writer, lazy store.

The differential suite (``test_shard_differential.py``) proves query
equivalence; this file pins down the format contract — lazy opens,
manifest validation, patient routing, streaming writes, atomic
replacement and the content-token plumbing the query cache rides on.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import EventModelError, ShardFormatError
from repro.query.parser import parse_query
from repro.shard import (
    ParallelExecutor,
    ShardedEventStore,
    ShardedStoreWriter,
    subset_store,
    write_sharded_store,
)
from repro.shard.format import atomic_replace
from repro.shard.writer import hash_shard_of, shard_dir_name
from repro.simulate.fast import generate_store_fast


@pytest.fixture(scope="module")
def store():
    built, __ = generate_store_fast(300, seed=11)
    return built


@pytest.fixture(scope="module")
def shard_path(store, tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("store") / "cohort.shards")
    write_sharded_store(store, path, n_shards=3)
    return path


class TestFormat:
    def test_layout_on_disk(self, shard_path):
        assert os.path.exists(os.path.join(shard_path, "manifest.json"))
        for index in range(3):
            shard_dir = os.path.join(shard_path, shard_dir_name(index))
            assert os.path.exists(os.path.join(shard_dir, "manifest.json"))
            assert os.path.exists(os.path.join(shard_dir, "patient.npy"))

    def test_counts_in_manifest(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        assert sharded.n_shards == 3
        assert sharded.n_patients == store.n_patients
        assert sharded.n_events == store.n_events
        assert sum(e["n_patients"] for e in sharded.shard_entries) \
            == store.n_patients

    def test_missing_manifest_is_typed(self, tmp_path):
        with pytest.raises(ShardFormatError):
            ShardedEventStore(str(tmp_path / "nowhere"))

    def test_wrong_kind_is_typed(self, tmp_path):
        path = tmp_path / "notastore"
        path.mkdir()
        (path / "manifest.json").write_text('{"kind": "something_else"}')
        with pytest.raises(ShardFormatError) as excinfo:
            ShardedEventStore(str(path))
        assert "kind" in str(excinfo.value)

    def test_atomic_replace_failure_leaves_target_intact(self, tmp_path):
        target = tmp_path / "col.npy"
        target.write_bytes(b"original")

        def explode(tmp):
            raise OSError("disk full")

        with pytest.raises(OSError):
            atomic_replace(str(target), explode)
        assert target.read_bytes() == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["col.npy"]


class TestLazyStore:
    def test_shards_open_on_demand(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        assert sharded.open_shard_count == 0
        sharded.shard(1)
        assert sharded.open_shard_count == 1
        sharded.shard(1)  # cached, not re-opened
        assert sharded.open_shard_count == 1

    def test_columns_are_memory_mapped(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        assert isinstance(sharded.shard(0).patient, np.memmap)

    def test_patient_ids_union(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        assert np.array_equal(sharded.patient_ids, store.patient_ids)

    def test_patient_routing(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        for pid in store.patient_ids[:25].tolist():
            owner = sharded.owner_of(pid)
            assert pid in sharded.shard(owner).patient_ids
            assert sharded.birth_day_of(pid) == store.birth_day_of(pid)
            assert sharded.sex_of(pid) == store.sex_of(pid)

    def test_unknown_patient_raises(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        with pytest.raises(EventModelError):
            sharded.owner_of(10**9)

    def test_materialize_history_matches_flat(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        pid = int(store.patient_ids[0])
        ours, theirs = sharded.materialize(pid), store.materialize(pid)
        assert len(ours.points) == len(theirs.points)
        assert len(ours.intervals) == len(theirs.intervals)

    def test_materialize_store_roundtrip(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        assert sharded.materialize_store().content_equal(store)

    def test_getattr_falls_through_to_materialized(self, store, shard_path):
        sharded = ShardedEventStore(shard_path)
        # mask_category is an EventStore method the sharded view lacks.
        mask = sharded.mask_category("gp_contact")
        assert int(mask.sum()) == int(store.mask_category("gp_contact").sum())

    def test_content_token_is_stable_and_cheap(self, shard_path):
        first = ShardedEventStore(shard_path)
        token = first.content_token()
        assert token.startswith("sharded-")
        assert token == ShardedEventStore(shard_path).content_token()
        # Token derives from the manifest alone: no shard was opened.
        assert first.open_shard_count == 0

    def test_shard_tokens_differ_per_shard(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        tokens = {sharded.shard_token(i) for i in range(sharded.n_shards)}
        assert len(tokens) == sharded.n_shards

    def test_rewriting_a_shard_changes_the_store_token(self, store, tmp_path):
        path = str(tmp_path / "mutate.shards")
        write_sharded_store(store, path, n_shards=2)
        before = ShardedEventStore(path).content_token()
        half = subset_store(store, store.patient_ids[:100])
        write_sharded_store(half, path, n_shards=2)
        assert ShardedEventStore(path).content_token() != before


class TestWriter:
    def test_hash_assignment_is_deterministic_and_bounded(self, store):
        first = hash_shard_of(store.patient_ids, 5)
        assert np.array_equal(first, hash_shard_of(store.patient_ids, 5))
        assert first.min() >= 0 and first.max() < 5

    def test_streaming_batches_equal_one_shot(self, store, tmp_path):
        half_a = subset_store(store, store.patient_ids[::2])
        half_b = subset_store(store, store.patient_ids[1::2])
        streamed = str(tmp_path / "streamed.shards")
        writer = ShardedStoreWriter(streamed, n_shards=3)
        writer.add(half_a)
        writer.add(half_b)
        writer.finalize()
        one_shot = str(tmp_path / "oneshot.shards")
        write_sharded_store(store, one_shot, n_shards=3)
        assert ShardedEventStore(streamed).materialize_store().content_equal(
            ShardedEventStore(one_shot).materialize_store()
        )

    def test_iterable_input_streams(self, store, tmp_path):
        halves = (subset_store(store, store.patient_ids[:150]),
                  subset_store(store, store.patient_ids[150:]))
        path = str(tmp_path / "iter.shards")
        write_sharded_store(iter(halves), path, n_shards=2)
        assert ShardedEventStore(path).materialize_store() \
            .content_equal(store)

    def test_range_partition_rejects_streaming(self, store, tmp_path):
        writer = ShardedStoreWriter(str(tmp_path / "r.shards"),
                                    n_shards=2, partition="range")
        writer.add(subset_store(store, store.patient_ids[:50]))
        with pytest.raises(ShardFormatError) as excinfo:
            writer.add(subset_store(store, store.patient_ids[50:]))
        assert "range" in str(excinfo.value)

    def test_range_partition_is_contiguous(self, store, tmp_path):
        path = str(tmp_path / "range.shards")
        write_sharded_store(store, path, n_shards=3, partition="range")
        sharded = ShardedEventStore(path)
        maxes = [e["patient_max"] for e in sharded.shard_entries]
        mins = [e["patient_min"] for e in sharded.shard_entries]
        for prev_max, next_min in zip(maxes, mins[1:]):
            assert prev_max < next_min

    def test_bad_parameters_are_typed(self, tmp_path):
        with pytest.raises(ShardFormatError):
            ShardedStoreWriter(str(tmp_path / "x"), n_shards=0)
        with pytest.raises(ShardFormatError):
            ShardedStoreWriter(str(tmp_path / "x"), partition="modulo")
        with pytest.raises(ShardFormatError):
            ShardedStoreWriter(str(tmp_path / "x"), n_shards=2).finalize()

    def test_subset_store_shares_tables(self, store):
        piece = subset_store(store, store.patient_ids[:10])
        assert piece.categories is store.categories
        assert piece.n_patients == 10
        assert np.array_equal(np.unique(piece.patient),
                              np.sort(store.patient_ids[:10])[
                                  np.isin(np.sort(store.patient_ids[:10]),
                                          piece.patient)])


class TestExecutor:
    def test_serial_cache_hits_at_shard_granularity(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        executor = ParallelExecutor(n_workers=1)
        query = parse_query("concept T90")
        first = executor.patients(sharded, query)
        hits_before = executor.cache.stats.hits
        second = executor.patients(sharded, query)
        assert np.array_equal(first, second)
        # Every shard's sub-result replayed from the shared LRU.
        assert executor.cache.stats.hits >= hits_before + sharded.n_shards

    def test_counters_and_mode(self, shard_path):
        sharded = ShardedEventStore(shard_path)
        executor = ParallelExecutor(n_workers=1)
        assert executor.mode == "serial"
        executor.patients(sharded, parse_query("sex F"))
        stats = executor.stats_dict()
        assert stats["queries"] == 1
        assert stats["serial_queries"] == 1
        assert stats["shards_scanned"] == sharded.n_shards

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(n_workers=2)
        executor.close()
        executor.close()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
