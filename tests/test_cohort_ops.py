"""Tests for cohort operations: alignment, sorting, filtering, abstraction,
statistics."""

from __future__ import annotations

import pytest

from repro.cohort.abstraction import abstract_code, abstract_sequence, episodes
from repro.cohort.alignment import aligned_cohort, compute_alignment
from repro.cohort.operations import (
    extract_subcohort,
    hide_codes,
    keep_codes,
    sort_by_anchor,
    sort_by_event_count,
    sort_by_first_event,
)
from repro.cohort.stats import summarize
from repro.errors import QueryError, TerminologyError
from repro.events.model import Cohort, History, IntervalEvent, PointEvent
from repro.query.ast import Category, CodeMatch, Concept, HasEvent
from repro.temporal.timeline import Interval
from repro.terminology import CodeSelection, icpc2


class TestAlignment:
    def test_anchor_is_first_matching_day(self, small_engine):
        alignment = compute_alignment(
            small_engine, Concept("T90"), "first diabetes"
        )
        store = small_engine.store
        for pid in alignment.aligned_ids()[:10]:
            history = store.materialize(pid)
            expected = history.first_code_day({"T90", "E11", "E14"})
            assert alignment.anchor_of(pid) == expected

    def test_relative_months_signed(self, small_engine):
        alignment = compute_alignment(small_engine, Concept("T90"))
        pid = alignment.aligned_ids()[0]
        anchor = alignment.anchor_of(pid)
        assert alignment.relative_months(pid, anchor) == 0.0
        assert alignment.relative_months(pid, anchor + 61) == pytest.approx(
            2.0, abs=0.05
        )
        assert alignment.relative_months(pid, anchor - 61) < 0

    def test_aligned_cohort_shifts_to_zero(self, small_engine):
        alignment = compute_alignment(small_engine, Concept("T90"))
        ids = alignment.aligned_ids()[:5]
        cohort = small_engine.store.to_cohort(ids)
        shifted = aligned_cohort(cohort, alignment)
        for history in shifted:
            assert history.first_code_day({"T90", "E11", "E14"}) == 0

    def test_unaligned_patients_dropped(self, small_engine):
        alignment = compute_alignment(small_engine, Concept("T90"))
        all_ids = small_engine.store.patient_ids[:50].tolist()
        cohort = small_engine.store.to_cohort(all_ids)
        shifted = aligned_cohort(cohort, alignment)
        assert len(shifted) == sum(1 for p in all_ids if p in alignment)

    def test_empty_alignment_raises(self, small_engine):
        alignment = compute_alignment(
            small_engine, CodeMatch("ICPC-2", "Z29"), "never"
        )
        cohort = small_engine.store.to_cohort(
            small_engine.store.patient_ids[:3].tolist()
        )
        with pytest.raises(QueryError):
            aligned_cohort(cohort, alignment)


class TestSorting:
    @pytest.fixture()
    def cohort(self, small_store):
        return small_store.to_cohort(small_store.patient_ids[:40].tolist())

    def test_sort_by_first_event_monotone(self, cohort):
        ordered = sort_by_first_event(cohort)
        starts = [h.span().start for h in ordered if h.span()]
        assert starts == sorted(starts)

    def test_sort_by_event_count_descending(self, cohort):
        ordered = sort_by_event_count(cohort)
        counts = [len(h) for h in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_sort_by_anchor_unaligned_last(self, cohort, small_engine):
        alignment = compute_alignment(small_engine, Concept("T90"))
        ordered = sort_by_anchor(cohort, alignment)
        flags = [h.patient_id in alignment for h in ordered]
        # once we see an unaligned history, no aligned one may follow
        assert flags == sorted(flags, reverse=True)


class TestFiltering:
    def test_keep_codes(self):
        history = History(patient_id=1, birth_day=0, points=[
            PointEvent(day=1, category="diagnosis", code="T90",
                       system="ICPC-2"),
            PointEvent(day=2, category="diagnosis", code="R74",
                       system="ICPC-2"),
            PointEvent(day=3, category="blood_pressure", value=140.0),
        ])
        selection = CodeSelection(icpc2(), "T.*")
        kept = keep_codes(Cohort([history]), selection)
        assert [p.code for p in kept.get(1).points] == ["T90"]

    def test_hide_codes_keeps_uncoded(self):
        history = History(patient_id=1, birth_day=0, points=[
            PointEvent(day=1, category="diagnosis", code="T90",
                       system="ICPC-2"),
            PointEvent(day=3, category="blood_pressure", value=140.0),
        ])
        selection = CodeSelection(icpc2(), "T.*")
        hidden = hide_codes(Cohort([history]), selection)
        assert [p.category for p in hidden.get(1).points] == ["blood_pressure"]

    def test_extract_subcohort(self, small_store):
        cohort = extract_subcohort(small_store, HasEvent(Concept("T90")))
        assert len(cohort) > 0
        for history in cohort:
            assert history.first_code_day({"T90", "E11", "E14"}) is not None


class TestAbstraction:
    def test_abstract_code_levels(self):
        system = icpc2()
        assert abstract_code(system, "T90", 0) == "T"
        assert abstract_code(system, "T90", 1) == "T90"
        assert abstract_code(system, "T90", 5) == "T90"  # already deepest

    def test_negative_level_rejected(self):
        with pytest.raises(TerminologyError):
            abstract_code(icpc2(), "T90", -1)

    def test_abstract_sequence_collapses_runs(self):
        collapsed = abstract_sequence(
            icpc2(), ["T90", "T86", "K86", "K74", "R74"], 0
        )
        assert collapsed == [("T", 2), ("K", 2), ("R", 1)]

    def test_episodes_split_on_gaps(self):
        history = History(patient_id=1, birth_day=0, points=[
            PointEvent(day=0, category="diagnosis"),
            PointEvent(day=10, category="diagnosis"),
            PointEvent(day=200, category="diagnosis"),
        ])
        result = episodes(history, max_gap_days=60)
        assert len(result) == 2
        assert result[0].n_events == 2
        assert result[1].interval.start == 200

    def test_long_interval_never_splits(self):
        history = History(patient_id=1, birth_day=0, intervals=[
            IntervalEvent(Interval(0, 300), "nursing_home"),
        ], points=[PointEvent(day=299, category="diagnosis")])
        result = episodes(history, max_gap_days=30)
        assert len(result) == 1

    def test_empty_history_no_episodes(self):
        assert episodes(History(patient_id=1, birth_day=0)) == []


class TestStats:
    def test_summarize_whole_store(self, small_store):
        stats = summarize(small_store)
        assert stats.n_patients == small_store.n_patients
        assert stats.n_events == small_store.n_events
        assert stats.events_per_patient_mean > 0
        assert sum(stats.contacts_by_care_level.values()) > 0
        assert stats.top_codes

    def test_summarize_subset_counts_zero_event_patients(self, small_store):
        ids = small_store.patient_ids[:10].tolist()
        stats = summarize(small_store, ids)
        assert stats.n_patients == 10

    def test_format_table_mentions_levels(self, small_store):
        text = summarize(small_store).format_table()
        assert "PrimaryCare" in text
        assert "patients" in text

    def test_monthly_series_sums_to_events(self, small_store):
        stats = summarize(small_store)
        assert sum(stats.monthly_events.values()) == stats.n_events
