"""Tests for temporal pattern search."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.events.model import Cohort, History, PointEvent
from repro.events.store import EventStore
from repro.query.ast import Category, CodeMatch
from repro.query.engine import QueryEngine
from repro.query.temporal_patterns import (
    PatternSearcher,
    PatternStep,
    TemporalPattern,
)


def make_engine() -> QueryEngine:
    def dx(day, code):
        return PointEvent(day=day, category="diagnosis", code=code,
                          system="ICPC-2")

    cohort = Cohort([
        # T90 then K86 twice, 50 days apart each
        History(patient_id=1, birth_day=0, points=[
            dx(100, "T90"), dx(150, "K86"), dx(300, "T90"), dx(350, "K86"),
        ]),
        # K86 before T90 only
        History(patient_id=2, birth_day=0, points=[
            dx(100, "K86"), dx(200, "T90"),
        ]),
        # T90 then K86 but 400 days apart
        History(patient_id=3, birth_day=0, points=[
            dx(100, "T90"), dx(500, "K86"),
        ]),
    ])
    return QueryEngine(EventStore.from_cohort(cohort))


def pattern(max_gap=None, min_gap=1, within=None) -> TemporalPattern:
    return TemporalPattern(
        steps=(
            PatternStep(CodeMatch("ICPC-2", "T90"), "diabetes"),
            PatternStep(CodeMatch("ICPC-2", "K86"), "hypertension"),
        ),
        min_gap=min_gap,
        max_gap=max_gap,
        within=within,
    )


class TestPatternSearch:
    def test_order_matters(self):
        searcher = PatternSearcher(make_engine())
        patients = searcher.patients(pattern()).tolist()
        assert patients == [1, 3]  # patient 2 has K86 first... then T90

    def test_max_gap_excludes_distant_steps(self):
        searcher = PatternSearcher(make_engine())
        patients = searcher.patients(pattern(max_gap=100)).tolist()
        assert patients == [1]

    def test_non_overlapping_greedy_matches(self):
        searcher = PatternSearcher(make_engine())
        matches = [
            m for m in searcher.find(pattern(max_gap=100))
            if m.patient_id == 1
        ]
        assert [m.days for m in matches] == [(100, 150), (300, 350)]

    def test_within_bounds_whole_match(self):
        searcher = PatternSearcher(make_engine())
        patients = searcher.patients(pattern(within=60)).tolist()
        assert patients == [1]

    def test_single_step_pattern(self):
        searcher = PatternSearcher(make_engine())
        single = TemporalPattern(
            steps=(PatternStep(CodeMatch("ICPC-2", "T90")),)
        )
        assert searcher.patients(single).tolist() == [1, 2, 3]

    def test_empty_result_when_step_never_matches(self):
        searcher = PatternSearcher(make_engine())
        ghost = TemporalPattern(
            steps=(
                PatternStep(CodeMatch("ICPC-2", "T90")),
                PatternStep(CodeMatch("ICPC-2", "Z29")),
            )
        )
        assert searcher.find(ghost) == []

    def test_match_span_properties(self):
        searcher = PatternSearcher(make_engine())
        match = searcher.find(pattern())[0]
        assert match.first_day == 100
        assert match.last_day == 150
        assert match.span_days == 50

    def test_same_day_chaining_with_zero_min_gap(self):
        def dx(day, code):
            return PointEvent(day=day, category="diagnosis", code=code,
                              system="ICPC-2")

        cohort = Cohort([
            History(patient_id=1, birth_day=0,
                    points=[dx(100, "T90"), dx(100, "K86")]),
        ])
        engine = QueryEngine(EventStore.from_cohort(cohort))
        searcher = PatternSearcher(engine)
        zero_gap = TemporalPattern(
            steps=(
                PatternStep(CodeMatch("ICPC-2", "T90")),
                PatternStep(CodeMatch("ICPC-2", "K86")),
            ),
            min_gap=0,
        )
        assert searcher.patients(zero_gap).tolist() == [1]
        strict = TemporalPattern(
            steps=zero_gap.steps, min_gap=1,
        )
        assert searcher.patients(strict).tolist() == []


class TestValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(QueryError):
            TemporalPattern(steps=())

    def test_negative_min_gap_rejected(self):
        with pytest.raises(QueryError):
            TemporalPattern(
                steps=(PatternStep(Category("diagnosis")),), min_gap=-1
            )

    def test_max_gap_below_min_rejected(self):
        with pytest.raises(QueryError):
            TemporalPattern(
                steps=(PatternStep(Category("diagnosis")),),
                min_gap=10, max_gap=5,
            )


def test_pattern_at_scale(small_engine):
    """Diabetes then hospital stay within a year — sanity at 2k patients."""
    searcher = PatternSearcher(small_engine)
    p = TemporalPattern(
        steps=(
            PatternStep(CodeMatch("ICPC-2", "T90")),
            PatternStep(Category("hospital_stay")),
        ),
        min_gap=1,
        max_gap=365,
    )
    patients = searcher.patients(p)
    diabetics = set(
        small_engine.patients(CodeMatch("ICPC-2", "T90")).tolist()
    )
    assert set(patients.tolist()) <= diabetics
    assert len(patients) > 0


class TestAbsencePatterns:
    """Care-gap detection: anchor without expected follow-up."""

    def _engine(self):
        from repro.events.model import Cohort, History, PointEvent
        from repro.events.store import EventStore

        def dx(day):
            return PointEvent(day=day, category="diagnosis", code="T90",
                              system="ICPC-2")

        def contact(day):
            return PointEvent(day=day, category="gp_contact")

        cohort = Cohort([
            # followed up within the window
            History(patient_id=1, birth_day=0,
                    points=[dx(100), contact(150)]),
            # no follow-up at all (horizon far enough to assert absence)
            History(patient_id=2, birth_day=0, points=[dx(100)]),
            # follow-up too late
            History(patient_id=3, birth_day=0,
                    points=[dx(100), contact(400)]),
            # anchored too close to the horizon: censored
            History(patient_id=4, birth_day=0, points=[dx(900)]),
        ])
        return QueryEngine(EventStore.from_cohort(cohort))

    def test_gap_detection(self):
        from repro.query.temporal_patterns import (
            AbsencePattern,
            find_care_gaps,
        )

        engine = self._engine()
        pattern = AbsencePattern(
            anchor=CodeMatch("ICPC-2", "T90"),
            expected=Category("gp_contact"),
            within=180,
        )
        gaps = find_care_gaps(engine, pattern, horizon_day=1000)
        assert sorted(g.patient_id for g in gaps) == [2, 3]

    def test_censored_windows_skipped(self):
        from repro.query.temporal_patterns import (
            AbsencePattern,
            find_care_gaps,
        )

        engine = self._engine()
        pattern = AbsencePattern(
            anchor=CodeMatch("ICPC-2", "T90"),
            expected=Category("gp_contact"),
            within=180,
        )
        # horizon at 950: patient 4's window (900+180) is censored
        gaps = find_care_gaps(engine, pattern, horizon_day=950)
        assert 4 not in {g.patient_id for g in gaps}

    def test_window_bounds(self):
        from repro.query.temporal_patterns import (
            AbsencePattern,
            find_care_gaps,
        )

        engine = self._engine()
        # a 350-day window: patient 3's day-400 contact is still too late
        pattern = AbsencePattern(
            anchor=CodeMatch("ICPC-2", "T90"),
            expected=Category("gp_contact"),
            within=299,
        )
        gaps = find_care_gaps(engine, pattern, horizon_day=1000)
        assert 3 in {g.patient_id for g in gaps}
        wide = AbsencePattern(
            anchor=CodeMatch("ICPC-2", "T90"),
            expected=Category("gp_contact"),
            within=300,
        )
        gaps_wide = find_care_gaps(engine, wide, horizon_day=1000)
        assert 3 not in {g.patient_id for g in gaps_wide}

    def test_invalid_window_rejected(self):
        from repro.query.temporal_patterns import AbsencePattern

        with pytest.raises(QueryError):
            AbsencePattern(anchor=Category("diagnosis"),
                           expected=Category("gp_contact"), within=0)

    def test_complementary_to_positive_pattern(self, small_engine):
        """Patients split cleanly: anchored = follow-up within window
        (positive pattern) + care gaps + censored anchors."""
        from repro.query.ast import Concept
        from repro.query.temporal_patterns import (
            AbsencePattern,
            PatternSearcher,
            PatternStep,
            TemporalPattern,
            find_care_gaps,
        )

        store = small_engine.store
        horizon = int(store.day.max())
        within = 120
        anchor_expr = Concept("T90")
        expected_expr = Category("gp_contact")

        searcher = PatternSearcher(small_engine)
        anchor_days = searcher._step_days(anchor_expr)
        eligible = {
            pid for pid, days in anchor_days.items()
            if int(days[0]) + within <= horizon
        }
        gaps = {
            g.patient_id
            for g in find_care_gaps(
                small_engine,
                AbsencePattern(anchor_expr, expected_expr, within),
                horizon_day=horizon,
            )
        }
        # positive side computed directly from first anchor + follow days
        followed = set()
        follow_days = searcher._step_days(expected_expr)
        for pid in eligible:
            first = int(anchor_days[pid][0])
            follow = follow_days.get(pid)
            if follow is not None:
                import numpy as np

                idx = int(np.searchsorted(follow, first, side="right"))
                if idx < len(follow) and int(follow[idx]) <= first + within:
                    followed.add(pid)
        assert gaps | followed == eligible
        assert not (gaps & followed)
