"""Tests for the qualitative temporal constraint network."""

from __future__ import annotations

import pytest

from repro.errors import InconsistentConstraintsError
from repro.temporal.allen import ALL_RELATIONS, AllenRelation, relation_between
from repro.temporal.constraints import TemporalConstraintNetwork


class TestConstrain:
    def test_constraints_intersect(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE, AllenRelation.MEETS])
        net.constrain("a", "b", [AllenRelation.MEETS, AllenRelation.OVERLAPS])
        assert net.relation("a", "b") == frozenset({AllenRelation.MEETS})

    def test_empty_intersection_raises(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", AllenRelation.BEFORE)
        with pytest.raises(InconsistentConstraintsError):
            net.constrain("a", "b", AllenRelation.AFTER)

    def test_inverse_edge_maintained(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", AllenRelation.DURING)
        assert net.relation("b", "a") == frozenset({AllenRelation.CONTAINS})

    def test_self_constraint_only_equals(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "a", AllenRelation.EQUALS)  # fine
        with pytest.raises(InconsistentConstraintsError):
            net.constrain("a", "a", AllenRelation.BEFORE)

    def test_unconstrained_pair_is_full(self):
        net = TemporalConstraintNetwork()
        net.add_variable("a")
        net.add_variable("b")
        assert net.relation("a", "b") == frozenset(ALL_RELATIONS)


class TestPropagation:
    def test_transitivity_narrows(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", AllenRelation.BEFORE)
        net.constrain("b", "c", AllenRelation.BEFORE)
        net.propagate()
        assert net.relation("a", "c") == frozenset({AllenRelation.BEFORE})

    def test_inconsistent_cycle_detected(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", AllenRelation.BEFORE)
        net.constrain("b", "c", AllenRelation.BEFORE)
        net.constrain("c", "a", AllenRelation.BEFORE)
        with pytest.raises(InconsistentConstraintsError):
            net.propagate()

    def test_during_chain(self):
        net = TemporalConstraintNetwork()
        net.constrain("surgery", "stay", AllenRelation.DURING)
        net.constrain("stay", "study", AllenRelation.DURING)
        net.propagate()
        assert net.relation("surgery", "study") == frozenset(
            {AllenRelation.DURING}
        )


class TestSolveAndRealize:
    def test_realize_honours_all_constraints(self):
        net = TemporalConstraintNetwork()
        net.constrain("admission", "stay", AllenRelation.STARTS)
        net.constrain("surgery", "stay", AllenRelation.DURING)
        net.constrain("recovery", "surgery", AllenRelation.AFTER)
        net.constrain("recovery", "stay", AllenRelation.FINISHES)
        solution = net.realize()
        assert relation_between(
            solution["admission"], solution["stay"]
        ) == AllenRelation.STARTS
        assert relation_between(
            solution["surgery"], solution["stay"]
        ) == AllenRelation.DURING
        assert relation_between(
            solution["recovery"], solution["surgery"]
        ) == AllenRelation.AFTER
        assert relation_between(
            solution["recovery"], solution["stay"]
        ) == AllenRelation.FINISHES

    def test_solve_picks_atomic_scenario(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE, AllenRelation.MEETS])
        scenario = net.solve()
        assert scenario[("a", "b")] in (
            AllenRelation.BEFORE, AllenRelation.MEETS
        )

    def test_unsatisfiable_raises_from_solve(self):
        net = TemporalConstraintNetwork()
        net.constrain("a", "b", AllenRelation.BEFORE)
        net.constrain("b", "c", AllenRelation.BEFORE)
        with pytest.raises(InconsistentConstraintsError):
            net.constrain("a", "c", AllenRelation.AFTER)
            net.propagate()

    def test_disjunctive_network_realizes(self):
        """CNTRO-style: uncertain order between two treatments, both
        inside one stay."""
        net = TemporalConstraintNetwork()
        for name in ("antibiotics", "surgery"):
            net.constrain(name, "stay", AllenRelation.DURING)
        net.constrain(
            "antibiotics", "surgery",
            [AllenRelation.BEFORE, AllenRelation.AFTER, AllenRelation.OVERLAPS],
        )
        solution = net.realize()
        r = relation_between(solution["antibiotics"], solution["surgery"])
        assert r in (
            AllenRelation.BEFORE, AllenRelation.AFTER, AllenRelation.OVERLAPS
        )
