"""Tests for the feature matrix and the web workbench."""

from __future__ import annotations

import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cohort.features import build_feature_matrix
from repro.errors import QueryError
from repro.query.ast import Concept, HasEvent
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench


class TestFeatureMatrix:
    def test_shape_and_names(self, small_store):
        fm = build_feature_matrix(small_store)
        assert fm.values.shape == (small_store.n_patients, len(fm.names))
        assert "age_years" in fm.names
        assert "contacts_primarycare" in fm.names
        assert "has_T90" in fm.names

    def test_flags_match_queries(self, small_store, small_engine):
        fm = build_feature_matrix(small_store)
        flagged = set(
            fm.patient_ids[fm.column("has_T90") > 0].tolist()
        )
        queried = set(
            small_engine.patients(HasEvent(Concept("T90"))).tolist()
        )
        assert flagged == queried

    def test_event_counts_match_store(self, small_store):
        fm = build_feature_matrix(small_store)
        assert int(fm.column("n_events").sum()) == small_store.n_events

    def test_hospital_days_nonnegative_and_present(self, small_store):
        fm = build_feature_matrix(small_store)
        days = fm.column("n_hospital_days")
        assert (days >= 0).all()
        assert days.sum() > 0

    def test_subset(self, small_store):
        ids = small_store.patient_ids[:50].tolist()
        fm = build_feature_matrix(small_store, ids)
        assert fm.n_patients == 50

    def test_active_days_within_span(self, small_store):
        fm = build_feature_matrix(small_store)
        span = int(small_store.day.max()) - int(small_store.day.min())
        assert (fm.column("active_days") <= span + 1).all()

    def test_csv_roundtrip(self, small_store, tmp_path):
        import csv

        fm = build_feature_matrix(small_store, small_store.patient_ids[:10])
        path = tmp_path / "features.csv"
        fm.to_csv(str(path))
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["patient_id", *fm.names]
        assert len(rows) == 11

    def test_unknown_column_rejected(self, small_store):
        fm = build_feature_matrix(small_store, small_store.patient_ids[:5])
        with pytest.raises(QueryError):
            fm.column("nope")

    def test_empty_cohort_rejected(self, small_store):
        with pytest.raises(QueryError):
            build_feature_matrix(small_store, [])


@pytest.fixture(scope="module")
def server(small_store):
    wb = Workbench.from_store(small_store)
    with WorkbenchServer(wb) as running:
        yield running


def _get(server, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(server.url + path, timeout=15) as response:
        return response.status, response.read().decode("utf-8")


class TestWebApp:
    def test_index_shows_summary(self, server):
        status, body = _get(server, "/")
        assert status == 200
        assert "run query" in body
        assert "patients" in body

    def test_cohort_page(self, server):
        status, body = _get(server, "/cohort?q=concept%20T90")
        assert status == 200
        assert "patients match" in body
        assert "timeline.svg" in body

    def test_timeline_svg(self, server):
        status, body = _get(server, "/timeline.svg?q=concept%20T90&rows=15")
        assert status == 200
        assert body.startswith("<svg")

    def test_aligned_timeline(self, server):
        status, body = _get(
            server, "/timeline.svg?q=concept%20T90&rows=15&align=T90"
        )
        assert status == 200
        assert "mo" in body  # relative-month axis labels

    def test_overview_svg(self, server):
        status, body = _get(server, "/overview.svg")
        assert status == 200
        assert body.startswith("<svg")

    def test_patient_page(self, server, small_store):
        pid = int(small_store.patient_ids[0])
        status, body = _get(server, f"/patient/{pid}")
        assert status == 200
        assert "personal health timeline" in body

    def test_bad_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/cohort?q=concept")
        assert exc.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/missing")
        assert exc.value.code == 404

    def test_bad_patient_id_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/patient/abc")
        assert exc.value.code == 400

    def test_query_is_escaped_in_form(self, server):
        status, body = _get(
            server, "/cohort?q=concept%20T90%20%23%3Cscript%3E"
        )
        assert status == 200
        assert "<script>" not in body
