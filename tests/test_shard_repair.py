"""fsck and repair: diagnosis statuses, token-verified salvage, rebuild.

:func:`repro.shard.repair.fsck_store` must name every damage mode
distinctly (``checksum``, ``format``, ``missing``, ``quarantined``) and
every damaged column, and :func:`repro.shard.repair.repair_store` must
restore byte-identical shards — salvaging a shard from its own columns
only when they hash to the root manifest's recorded content token, and
otherwise rebuilding from a ``--from`` source under either partition
scheme.  The CLI surface (``shard fsck`` / ``shard repair`` /
``shard verify --json``) is covered at the exit-code and JSON-shape
level.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.cli import main
from repro.config import ShardConfig
from repro.io import save_store
from repro.shard import (
    ShardedEventStore,
    fsck_store,
    repair_store,
    write_sharded_store,
)
from repro.shard.format import MANIFEST_NAME, read_store_manifest
from repro.simulate.fast import generate_store_fast

N_SHARDS = 4


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(250, seed=11)
    return store


@pytest.fixture()
def root(flat_store, tmp_path):
    path = str(tmp_path / "repair.shards")
    write_sharded_store(flat_store, path, n_shards=N_SHARDS)
    return path


def _shard_dirs(root: str) -> list[str]:
    manifest = read_store_manifest(root)
    return [os.path.join(root, entry["name"])
            for entry in manifest["shards"]]


def _flip_byte(root: str, shard: int, column: str = "patient") -> str:
    """XOR one byte deep inside a column file; returns the shard name."""
    directory = _shard_dirs(root)[shard]
    path = os.path.join(directory, f"{column}.npy")
    with open(path, "r+b") as f:
        f.seek(os.path.getsize(path) - 1)
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))
    return os.path.basename(directory)


# -- fsck ----------------------------------------------------------------------


def test_fsck_clean(root):
    report = fsck_store(root)
    assert report.ok
    assert report.damaged == ()
    assert len(report.shards) == N_SHARDS
    assert all(s.status == "ok" for s in report.shards)
    assert report.format_summary().endswith("fsck: clean")


def test_fsck_names_every_bad_column(root):
    name = _flip_byte(root, 1, column="patient")
    _flip_byte(root, 1, column="value")
    report = fsck_store(root)
    assert not report.ok
    (health,) = report.damaged
    assert health.name == name
    assert health.status == "checksum"
    assert set(health.bad_columns) == {"patient", "value"}
    assert "CHECKSUM" in report.format_summary()
    assert "1 of 4 shard(s) damaged" in report.format_summary()


def test_fsck_missing_manifest_is_format(root):
    directory = _shard_dirs(root)[2]
    os.unlink(os.path.join(directory, MANIFEST_NAME))
    (health,) = fsck_store(root).damaged
    assert health.status == "format"
    assert MANIFEST_NAME in health.detail


def test_fsck_garbage_manifest_is_format(root):
    directory = _shard_dirs(root)[0]
    with open(os.path.join(directory, MANIFEST_NAME), "w",
              encoding="utf-8") as f:
        f.write("{not json")
    (health,) = fsck_store(root).damaged
    assert health.status == "format"
    assert "JSON" in health.detail


def test_fsck_missing_column_is_checksum_status(root):
    directory = _shard_dirs(root)[3]
    os.unlink(os.path.join(directory, "day.npy"))
    (health,) = fsck_store(root).damaged
    assert health.status == "checksum"
    assert health.bad_columns == ("day",)
    assert "day.npy missing" in health.detail


def test_fsck_deleted_shard_is_missing(root):
    shutil.rmtree(_shard_dirs(root)[1])
    (health,) = fsck_store(root).damaged
    assert health.status == "missing"


def test_fsck_reports_quarantined_with_log_reason(root):
    _flip_byte(root, 2)
    ShardedEventStore(root, config=ShardConfig(on_damage="quarantine"))
    (health,) = fsck_store(root).damaged
    assert health.status == "quarantined"
    assert health.detail  # the damage-log reason survives the move


# -- repair --------------------------------------------------------------------


def test_repair_clean_store_is_all_intact(root):
    report = repair_store(root)
    assert report.ok
    assert report.repaired == ()
    assert all(a.action == "intact" for a in report.actions)
    assert report.format_summary().endswith("repair complete")


def test_salvage_deleted_manifest_without_source(root):
    clean_token = ShardedEventStore(root).content_token()
    directory = _shard_dirs(root)[1]
    os.unlink(os.path.join(directory, MANIFEST_NAME))
    report = repair_store(root)  # no source: salvage is the only path
    assert report.ok
    (action,) = report.repaired
    assert action.action == "salvaged"
    assert fsck_store(root).ok
    assert ShardedEventStore(root).content_token() == clean_token


def test_salvage_from_quarantine_copy(root):
    # Quarantine moves the shard aside for a deleted manifest; the
    # columns in the quarantine copy are still token-true and salvage.
    clean_token = ShardedEventStore(root).content_token()
    os.unlink(os.path.join(_shard_dirs(root)[0], MANIFEST_NAME))
    ShardedEventStore(root, config=ShardConfig(on_damage="quarantine"))
    assert fsck_store(root).damaged[0].status == "quarantined"
    report = repair_store(root)
    assert report.ok
    assert report.repaired[0].action == "salvaged"
    assert ShardedEventStore(root).content_token() == clean_token


def test_flipped_byte_refuses_salvage_and_is_unrepairable(root):
    # The flipped column still np.loads fine — only the content token
    # betrays it.  Without a source the shard must stay unrepairable;
    # corruption is never laundered into a "repaired" segment.
    _flip_byte(root, 2)
    report = repair_store(root)
    assert not report.ok
    (action,) = (a for a in report.actions if a.action != "intact")
    assert action.action == "unrepairable"
    assert "pass a repair source" in action.detail
    assert not fsck_store(root).ok  # still damaged, honestly so


def test_rebuild_from_flat_source_restores_token(flat_store, root):
    clean_token = ShardedEventStore(root).content_token()
    _flip_byte(root, 2)
    report = repair_store(root, source=flat_store)
    assert report.ok
    (action,) = report.repaired
    assert action.action == "rebuilt"
    assert "matches the manifest" in action.detail
    assert fsck_store(root).ok
    assert ShardedEventStore(root).content_token() == clean_token


def test_rebuild_range_partition(flat_store, tmp_path):
    path = str(tmp_path / "range.shards")
    write_sharded_store(flat_store, path, n_shards=N_SHARDS,
                        partition="range")
    clean_token = ShardedEventStore(path).content_token()
    _flip_byte(path, 1)
    report = repair_store(path, source=flat_store)
    assert report.ok
    assert fsck_store(path).ok
    assert ShardedEventStore(path).content_token() == clean_token


def test_rebuild_from_sibling_store_directory(flat_store, root, tmp_path):
    sibling = str(tmp_path / "sibling.shards")
    write_sharded_store(flat_store, sibling, n_shards=2)
    clean_token = ShardedEventStore(root).content_token()
    _flip_byte(root, 3)
    report = repair_store(root, source=sibling)  # path of a sharded dir
    assert report.ok
    assert report.repaired[0].action == "rebuilt"
    assert ShardedEventStore(root).content_token() == clean_token


def test_repair_preserves_evidence_in_quarantine(flat_store, root):
    name = _flip_byte(root, 2)
    repair_store(root, source=flat_store)
    aside = os.path.join(root, "quarantine")
    assert any(item == name or item.startswith(name + ".")
               for item in os.listdir(aside))


# -- CLI -----------------------------------------------------------------------


def _flat_path(flat_store, tmp_path) -> str:
    path = str(tmp_path / "flat.npz")
    save_store(flat_store, path)
    return path


def test_cli_fsck_exit_codes_and_json(root, capsys):
    assert main(["shard", "fsck", root]) == 0
    out = capsys.readouterr().out
    assert "fsck: clean" in out
    _flip_byte(root, 0)
    assert main(["shard", "fsck", root, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    damaged = [s for s in payload["shards"] if s["status"] != "ok"]
    assert len(damaged) == 1
    assert damaged[0]["status"] == "checksum"
    assert damaged[0]["bad_columns"]


def test_cli_verify_json(root, capsys):
    assert main(["shard", "verify", root, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert len(payload["shards"]) == N_SHARDS


def test_cli_repair_roundtrip(flat_store, root, tmp_path, capsys):
    flat = _flat_path(flat_store, tmp_path)
    _flip_byte(root, 1)
    assert main(["shard", "repair", root, "--from", flat]) == 0
    out = capsys.readouterr().out
    assert "rebuilt" in out
    assert "post-repair verification: clean" in out
    assert main(["shard", "verify", root]) == 0


def test_cli_repair_without_source_fails_honestly(root, capsys):
    _flip_byte(root, 1)
    assert main(["shard", "repair", root, "--json"]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["ok"] is False
    assert payload["verified_clean"] is False
    assert "error:" in captured.err


def test_cli_repair_salvage_json(root, capsys):
    os.unlink(os.path.join(_shard_dirs(root)[2], MANIFEST_NAME))
    assert main(["shard", "repair", root, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["verified_clean"] is True
    actions = {a["name"]: a["action"] for a in payload["actions"]}
    assert "salvaged" in actions.values()
