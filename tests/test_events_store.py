"""Tests for the columnar event store, including round-trip properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EventModelError
from repro.events.model import Cohort, History, IntervalEvent, PointEvent
from repro.events.store import EventStore, EventStoreBuilder
from repro.temporal.timeline import Interval

_ICPC_CODES = ["T90", "K86", "R96", "A97", "P76"]
_CATEGORIES = ["diagnosis", "gp_contact", "blood_pressure"]


def point_events():
    return st.builds(
        PointEvent,
        day=st.integers(0, 1000),
        category=st.sampled_from(_CATEGORIES),
        code=st.sampled_from(_ICPC_CODES),
        system=st.just("ICPC-2"),
        value=st.one_of(st.none(), st.floats(50, 250).map(
            lambda v: round(v, 1))),
        source=st.sampled_from(["gp_claim", "specialist_claim"]),
        detail=st.sampled_from(["", "note a", "note b"]),
    )


def histories(pid: int):
    return st.builds(
        lambda pts, ivs: History(
            patient_id=pid, birth_day=-5000, sex="F",
            points=pts, intervals=ivs,
        ),
        st.lists(point_events(), max_size=8),
        st.lists(
            st.builds(
                lambda s, d, v: IntervalEvent(
                    Interval(s, s + d), "hospital_stay",
                    value=v, source="hospital_inpatient",
                ),
                st.integers(0, 900), st.integers(1, 60),
                st.one_of(st.none(), st.floats(1, 40).map(
                    lambda v: round(v, 1))),
            ),
            max_size=4,
        ),
    )


class TestBuilder:
    def test_event_before_patient_rejected(self):
        builder = EventStoreBuilder()
        with pytest.raises(EventModelError, match="must be added"):
            builder.add_event(1, 10, "diagnosis")

    def test_conflicting_demographics_rejected(self):
        builder = EventStoreBuilder()
        builder.add_patient(1, 100, "F")
        builder.add_patient(1, 100, "F")  # idempotent
        with pytest.raises(EventModelError, match="conflicting"):
            builder.add_patient(1, 200, "F")

    def test_unknown_system_rejected(self):
        builder = EventStoreBuilder()
        builder.add_patient(1, 0)
        with pytest.raises(EventModelError, match="unknown code system"):
            builder.add_event(1, 10, "diagnosis", code="X", system="SNOMED")

    def test_inverted_interval_rejected(self):
        builder = EventStoreBuilder()
        builder.add_patient(1, 0)
        with pytest.raises(EventModelError, match="must exceed"):
            builder.add_event(1, 10, "hospital_stay", end=5)


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(histories(1), histories(2))
    def test_cohort_roundtrip_preserves_events(self, h1, h2):
        """History -> store -> materialize is the identity (up to sort)."""
        cohort = Cohort([h1, h2])
        store = EventStore.from_cohort(cohort)
        for original in (h1, h2):
            back = store.materialize(original.patient_id)
            assert back.points == original.points
            assert back.intervals == original.intervals
            assert back.birth_day == original.birth_day
            assert back.sex == original.sex

    def test_value_nan_roundtrip(self):
        history = History(
            patient_id=1, birth_day=0,
            points=[PointEvent(day=1, category="blood_pressure",
                               value=None, value2=90.0)],
        )
        back = EventStore.from_cohort(Cohort([history])).materialize(1)
        assert back.points[0].value is None
        assert back.points[0].value2 == 90.0


class TestQueries:
    @pytest.fixture(scope="class")
    def store(self) -> EventStore:
        cohort = Cohort([
            History(patient_id=1, birth_day=0, sex="F", points=[
                PointEvent(day=10, category="diagnosis", code="T90",
                           system="ICPC-2"),
                PointEvent(day=20, category="blood_pressure", value=160.0),
            ]),
            History(patient_id=2, birth_day=-3000, sex="M", points=[
                PointEvent(day=15, category="diagnosis", code="K86",
                           system="ICPC-2"),
            ], intervals=[
                IntervalEvent(Interval(5, 30), "hospital_stay",
                              source="hospital_inpatient"),
            ]),
        ])
        return EventStore.from_cohort(cohort)

    def test_mask_category(self, store):
        assert store.patients_matching(
            store.mask_category("blood_pressure")
        ).tolist() == [1]

    def test_mask_pattern(self, store):
        assert store.patients_matching(
            store.mask_pattern("ICPC-2", "T.*")
        ).tolist() == [1]
        assert store.patients_matching(
            store.mask_pattern("ICPC-2", "T90|K86")
        ).tolist() == [1, 2]

    def test_mask_unknown_category_is_empty(self, store):
        assert not store.mask_category("nope").any()

    def test_mask_day_range_overlaps_intervals(self, store):
        # hospital stay [5,30) overlaps day range [25, 40]
        assert store.patients_matching(
            store.mask_day_range(25, 40)
        ).tolist() == [2]

    def test_mask_value_range(self, store):
        assert store.patients_matching(
            store.mask_value_range(150, 170)
        ).tolist() == [1]

    def test_mask_source(self, store):
        assert store.patients_matching(
            store.mask_source("hospital_inpatient")
        ).tolist() == [2]

    def test_event_counts_per_patient(self, store):
        counts = store.event_counts_per_patient(
            np.ones(store.n_events, dtype=bool)
        )
        assert counts == {1: 2, 2: 2}

    def test_first_day_per_patient(self, store):
        first = store.first_day_per_patient(store.mask_category("diagnosis"))
        assert first == {1: 10, 2: 15}

    def test_demographics_accessors(self, store):
        assert store.birth_day_of(2) == -3000
        assert store.sex_of(1) == "F"
        with pytest.raises(EventModelError):
            store.birth_day_of(42)

    def test_mask_patients(self, store):
        mask = store.mask_patients([1])
        assert set(store.patient[mask].tolist()) == {1}

    def test_to_cohort_subset(self, store):
        cohort = store.to_cohort([2])
        assert cohort.patient_ids == [2]
