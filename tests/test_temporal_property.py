"""Property tests for the qualitative temporal constraint machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InconsistentConstraintsError
from repro.temporal.allen import ALL_RELATIONS, relation_between
from repro.temporal.constraints import TemporalConstraintNetwork
from repro.temporal.timeline import Interval

_intervals = st.builds(
    lambda start, length: Interval(start, start + length),
    st.integers(0, 60),
    st.integers(1, 25),
)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.sampled_from("abcd"), _intervals,
                       min_size=2, max_size=4))
def test_network_built_from_concrete_intervals_is_consistent(assignment):
    """Constraints read off real intervals always propagate and realize."""
    names = sorted(assignment)
    net = TemporalConstraintNetwork()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            net.constrain(a, b, relation_between(assignment[a],
                                                 assignment[b]))
    net.propagate()
    realized = net.realize()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            assert relation_between(realized[a], realized[b]) == \
                relation_between(assignment[a], assignment[b])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from("abc"), st.sampled_from("abc"),
            st.sets(st.sampled_from(ALL_RELATIONS), min_size=1, max_size=4),
        ),
        min_size=1, max_size=5,
    )
)
def test_propagation_never_loses_solutions(constraints):
    """If solve() finds a scenario, that scenario satisfies every original
    constraint (soundness of propagation + search)."""
    net = TemporalConstraintNetwork()
    original: list[tuple[str, str, frozenset]] = []
    try:
        for a, b, relations in constraints:
            if a == b:
                continue
            net.constrain(a, b, relations)
            original.append((a, b, frozenset(relations)))
    except InconsistentConstraintsError:
        return
    if len(net.variables) < 2:
        return
    try:
        realized = net.realize()
    except InconsistentConstraintsError:
        return
    for a, b, allowed in original:
        # the net may have been narrowed by later constraints on (a, b);
        # recompute the effective constraint at assertion time
        actual = relation_between(realized[a], realized[b])
        assert actual in allowed, (a, b, actual, allowed)


@settings(max_examples=60, deadline=None)
@given(_intervals, _intervals, _intervals)
def test_three_interval_network_realizes_exactly(a, b, c):
    net = TemporalConstraintNetwork()
    net.constrain("a", "b", relation_between(a, b))
    net.constrain("b", "c", relation_between(b, c))
    net.constrain("a", "c", relation_between(a, c))
    realized = net.realize()
    assert relation_between(realized["a"], realized["b"]) == \
        relation_between(a, b)
    assert relation_between(realized["b"], realized["c"]) == \
        relation_between(b, c)
    assert relation_between(realized["a"], realized["c"]) == \
        relation_between(a, c)


def test_realize_rejects_known_unsatisfiable():
    from repro.temporal.allen import AllenRelation

    net = TemporalConstraintNetwork()
    net.constrain("a", "b", AllenRelation.BEFORE)
    net.constrain("b", "c", AllenRelation.BEFORE)
    with pytest.raises(InconsistentConstraintsError):
        net.constrain("c", "a", AllenRelation.BEFORE)
        net.propagate()
