"""Tests for the fluent query builder (Fig 4) and the textual language."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query


class TestBuilder:
    def test_single_clause_unwrapped(self):
        query = QueryBuilder().with_concept("T90").build()
        assert query == HasEvent(Concept("T90"))

    def test_clauses_conjoined(self):
        query = (
            QueryBuilder()
            .with_concept("T90")
            .min_count("gp_contact", 4)
            .female()
            .build()
        )
        assert isinstance(query, PatientAnd)
        assert len(query.children) == 3

    def test_with_branch_builds_paper_regex(self):
        query = QueryBuilder().with_branch("ICPC-2", "F", "H").build()
        assert isinstance(query, HasEvent)
        assert isinstance(query.expr, CodeMatch)
        assert query.expr.pattern == "(?:F.*)|(?:H.*)"

    def test_window_scopes_event_clauses(self, small_engine):
        scoped = (
            QueryBuilder()
            .in_window(15_400, 15_450)
            .with_category("gp_contact")
            .build()
        )
        unscoped = QueryBuilder().with_category("gp_contact").build()
        assert small_engine.count(scoped) < small_engine.count(unscoped)

    def test_either_and_exclude(self, small_engine):
        query = (
            QueryBuilder()
            .either(Concept("T90"), Concept("K86"))
            .exclude(SexIs("M"))
            .build()
        )
        assert isinstance(query, PatientAnd)
        assert isinstance(query.children[0], PatientOr)
        assert isinstance(query.children[1], PatientNot)
        ids = small_engine.patients(query)
        assert all(
            small_engine.store.sex_of(int(p)) == "F" for p in ids[:20]
        )

    def test_empty_build_rejected(self):
        with pytest.raises(QueryError, match="empty"):
            QueryBuilder().build()

    def test_double_build_rejected(self):
        builder = QueryBuilder().with_concept("T90")
        builder.build()
        with pytest.raises(QueryError, match="already built"):
            builder.build()

    def test_either_needs_two(self):
        with pytest.raises(QueryError):
            QueryBuilder().either(Concept("T90"))


class TestParser:
    def test_atoms(self):
        assert parse_query("concept T90") == HasEvent(Concept("T90"))
        assert parse_query("category gp_contact") == HasEvent(
            Category("gp_contact")
        )
        assert parse_query("sex F") == SexIs("F")
        assert parse_query("code icpc2 /T90/") == HasEvent(
            CodeMatch("ICPC-2", "T90")
        )

    def test_atleast(self):
        query = parse_query("atleast 4 category gp_contact")
        assert query == CountAtLeast(Category("gp_contact"), 4)

    def test_age(self):
        assert parse_query("age 40 .. 80 at 15706") == AgeRange(40, 80, 15706)

    def test_precedence_and_parens(self):
        query = parse_query("concept T90 or concept K86 and sex F")
        # and binds tighter than or
        assert isinstance(query, PatientOr)
        assert isinstance(query.children[1], PatientAnd)
        grouped = parse_query("(concept T90 or concept K86) and sex F")
        assert isinstance(grouped, PatientAnd)

    def test_not(self):
        query = parse_query("not sex M")
        assert query == PatientNot(SexIs("M"))

    def test_during_window(self):
        query = parse_query("during 100 .. 200 category gp_contact")
        assert isinstance(query, HasEvent)

    def test_regex_with_escaped_slash(self):
        query = parse_query(r"code icpc2 /F.*\/H/")
        assert query.expr.pattern == "F.*/H"

    def test_comments_ignored(self):
        query = parse_query("concept T90  # diabetes cohort")
        assert query == HasEvent(Concept("T90"))

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "concept",
            "code snomed /x/",
            "age 40 .. 80",
            "sex Q",
            "concept T90 and",
            "first concept T90",
            "concept T90 trailing garbage",
            "atleast x category gp_contact",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)

    def test_parser_and_builder_agree(self, small_engine):
        from_text = parse_query(
            "concept T90 and atleast 2 category gp_contact"
        )
        from_builder = (
            QueryBuilder()
            .with_concept("T90")
            .min_count("gp_contact", 2)
            .build()
        )
        left = small_engine.patients(from_text)
        right = small_engine.patients(from_builder)
        assert (left == right).all()
