"""Differential property harness: planned evaluation ≡ naive evaluation.

An optimizer that silently changes results is worse than a slow one, so
this suite *proves* the planner's rewrites (flattening, canonical child
order, De Morgan push-down, constant folding) and its memoized
evaluation order are observationally equivalent to the naive recursive
engine: a seeded generator produces thousands of random ASTs spanning
all 17 query node types, and every one must return bit-identical
patient arrays from both engines — on a normal store, an empty store
and a single-patient store.

This complements ``tests/test_query_property.py`` (naive engine vs a
``History``-object reference interpreter): together they chain
planned ≡ naive ≡ object-model semantics.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.events.store import EventStoreBuilder
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventAnd,
    EventNot,
    EventOr,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
    Source,
    TimeWindow,
    ValueRange,
)
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.planner import plan_query
from repro.simulate.fast import generate_store_fast

#: Every node type of the query AST; the generator must cover them all.
ALL_NODE_TYPES = (
    CodeMatch, Concept, Category, Source, ValueRange, TimeWindow,
    EventAnd, EventOr, EventNot,
    HasEvent, CountAtLeast, AgeRange, SexIs, FirstBefore,
    PatientAnd, PatientOr, PatientNot,
)
assert len(ALL_NODE_TYPES) == 17

_CODE_PATTERNS = [
    ("ICPC-2", "T90"), ("ICPC-2", "K8."), ("ICPC-2", "F.*|H.*"),
    ("ICPC-2", "ZZZ"), ("ICD-10", "E1[14]"), ("ICD-10", "I1.*"),
    ("ATC", "C07.*"), ("ATC", "A10.*"),
]
_CONCEPTS = ["T90", "K86", "K87", "P76", "R96"]
_CATEGORIES = [
    "gp_contact", "hospital_stay", "blood_pressure", "prescription",
    "diagnosis", "no_such_category",
]
_SOURCES = ["gp_claim", "hospital_inpatient", "municipal_home_care",
            "no_such_source"]


class QueryGenerator:
    """A seeded random AST generator spanning all 17 node types."""

    def __init__(self, seed: int, day_lo: int, day_hi: int) -> None:
        self.rng = random.Random(seed)
        self.day_lo = day_lo
        self.day_hi = day_hi

    def _day(self) -> int:
        return self.rng.randint(self.day_lo, self.day_hi)

    def event_atom(self):
        choice = self.rng.randrange(6)
        if choice == 0:
            return CodeMatch(*self.rng.choice(_CODE_PATTERNS))
        if choice == 1:
            return Concept(self.rng.choice(_CONCEPTS))
        if choice == 2:
            return Category(self.rng.choice(_CATEGORIES))
        if choice == 3:
            return Source(self.rng.choice(_SOURCES))
        if choice == 4:
            low = self.rng.uniform(50.0, 180.0)
            return ValueRange(low, low + self.rng.uniform(0.0, 120.0))
        first = self._day()
        return TimeWindow(first, self.rng.randint(first, self.day_hi))

    def event_expr(self, depth: int):
        if depth <= 0:
            return self.event_atom()
        choice = self.rng.randrange(5)
        if choice == 0:
            return self.event_atom()
        if choice == 1:
            return EventNot(self.event_expr(depth - 1))
        children = tuple(
            self.event_expr(depth - 1)
            for __ in range(self.rng.randint(2, 3))
        )
        return EventAnd(children) if choice in (2, 3) else EventOr(children)

    def patient_atom(self):
        choice = self.rng.randrange(5)
        if choice == 0:
            return HasEvent(self.event_expr(self.rng.randint(0, 2)))
        if choice == 1:
            return CountAtLeast(
                self.event_expr(self.rng.randint(0, 1)),
                self.rng.randint(1, 6),
            )
        if choice == 2:
            return FirstBefore(
                self.event_expr(self.rng.randint(0, 1)), self._day()
            )
        if choice == 3:
            low = self.rng.uniform(0.0, 80.0)
            return AgeRange(
                low, low + self.rng.uniform(0.0, 60.0), self._day()
            )
        return SexIs(self.rng.choice(["F", "M", "U"]))

    def patient_expr(self, depth: int):
        if depth <= 0:
            return self.patient_atom()
        choice = self.rng.randrange(5)
        if choice == 0:
            return self.patient_atom()
        if choice == 1:
            return PatientNot(self.patient_expr(depth - 1))
        children = tuple(
            self.patient_expr(depth - 1)
            for __ in range(self.rng.randint(2, 3))
        )
        return (
            PatientAnd(children) if choice in (2, 3) else PatientOr(children)
        )


def _store_small():
    store, __ = generate_store_fast(250, seed=11)
    return store


def _store_single():
    builder = EventStoreBuilder()
    builder.add_patient(7, birth_day=-9000, sex="F")
    builder.add_event(7, 15_400, "gp_contact", code="T90", system="ICPC-2",
                      source="gp_claim")
    builder.add_event(7, 15_410, "blood_pressure", value=150.0,
                      source="gp_claim")
    builder.add_event(7, 15_420, "hospital_stay", end=15_430,
                      code="E11", system="ICD-10", source="hospital_inpatient")
    return builder.build()


def _store_empty():
    return EventStoreBuilder().build()


_STORES = {
    "small": _store_small(),
    "single": _store_single(),
    "empty": _store_empty(),
}

#: (store name, generator seed, number of generated queries).  The small
#: store carries the bulk (the acceptance criterion's >= 2000 cases);
#: degenerate stores re-run a smaller corpus.
_RUNS = [("small", 2016, 2000), ("single", 77, 300), ("empty", 99, 300)]


def _generated_corpus(store, seed: int, count: int):
    day_lo = int(store.day.min()) if store.n_events else 15_000
    day_hi = int(store.day.max()) if store.n_events else 16_000
    gen = QueryGenerator(seed, day_lo, day_hi)
    return [gen.patient_expr(gen.rng.randint(0, 3)) for __ in range(count)]


@pytest.mark.parametrize("store_name,seed,count", _RUNS,
                         ids=[r[0] for r in _RUNS])
def test_planned_equals_naive(store_name, seed, count):
    store = _STORES[store_name]
    planned = QueryEngine(store, optimize=True)
    naive = QueryEngine(store, optimize=False)
    for i, query in enumerate(_generated_corpus(store, seed, count)):
        fast = planned.patients(query)
        slow = naive.patients(query)
        assert np.array_equal(fast, slow), (
            f"case {i} on {store_name} store diverged: planned "
            f"{len(fast)} vs naive {len(slow)} patients for {query!r} "
            f"(plan: {plan_query(query).key})"
        )


def test_generator_covers_all_17_node_types():
    """The differential corpus genuinely exercises every AST node type."""
    remaining = set(ALL_NODE_TYPES)

    def visit(node):
        remaining.discard(type(node))
        for attr in ("children",):
            for child in getattr(node, attr, ()):
                visit(child)
        for attr in ("child", "expr"):
            child = getattr(node, attr, None)
            if child is not None and not isinstance(child, (str, int, float)):
                visit(child)

    store = _STORES["small"]
    for query in _generated_corpus(store, 2016, 2000):
        visit(query)
    assert not remaining, f"never generated: {remaining}"


def test_warm_cache_results_stay_identical():
    """Re-running a refinement sequence entirely from cache is exact."""
    store = _STORES["small"]
    planned = QueryEngine(store, optimize=True)
    naive = QueryEngine(store, optimize=False)
    base = HasEvent(Concept("T90"))
    refinements = [
        base,
        PatientAnd((base, CountAtLeast(Category("gp_contact"), 2))),
        PatientAnd((base, CountAtLeast(Category("gp_contact"), 2),
                    SexIs("F"))),
    ]
    first_pass = [planned.patients(q).copy() for q in refinements]
    second_pass = [planned.patients(q) for q in refinements]
    for q, a, b in zip(refinements, first_pass, second_pass):
        assert np.array_equal(a, b)
        assert np.array_equal(a, naive.patients(q))
    assert planned.cache.stats.hits >= len(refinements)


def test_planned_equals_naive_with_tiny_cache():
    """Heavy eviction (a 2-entry LRU) must never change results."""
    store = _STORES["small"]
    planned = QueryEngine(store, optimize=True,
                          cache=QueryCache(max_entries=2))
    naive = QueryEngine(store, optimize=False)
    for query in _generated_corpus(store, 4242, 150):
        assert np.array_equal(planned.patients(query),
                              naive.patients(query))
    assert planned.cache.stats.evictions > 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
