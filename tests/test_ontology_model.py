"""Tests for the OWL-style ontology model container."""

from __future__ import annotations

import pytest

from repro.errors import OntologyError
from repro.ontology.model import (
    Conjunction,
    DataHasValue,
    DisjointClasses,
    NamedClass,
    ObjectSomeValuesFrom,
    Ontology,
    SubClassOf,
    SubPropertyOf,
)


def test_declare_class_is_idempotent():
    ont = Ontology("t")
    a1 = ont.declare_class("A")
    a2 = ont.declare_class("A")
    assert a1 == a2
    assert "A" in ont.classes


def test_thing_predeclared():
    assert "Thing" in Ontology("t").classes


def test_axiom_rejects_undeclared_class():
    ont = Ontology("t")
    ont.declare_class("A")
    with pytest.raises(OntologyError, match="undeclared class"):
        ont.subclass_of(NamedClass("A"), NamedClass("B"))


def test_axiom_rejects_undeclared_property():
    ont = Ontology("t")
    a = ont.declare_class("A")
    b = ont.declare_class("B")
    with pytest.raises(OntologyError, match="undeclared object property"):
        ont.subclass_of(a, ObjectSomeValuesFrom("r", b))
    with pytest.raises(OntologyError, match="undeclared data property"):
        ont.subclass_of(a, DataHasValue("p", "x"))


def test_nested_expressions_validated():
    ont = Ontology("t")
    a = ont.declare_class("A")
    ont.declare_object_property("r")
    with pytest.raises(OntologyError):
        ont.subclass_of(a, ObjectSomeValuesFrom("r", NamedClass("Ghost")))


def test_conjunction_needs_two_operands():
    with pytest.raises(OntologyError):
        Conjunction((NamedClass("A"),))


def test_empty_class_name_rejected():
    with pytest.raises(OntologyError):
        NamedClass("")


def test_conflicting_property_redeclaration():
    ont = Ontology("t")
    a = ont.declare_class("A")
    ont.declare_object_property("r", domain=a)
    with pytest.raises(OntologyError, match="conflicting"):
        ont.declare_object_property("r", domain=ont.declare_class("B"))


def test_subproperty_axiom_checks_names():
    ont = Ontology("t")
    ont.declare_object_property("r")
    with pytest.raises(OntologyError):
        ont.add_axiom(SubPropertyOf("r", "missing"))


def test_individual_assertions_accumulate():
    ont = Ontology("t")
    a = ont.declare_class("A")
    ind = ont.add_individual("x")
    ind.assert_type(a)
    ind.relate("r", "y")
    ind.set_value("p", 3)
    assert ont.add_individual("x") is ind
    assert ind.types == {a}
    assert ind.object_assertions == [("r", "y")]
    assert ind.data_assertions == [("p", 3)]


def test_disjoint_axiom_accepted():
    ont = Ontology("t")
    a = ont.declare_class("A")
    b = ont.declare_class("B")
    ont.disjoint(a, b)
    assert any(isinstance(ax, DisjointClasses) for ax in ont.axioms)


def test_subclassof_dataclass_equality():
    a, b = NamedClass("A"), NamedClass("B")
    assert SubClassOf(a, b) == SubClassOf(NamedClass("A"), NamedClass("B"))
