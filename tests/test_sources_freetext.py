"""Tests for regex extraction from noisy free text (Section IV-A)."""

from __future__ import annotations

import pytest

from repro.sources.freetext import (
    extract_blood_pressures,
    extract_prescriptions,
)


class TestBloodPressure:
    @pytest.mark.parametrize(
        "text",
        [
            "BT 140/90",
            "bp: 140 / 90 mmHg",
            "Blodtrykk 140-90",
            "BP140/90",
            "Control visit. BT 140/90. Stable.",
        ],
    )
    def test_convention_variants(self, text):
        readings = extract_blood_pressures(text)
        assert len(readings) == 1
        assert (readings[0].systolic, readings[0].diastolic) == (140, 90)

    def test_multiple_readings(self):
        readings = extract_blood_pressures("BT 150/95, later bt 140/85")
        assert len(readings) == 2

    def test_implausible_typo_discarded(self):
        """'BT 14/90' parses but is physiologically impossible — the
        paper's point that free-text extraction stays limited."""
        assert extract_blood_pressures("BT 14/90") == []
        assert extract_blood_pressures("BT 500/90") == []

    def test_no_label_no_match(self):
        assert extract_blood_pressures("value 140/90 noted") == []

    def test_empty_text(self):
        assert extract_blood_pressures("") == []


class TestPrescriptions:
    @pytest.mark.parametrize(
        "text,code,days",
        [
            ("rx C07AB02", "C07AB02", None),
            ("resept: C07AB02x90", "C07AB02", 90),
            ("prescribed c07ab02 x 90d", "C07AB02", 90),
            ("utskrevet A10BA02x30", "A10BA02", 30),
        ],
    )
    def test_variants(self, text, code, days):
        mentions = extract_prescriptions(text)
        assert len(mentions) == 1
        assert mentions[0].atc_code == code
        assert mentions[0].days == days

    def test_bare_atc_code_without_marker_not_matched(self):
        assert extract_prescriptions("patient on C07AB02") == []

    def test_several_mentions(self):
        text = "rx C07AB02x90. rx A10BA02x30"
        assert [m.atc_code for m in extract_prescriptions(text)] == [
            "C07AB02", "A10BA02"
        ]
