"""Tests for the plug-in registry (NSEPter's interchangeable filters and
view engines, Section II-A1)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.plugins import (
    apply_filters,
    get_filter,
    get_view,
    list_filters,
    list_views,
    register_filter,
    register_view,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"busiest-50", "drop-empty", "diagnoses-only"} <= set(
            list_filters()
        )
        assert {"timeline", "density", "nsepter-graph"} <= set(list_views())

    def test_unknown_names_rejected_with_catalog(self):
        with pytest.raises(ReproError, match="available"):
            get_filter("nope")
        with pytest.raises(ReproError, match="available"):
            get_view("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_filter("drop-empty")(lambda c: c)
        with pytest.raises(ReproError, match="already registered"):
            register_view("timeline")(lambda s, i: None)

    def test_custom_filter_roundtrip(self):
        @register_filter("test-identity")
        def identity(cohort):
            return cohort

        assert get_filter("test-identity") is identity
        assert "test-identity" in list_filters()


class TestBuiltinFilters:
    def test_busiest_50(self, small_store):
        cohort = small_store.to_cohort(
            small_store.patient_ids[:120].tolist()
        )
        top = get_filter("busiest-50")(cohort)
        assert len(top) == 50
        counts = [len(h) for h in top]
        assert counts == sorted(counts, reverse=True)
        # no excluded history is busier than the selected minimum
        excluded_max = max(
            len(h) for h in cohort
            if h.patient_id not in set(top.patient_ids)
        )
        assert min(counts) >= excluded_max - 0  # ties may fall either side

    def test_diagnoses_only(self, small_store):
        cohort = small_store.to_cohort(small_store.patient_ids[:20].tolist())
        filtered = get_filter("diagnoses-only")(cohort)
        for history in filtered:
            assert not history.intervals
            assert all(p.category == "diagnosis" for p in history.points)

    def test_filter_chain(self, small_store):
        cohort = small_store.to_cohort(
            small_store.patient_ids[:120].tolist()
        )
        result = apply_filters(cohort, ["diagnoses-only", "busiest-50"])
        assert len(result) == 50
        assert all(
            p.category == "diagnosis" for h in result for p in h.points
        )


class TestBuiltinViews:
    def test_all_views_render_same_cohort(self, small_store, small_engine):
        """The paper's point: engines interchange over one data model."""
        from repro.query.ast import Concept

        ids = small_engine.patients(Concept("T90"))[:25].tolist()
        for name in ("timeline", "density", "nsepter-graph"):
            scene = get_view(name)(small_store, ids)
            text = (
                scene.svg_text if hasattr(scene, "svg_text")
                else scene.to_string()
            )
            assert text.startswith("<svg")


def test_workbench_render_view(small_store, small_engine):
    from repro.query.ast import Concept
    from repro.workbench import Workbench

    wb = Workbench.from_store(small_store)
    ids = small_engine.patients(Concept("T90"))[:10]
    scene = wb.render_view("density", ids)
    assert scene.svg_text.startswith("<svg")
    with pytest.raises(ReproError):
        wb.render_view("missing-view", ids)
