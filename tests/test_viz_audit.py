"""Tests for the perceptual scene audit."""

from __future__ import annotations

import pytest

from repro.query.ast import Concept
from repro.viz.audit import MIN_READABLE_GLYPH_PX, audit_scene
from repro.viz.axes import ZoomSliders
from repro.viz.timeline_view import TimelineConfig, TimelineView


@pytest.fixture(scope="module")
def ids(small_engine):
    return small_engine.patients(Concept("T90")).tolist()


class TestAuditScene:
    def test_zoomed_in_scene_passes(self, small_store, ids):
        view = TimelineView(
            small_store,
            TimelineConfig(show_legend=False,
                           sliders=ZoomSliders(0.8, 0.9)),
        )
        scene = view.render(ids[:12])
        audit = audit_scene(scene)
        assert audit.readable_glyph_fraction > 0.9
        assert audit.sub_pixel_fraction < 0.1
        assert not any("sub-pixel" in w for w in audit.warnings)

    def test_zoomed_out_scene_warns(self, small_store, ids):
        view = TimelineView(
            small_store,
            TimelineConfig(show_legend=False,
                           sliders=ZoomSliders(0.4, 0.02)),
        )
        scene = view.render(ids[:150])
        audit = audit_scene(scene)
        assert audit.readable_glyph_fraction < 0.5
        assert any("glyphs" in w or "sub-pixel" in w
                   for w in audit.warnings)

    def test_medication_budget_warning(self, small_store):
        """Coloring by ATC level 4 explodes the hue count past the
        preattentive budget; the audit must flag it."""
        ids = small_store.patient_ids[:80].tolist()
        fine = TimelineView(
            small_store,
            TimelineConfig(show_legend=False, medication_level=4),
        ).render(ids)
        audit = audit_scene(fine)
        if len(fine.medication_colors) > 8:
            assert any("medication hues" in w for w in audit.warnings)
            assert not audit.ok

    def test_abstracting_up_restores_budget(self, small_store, ids):
        """The audit's own advice — abstract the ATC level up — works:
        level-1 anatomical groups fit the preattentive budget where
        level-2 groups overflow it on multimorbid patients."""
        fine = TimelineView(
            small_store,
            TimelineConfig(show_legend=False, medication_level=2),
        ).render(ids[:10])
        coarse = TimelineView(
            small_store,
            TimelineConfig(show_legend=False, medication_level=1),
        ).render(ids[:10])
        assert len(coarse.medication_colors) < len(fine.medication_colors)
        audit = audit_scene(coarse)
        assert not any("medication hues" in w for w in audit.warnings)

    def test_counts_exclude_background_bars(self, small_store, ids):
        scene = TimelineView(
            small_store, TimelineConfig(show_legend=False)
        ).render(ids[:10])
        audit = audit_scene(scene)
        bars = sum(1 for m in scene.marks if m.kind == "bar")
        assert audit.n_marks == len(scene.marks) - bars

    def test_min_readable_constant_sane(self):
        assert 1.0 < MIN_READABLE_GLYPH_PX < 10.0
