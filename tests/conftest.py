"""Shared fixtures: small deterministic data sets, built once per session."""

from __future__ import annotations

import pytest

from repro.events.store import EventStore
from repro.query.engine import QueryEngine
from repro.simulate.fast import generate_store_fast
from repro.simulate.trajectories import RawSources, StudyWindow, generate_raw_sources
from repro.workbench import Workbench


@pytest.fixture(scope="session")
def window() -> StudyWindow:
    """The canonical two-year study window used by the fixtures."""
    return StudyWindow.for_year(2012)


@pytest.fixture(scope="session")
def small_store(window: StudyWindow) -> EventStore:
    """A 2,000-patient store from the fast generator (seeded)."""
    store, _ = generate_store_fast(2_000, seed=42)
    return store


@pytest.fixture(scope="session")
def small_engine(small_store: EventStore) -> QueryEngine:
    return QueryEngine(small_store)


@pytest.fixture(scope="session")
def raw_sources() -> RawSources:
    """A 400-patient full-fidelity raw-source bundle (seeded)."""
    return generate_raw_sources(400, seed=7)


@pytest.fixture(scope="session")
def workbench(raw_sources: RawSources) -> Workbench:
    """A workbench built through the full integration pipeline."""
    return Workbench.from_raw_sources(raw_sources)
