"""Tests for the per-source record parsers and date formats."""

from __future__ import annotations

import pytest

from repro.errors import SourceFormatError
from repro.sources.gp import GPClaimParser
from repro.sources.hospital import HospitalEpisodeParser
from repro.sources.municipal import MunicipalServiceParser
from repro.sources.parsed import (
    parse_iso_date,
    parse_norwegian_date,
    parse_slash_date,
)
from repro.sources.schema import (
    GPClaim,
    HospitalEpisode,
    MunicipalServiceRecord,
    SpecialistClaim,
)
from repro.sources.specialist import SpecialistClaimParser
from repro.temporal.timeline import day_number
from datetime import date


class TestDateFormats:
    def test_three_registry_conventions_agree(self):
        expected = day_number(date(2012, 3, 15))
        assert parse_norwegian_date("15.03.2012") == expected
        assert parse_iso_date("2012-03-15") == expected
        assert parse_slash_date("15/03/2012") == expected

    @pytest.mark.parametrize("raw", ["00.00.0000", "32.01.2012", "15.13.2012",
                                     "2012-03-15", "garbage", ""])
    def test_bad_norwegian_dates_raise(self, raw):
        with pytest.raises(SourceFormatError):
            parse_norwegian_date(raw)

    @pytest.mark.parametrize("raw", ["2012-02-30", "15.03.2012", "2012/03/15"])
    def test_bad_iso_dates_raise(self, raw):
        with pytest.raises(SourceFormatError):
            parse_iso_date(raw)

    def test_whitespace_tolerated(self):
        assert parse_iso_date(" 2012-03-15 ") == parse_iso_date("2012-03-15")


class TestGPClaimParser:
    def test_contact_plus_diagnoses(self):
        parser = GPClaimParser()
        events = parser.parse(
            GPClaim(1, "15.03.2012", "T90, K86", "gp", "")
        )
        categories = [e.category for e in events]
        assert categories == ["gp_contact", "diagnosis", "diagnosis"]
        assert {e.code for e in events if e.code} == {"T90", "K86"}
        assert all(e.source_kind == "gp_claim" for e in events)

    def test_noisy_codes_normalized_or_skipped(self):
        parser = GPClaimParser()
        events = parser.parse(GPClaim(1, "15.03.2012", " t90 , Q42", "gp"))
        assert [e.code for e in events if e.code] == ["T90"]
        assert parser.stats.bad_codes == 1

    def test_emergency_claim_type(self):
        parser = GPClaimParser()
        events = parser.parse(GPClaim(1, "15.03.2012", "", "emergency"))
        assert events[0].category == "emergency_contact"
        assert events[0].source_kind == "gp_emergency_claim"

    def test_unknown_claim_type_raises(self):
        with pytest.raises(SourceFormatError, match="unknown claim type"):
            GPClaimParser().parse(GPClaim(1, "15.03.2012", "", "dentist"))

    def test_note_extraction_bp_and_rx(self):
        parser = GPClaimParser()
        events = parser.parse(
            GPClaim(1, "15.03.2012", "K86", "gp",
                    "BT 150/95. rx C07AB02x90")
        )
        bp = [e for e in events if e.category == "blood_pressure"]
        rx = [e for e in events if e.category == "prescription"]
        assert bp[0].value == 150.0 and bp[0].value2 == 95.0
        assert rx[0].code == "C07AB02"
        assert rx[0].end == rx[0].day + 90

    def test_unknown_atc_in_note_skipped(self):
        parser = GPClaimParser()
        events = parser.parse(
            GPClaim(1, "15.03.2012", "", "gp", "rx Z99ZZ99x30")
        )
        assert not [e for e in events if e.category == "prescription"]

    def test_bad_date_counted_then_raised(self):
        parser = GPClaimParser()
        with pytest.raises(SourceFormatError):
            parser.parse(GPClaim(1, "31.02.2012", "T90"))
        assert parser.stats.bad_dates == 1


class TestHospitalEpisodeParser:
    def test_inpatient_becomes_interval(self):
        parser = HospitalEpisodeParser()
        events = parser.parse(
            HospitalEpisode(1, "2012-05-01", "2012-05-10", "inpatient",
                            "E11", ("I10",), "endo")
        )
        stay = events[0]
        assert stay.category == "hospital_stay"
        assert stay.end - stay.day == 10  # discharge day inclusive
        assert [e.code for e in events if e.category == "diagnosis"] == [
            "E11", "I10"
        ]

    def test_outpatient_is_point(self):
        parser = HospitalEpisodeParser()
        events = parser.parse(
            HospitalEpisode(1, "2012-05-01", "2012-05-01", "outpatient", "J45")
        )
        assert events[0].category == "outpatient_visit"
        assert events[0].end is None

    def test_negative_stay_rejected(self):
        parser = HospitalEpisodeParser()
        with pytest.raises(SourceFormatError, match="precedes"):
            parser.parse(
                HospitalEpisode(1, "2012-05-10", "2012-05-01", "inpatient")
            )
        assert parser.stats.negative_stays == 1

    def test_unknown_icd_code_skipped(self):
        parser = HospitalEpisodeParser()
        events = parser.parse(
            HospitalEpisode(1, "2012-05-01", "2012-05-02", "inpatient", "X99")
        )
        assert not [e for e in events if e.category == "diagnosis"]
        assert parser.stats.bad_codes == 1


class TestMunicipalServiceParser:
    def test_closed_period(self):
        parser = MunicipalServiceParser(horizon_day=99999)
        events = parser.parse(
            MunicipalServiceRecord(1, "home_care", "2012-06-01",
                                   "2012-08-31", 4.0)
        )
        assert events[0].category == "home_care"
        assert events[0].value == 4.0

    def test_open_period_closes_at_horizon(self):
        horizon = parse_iso_date("2013-12-31")
        parser = MunicipalServiceParser(horizon_day=horizon)
        events = parser.parse(
            MunicipalServiceRecord(1, "nursing_home", "2012-06-01", "")
        )
        assert events[0].end == horizon + 1
        assert parser.stats.open_ended == 1

    def test_inverted_period_rejected(self):
        parser = MunicipalServiceParser(horizon_day=99999)
        with pytest.raises(SourceFormatError, match="precedes"):
            parser.parse(
                MunicipalServiceRecord(1, "home_care", "2012-06-01",
                                       "2012-01-01")
            )

    def test_unknown_service_rejected(self):
        with pytest.raises(SourceFormatError, match="unknown service"):
            MunicipalServiceParser(0).parse(
                MunicipalServiceRecord(1, "spa", "2012-06-01", "")
            )


class TestSpecialistClaimParser:
    def test_contact_diagnoses_prescriptions(self):
        parser = SpecialistClaimParser()
        events = parser.parse(
            SpecialistClaim(1, "20/03/2012", "E11;I10", "cardiology",
                            ("C07AB02x90", "A10BA02"))
        )
        assert events[0].category == "specialist_contact"
        assert [e.code for e in events if e.category == "diagnosis"] == [
            "E11", "I10"
        ]
        rx = [e for e in events if e.category == "prescription"]
        assert rx[0].end - rx[0].day == 90
        assert rx[1].end - rx[1].day == 90  # default duration

    def test_malformed_prescription_counted(self):
        parser = SpecialistClaimParser()
        parser.parse(SpecialistClaim(1, "20/03/2012", "", "x", ("NOPE",)))
        assert parser.stats.bad_codes == 1
