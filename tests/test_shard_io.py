"""Persistence satellites: token reuse, atomic saves, shard-aware merge.

Three contracts around :mod:`repro.io` introduced with the shard
subsystem:

* ``save_store`` persists the memoized ``content_token`` in the npz
  header and ``load_store`` trusts it — a loaded store never pays the
  O(bytes) rehash before its first cached query;
* ``save_store`` is atomic — a crash mid-write can never leave a
  truncated archive under the final name;
* ``merge_stores`` accepts :class:`ShardedEventStore` inputs, and
  partitioning commutes with merging: merge-then-shard and
  shard-then-merge agree on every shard's patient set.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.io import load_store, merge_stores, save_store
from repro.shard import (
    ShardedEventStore,
    subset_store,
    write_sharded_store,
)
from repro.shard.writer import hash_shard_of
from repro.simulate.fast import generate_store_fast


@pytest.fixture(scope="module")
def store():
    built, __ = generate_store_fast(300, seed=11)
    return built


class TestTokenPersistence:
    def test_header_token_is_trusted_on_load(self, store, tmp_path):
        path = str(tmp_path / "store.npz")
        token = store.content_token()
        save_store(store, path)
        loaded = load_store(path)
        # The memo is present *before* any content_token() call — the
        # load path set it from the header instead of rehashing.
        assert loaded.__dict__.get("_content_token") == token
        assert loaded.content_token() == token

    def test_legacy_archive_without_token_still_loads(self, store, tmp_path):
        """Pre-token archives (no header field) fall back to rehashing."""
        import json
        import zipfile

        path = str(tmp_path / "legacy.npz")
        save_store(store, path)
        with zipfile.ZipFile(path) as archive:
            header = json.loads(
                np.lib.format.read_array(
                    archive.open("header.npy")
                ).tobytes().decode("utf-8")
            )
        assert "content_token" in header  # sanity: new writer persists it
        # Simulate a legacy writer: strip the token and re-save the header.
        header.pop("content_token")
        arrays = dict(np.load(path))
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        loaded = load_store(path)
        assert "_content_token" not in loaded.__dict__
        assert loaded.content_token() == store.content_token()


class TestAtomicSave:
    def test_failed_save_leaves_previous_archive_intact(self, store,
                                                        tmp_path,
                                                        monkeypatch):
        path = str(tmp_path / "store.npz")
        save_store(store, path)
        good = open(path, "rb").read()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            save_store(store, path)
        assert open(path, "rb").read() == good
        assert os.listdir(tmp_path) == ["store.npz"]  # temp cleaned up

    def test_extension_is_appended(self, store, tmp_path):
        path = str(tmp_path / "bare")
        save_store(store, path)
        assert os.path.exists(path + ".npz")
        assert load_store(path + ".npz").content_equal(store)


class TestShardAwareMerge:
    def test_merge_accepts_a_sharded_store(self, store, tmp_path):
        path = str(tmp_path / "a.shards")
        write_sharded_store(store, path, n_shards=3)
        merged = merge_stores(ShardedEventStore(path))
        assert merged.content_equal(store)

    def test_merge_mixes_sharded_and_flat(self, store, tmp_path):
        half_a = subset_store(store, store.patient_ids[:150])
        half_b = subset_store(store, store.patient_ids[150:])
        path = str(tmp_path / "half.shards")
        write_sharded_store(half_a, path, n_shards=2)
        merged = merge_stores(ShardedEventStore(path), half_b)
        assert merged.content_equal(store)

    def test_merge_then_shard_equals_shard_then_merge(self, store, tmp_path):
        """Partitioning commutes with merging, shard by shard."""
        n_shards = 4
        half_a = subset_store(store, store.patient_ids[::2])
        half_b = subset_store(store, store.patient_ids[1::2])
        merged_first = str(tmp_path / "merged.shards")
        write_sharded_store(merge_stores(half_a, half_b), merged_first,
                            n_shards=n_shards)
        shard_a = str(tmp_path / "a.shards")
        shard_b = str(tmp_path / "b.shards")
        write_sharded_store(half_a, shard_a, n_shards=n_shards)
        write_sharded_store(half_b, shard_b, n_shards=n_shards)
        combined = ShardedEventStore(merged_first)
        parts_a = ShardedEventStore(shard_a)
        parts_b = ShardedEventStore(shard_b)
        for index in range(n_shards):
            expected = np.union1d(parts_a.shard(index).patient_ids,
                                  parts_b.shard(index).patient_ids)
            assert np.array_equal(
                combined.shard(index).patient_ids, expected
            ), f"shard {index} patient sets diverged"

    def test_hash_partition_is_stable_across_subsets(self, store):
        """The invariant behind streaming: a patient's shard never moves."""
        full = hash_shard_of(store.patient_ids, 4)
        half = hash_shard_of(store.patient_ids[::2], 4)
        assert np.array_equal(full[::2], half)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
