"""Tests for the perception models (Figure 3, cost of knowledge)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, SimulationError
from repro.perception.cost_of_knowledge import (
    DESIGNS,
    InterfaceDesign,
    knowledge_cost,
)
from repro.perception.preattentive import (
    PREATTENTIVE_FEATURES,
    DisplayItem,
    SearchTask,
    classify_search,
)
from repro.perception.search_model import (
    fit_slope,
    make_conjunction_task,
    make_popout_task,
    simulate_search_times,
)


class TestClassification:
    def test_figure3_popout_is_preattentive(self):
        """Red circle among blue circles: single-feature pop-out."""
        assert classify_search(make_popout_task(50)) == "preattentive"

    def test_conjunction_detected(self):
        """Red circle among blue circles AND red squares."""
        assert classify_search(make_conjunction_task(50)) == "conjunction"

    def test_identical_distractor_means_absent(self):
        target = DisplayItem.of(color_hue="red", curvature="circle")
        task = SearchTask(target, [target])
        assert classify_search(task) == "absent"

    def test_unknown_feature_rejected(self):
        with pytest.raises(ReproError):
            DisplayItem.of(smell="bad")

    def test_ware_catalog_quoted(self):
        assert "color_hue" in PREATTENTIVE_FEATURES
        assert "direction_of_motion" in PREATTENTIVE_FEATURES
        assert len(PREATTENTIVE_FEATURES) == 17


class TestSearchModel:
    def test_flat_vs_linear_shape(self):
        """The Figure 3 phenomenon: flat pop-out, linear conjunction."""
        sizes = (10, 40, 160, 640)
        popout = [simulate_search_times(make_popout_task(n), seed=n)
                  for n in sizes]
        conj = [simulate_search_times(make_conjunction_task(n), seed=n)
                for n in sizes]
        popout_slope, __ = fit_slope(popout)
        conj_slope, __ = fit_slope(conj)
        assert abs(popout_slope) < 1.0          # flat, ms/item
        assert conj_slope > 5.0                 # clearly linear
        assert conj_slope > 20 * abs(popout_slope)

    def test_mode_derived_not_assumed(self):
        result = simulate_search_times(make_popout_task(30), seed=1)
        assert result.mode == "preattentive"
        result = simulate_search_times(make_conjunction_task(30), seed=1)
        assert result.mode == "conjunction"

    def test_absent_target_rejected(self):
        target = DisplayItem.of(color_hue="red")
        with pytest.raises(SimulationError):
            simulate_search_times(SearchTask(target, [target]), seed=1)

    def test_deterministic(self):
        a = simulate_search_times(make_conjunction_task(100), seed=5)
        b = simulate_search_times(make_conjunction_task(100), seed=5)
        assert a.mean_rt_ms == b.mean_rt_ms

    def test_fit_needs_two_points(self):
        with pytest.raises(SimulationError):
            fit_slope([simulate_search_times(make_popout_task(10), seed=1)])


class TestCostOfKnowledge:
    def test_workbench_design_wins(self):
        """Overview + details-on-demand beats every alternative for the
        read-k-details task — the design decision the paper made."""
        total, k = 5_000, 10
        costs = {d.name: knowledge_cost(d, total, k) for d in DESIGNS}
        assert costs["timeline-workbench"] == min(costs.values())

    def test_details_on_demand_matters_more_with_scale(self):
        with_dod = next(d for d in DESIGNS if d.name == "timeline-workbench")
        without = next(d for d in DESIGNS if d.name == "timeline-no-dod")
        small_gap = (knowledge_cost(without, 500, 10)
                     - knowledge_cost(with_dod, 500, 10))
        large_gap = (knowledge_cost(without, 50_000, 10)
                     - knowledge_cost(with_dod, 50_000, 10))
        assert large_gap > small_gap

    def test_zero_details_zero_cost(self):
        assert knowledge_cost(DESIGNS[0], 1_000, 0) == 0.0

    def test_cost_scales_linearly_in_k(self):
        design = DESIGNS[-1]
        assert knowledge_cost(design, 1_000, 20) == pytest.approx(
            2 * knowledge_cost(design, 1_000, 10)
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(SimulationError):
            knowledge_cost(DESIGNS[0], -1, 5)

    def test_custom_design(self):
        design = InterfaceDesign("paper-record", has_overview=False,
                                 has_details_on_demand=False, visible_marks=0)
        assert knowledge_cost(design, 100, 3) > 0
