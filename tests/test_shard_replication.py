"""Replication, online read failover, scrubbing and anti-entropy repair.

The replication contract has three falsifiable claims, proved here:

* **Exactness** — on an R=2 store with any single replica of any shard
  damaged (byte flip, truncated column, deleted replica manifest),
  every query answers **byte-identically** to the flat store, serially
  and through the process pool, with zero ``QueryDegradation`` — the
  read path fails over to the healthy peer and counts it.
* **Self-repair** — the background scrubber (``repro.shard.scrub``)
  converges any such store back to ``fsck``-clean without an external
  ``--from`` source, under an arbitrarily small per-tick byte budget,
  resuming its cursor across restarts; a second pass performs zero
  repairs and the content token never changes (anti-entropy repair is
  idempotent, as is ``repair_store`` itself).
* **Crash safety** — replicated appends and the online
  ``replicate_store`` conversion pass every one of their enumerated
  ``crashpoint()`` boundaries with the same pre-or-post guarantee the
  incremental-ingestion matrix proves for R=1.

Satellites riding along: quarantine damage-log rotation, the
``/readyz`` zero-healthy-replica probe, ``/stats`` scrub/failover
blocks, and the ``shard scrub`` / ``shard replicate`` CLI.
"""

from __future__ import annotations

import json
import os
import shutil
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.config import ShardConfig
from repro.errors import ShardRepairError, SimulatedCrashError
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.resilience.faults import (
    ShardFaultPlan,
    apply_shard_faults,
    count_crashpoints,
    crash_at,
)
from repro.shard import (
    Compactor,
    DeltaWriter,
    ParallelExecutor,
    Scrubber,
    ShardedEventStore,
    fsck_store,
    repair_store,
    replicate_store,
    scrub_stats,
    subset_store,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench
from tests.test_query_planner_property import _generated_corpus

N_SHARDS = 3

_FAULT_KINDS = {
    "flip": lambda r: ShardFaultPlan(seed=13, flip_bytes=1, replica=r),
    "truncate": lambda r: ShardFaultPlan(seed=13, truncate_segments=1,
                                         replica=r),
    "missing_manifest": lambda r: ShardFaultPlan(seed=13, delete_manifests=1,
                                                 replica=r),
}


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(160, seed=17)
    return store


@pytest.fixture(scope="module")
def split(flat_store):
    pids = np.sort(flat_store.patient_ids)
    return (subset_store(flat_store, pids[:120]),
            subset_store(flat_store, pids[120:]))


def _build(flat_store, tmp_path, replication=2, name="rep.shards") -> str:
    root = str(tmp_path / name)
    write_sharded_store(flat_store, root, n_shards=N_SHARDS,
                        config=ShardConfig(replication=replication))
    return root


def _strict(root: str) -> ShardedEventStore:
    return ShardedEventStore(root)


def _quarantine_config(**kwargs) -> ShardConfig:
    return ShardConfig(on_damage="quarantine", n_workers=1, **kwargs)


# -- layout ------------------------------------------------------------------


def test_replicated_layout_and_manifest(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    manifest = json.loads(
        (tmp_path / "rep.shards" / "manifest.json").read_text()
    )
    assert manifest["replication"] == 2
    for entry in manifest["shards"]:
        shard = os.path.join(root, entry["name"])
        for rname in ("r0", "r1"):
            replica = os.path.join(shard, rname)
            assert os.path.isfile(os.path.join(replica, "manifest.json"))
            assert os.path.isfile(os.path.join(replica, "patient.npy"))
        # replicas are byte-identical: same per-segment content token
        tokens = {
            json.loads((tmp_path / "rep.shards" / entry["name"] / rname /
                        "manifest.json").read_text())["content_token"]
            for rname in ("r0", "r1")
        }
        assert len(tokens) == 1
        assert tokens == {entry["content_token"]}
        # no flat-layout columns next to the replica dirs
        assert not os.path.exists(os.path.join(shard, "patient.npy"))


def test_replication_does_not_change_content(flat_store, tmp_path):
    r1 = _build(flat_store, tmp_path, replication=1, name="r1.shards")
    r2 = _build(flat_store, tmp_path, replication=2, name="r2.shards")
    assert _strict(r1).content_token() == _strict(r2).content_token()
    assert fsck_store(r2).ok


def test_append_and_compact_stay_replicated(flat_store, split, tmp_path):
    base, batch = split
    root = _build(base, tmp_path)
    DeltaWriter(root).append(batch)
    entry = json.loads(
        (tmp_path / "rep.shards" / "manifest.json").read_text()
    )["shards"][0]
    deltas = entry.get("deltas") or []
    assert deltas, "append landed no delta on shard-0000"
    delta_dir = os.path.join(root, entry["name"], deltas[0]["name"])
    assert os.path.isdir(os.path.join(delta_dir, "r0"))
    assert os.path.isdir(os.path.join(delta_dir, "r1"))
    assert fsck_store(root).ok
    assert _strict(root).materialize_store().content_equal(flat_store)

    Compactor(root).compact()
    assert fsck_store(root).ok
    compacted = _strict(root)
    assert not compacted.has_pending_deltas
    assert compacted.materialize_store().content_equal(flat_store)
    # the compacted generation is itself replicated
    entry = json.loads(
        (tmp_path / "rep.shards" / "manifest.json").read_text()
    )["shards"][0]
    assert os.path.isdir(os.path.join(root, entry["name"], "r0"))
    assert os.path.isdir(os.path.join(root, entry["name"], "r1"))


# -- online read failover ----------------------------------------------------


@pytest.mark.parametrize("kind", sorted(_FAULT_KINDS))
@pytest.mark.parametrize("replica", [0, 1])
def test_failover_serial_exact(flat_store, tmp_path, kind, replica):
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    applied = apply_shard_faults(root, _FAULT_KINDS[kind](replica))
    assert len(applied) == 1
    assert applied[0]["replica"] == replica
    # one damaged replica makes the *store* unclean even while every
    # answer stays exact — that's what the scrubber later restores
    assert not fsck_store(root).ok

    sharded = ShardedEventStore(root, config=_quarantine_config())
    single = QueryEngine(flat_store, optimize=True)
    merged = QueryEngine(sharded, optimize=True)
    for expr in _generated_corpus(flat_store, seed=23, count=15):
        assert np.array_equal(
            np.asarray(merged.patients(expr)),
            np.asarray(single.patients(expr)),
        ), expr
    assert not sharded.degradation().is_degraded
    assert sharded.content_token() == clean_token
    stats = sharded.replication_stats()
    assert stats["replication"] == 2
    if replica == 0:
        # reads start at r0, so damaging it forces (and counts) the
        # failover; damage on the idle peer is invisible to reads and
        # only the scrubber will find it
        assert stats["replica_failovers"] >= 1
        assert stats["suspect_replicas"]
    assert stats["zero_healthy_shards"] == []


def test_failover_parallel_exact(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    apply_shard_faults(root, _FAULT_KINDS["flip"](0))
    sharded = ShardedEventStore(
        root, config=ShardConfig(on_damage="quarantine", n_workers=2)
    )
    expr = parse_query("concept T90 or atleast 2 category gp_contact")
    expected = np.asarray(QueryEngine(flat_store).patients(expr))
    with ParallelExecutor(config=sharded.config) as executor:
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        assert executor.mode == "parallel"
        # the worker that mapped the damaged replica failed over and
        # reported it back through the result envelope
        assert executor.stats_dict()["replica_failovers"] >= 1
    assert not sharded.degradation().is_degraded


def test_r1_store_still_quarantines(flat_store, tmp_path):
    """Without a peer there is nothing to fail over to: R=1 keeps the
    pre-replication degrade-and-quarantine behaviour."""
    root = _build(flat_store, tmp_path, replication=1)
    applied = apply_shard_faults(
        root, ShardFaultPlan(seed=13, flip_bytes=1)
    )
    sharded = ShardedEventStore(root, config=_quarantine_config())
    degradation = sharded.degradation()
    assert degradation.is_degraded
    assert set(degradation.quarantined_shards) == \
        {fault["shard"] for fault in applied}


# -- scrubbing and anti-entropy repair ---------------------------------------


@pytest.mark.parametrize("kind", sorted(_FAULT_KINDS))
def test_scrub_heals_every_damage_mode(flat_store, tmp_path, kind):
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    apply_shard_faults(root, _FAULT_KINDS[kind](1))
    assert not fsck_store(root).ok

    report = Scrubber(root).run_once()
    assert len(report.repaired) >= 1, report.format_summary()
    assert not report.unrepaired
    assert fsck_store(root).ok
    assert _strict(root).content_token() == clean_token
    # anti-entropy repair is idempotent: a second full pass finds a
    # clean store and performs zero repairs
    again = Scrubber(root).run_once()
    assert not again.repaired
    assert again.clean
    assert _strict(root).content_token() == clean_token


def test_scrub_budget_ticks_resume_across_restarts(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    apply_shard_faults(root, _FAULT_KINDS["flip"](0))

    ticks = 0
    repaired = 0
    while True:
        # a fresh Scrubber per tick: the cursor must live in the
        # journal, not the object
        tick = Scrubber(root).tick(budget_bytes=16 * 1024)
        ticks += 1
        repaired += len(tick.repaired)
        if tick.pass_completed:
            break
        assert ticks < 10_000
    assert ticks > 1, "budget did not split the pass into ticks"
    assert repaired >= 1
    assert fsck_store(root).ok
    assert _strict(root).content_token() == clean_token

    stats = scrub_stats(root)
    assert stats["journal_present"]
    assert stats["completed_passes"] == 1
    assert stats["repaired_total"] >= 1
    assert stats["cursor"] == 0
    assert stats["verified_bytes_total"] > 0


def test_scrub_falls_back_to_repair_for_quarantined_shard(flat_store,
                                                          tmp_path):
    """Both replicas damaged: no peer to heal from, so the scrubber's
    end-of-pass fallback runs ``repair_store`` (peer-replica salvage
    from the quarantined copies) and still converges."""
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    first = apply_shard_faults(root, _FAULT_KINDS["flip"](0))
    second = apply_shard_faults(root, _FAULT_KINDS["missing_manifest"](1))
    assert first[0]["shard"] == second[0]["shard"]  # same seed, same pick

    report = Scrubber(root).run_once()
    assert fsck_store(root).ok, report.format_summary()
    # r1 lost only its manifest — its column bytes still hash to the
    # root entry's token, so salvage rebuilds both replicas from them
    assert _strict(root).content_token() == clean_token


def test_repair_store_idempotent_over_replicas(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    apply_shard_faults(root, _FAULT_KINDS["truncate"](0))

    report = repair_store(root)  # no --from: peer replica salvage
    assert report.ok, report.format_summary()
    assert len(report.repaired) >= 1
    assert fsck_store(root).ok
    assert _strict(root).content_token() == clean_token

    again = repair_store(root)
    assert again.ok
    assert not again.repaired, "second repair run was not a no-op"
    assert all(a.action == "intact" for a in again.actions)
    assert _strict(root).content_token() == clean_token


# -- online replication conversion -------------------------------------------


def test_replicate_store_online(flat_store, tmp_path):
    root = _build(flat_store, tmp_path, replication=1)
    clean_token = _strict(root).content_token()
    manifest = replicate_store(root, 2)
    assert manifest["replication"] == 2
    assert fsck_store(root).ok
    assert _strict(root).content_token() == clean_token
    # flat files were reclaimed after the commit
    shard0 = os.path.join(root, manifest["shards"][0]["name"])
    assert not os.path.exists(os.path.join(shard0, "patient.npy"))
    assert os.path.isdir(os.path.join(shard0, "r0"))

    # raising again is a no-op, lowering is refused
    assert replicate_store(root, 2)["replication"] == 2
    with pytest.raises(ShardRepairError):
        replicate_store(root, 1)

    healed = ShardedEventStore(root, config=_quarantine_config())
    single = QueryEngine(flat_store, optimize=True)
    merged = QueryEngine(healed, optimize=True)
    for expr in _generated_corpus(flat_store, seed=37, count=10):
        assert np.array_equal(
            np.asarray(merged.patients(expr)),
            np.asarray(single.patients(expr)),
        ), expr


# -- damage-log rotation (quarantine store) ----------------------------------


def test_damage_log_rotates_at_size_cap(flat_store, tmp_path):
    root = _build(flat_store, tmp_path, replication=1)
    apply_shard_faults(root, ShardFaultPlan(seed=13, flip_bytes=2))
    sharded = ShardedEventStore(
        root, config=_quarantine_config(damage_log_max_bytes=1)
    )
    assert sharded.degradation().patients_lost > 0
    log = sharded.damage_log_path
    assert os.path.isfile(log)
    assert os.path.isfile(log + ".1"), (
        "damage log did not rotate at the size cap"
    )
    # one record per file: every append past the first rotated first
    for path in (log, log + ".1"):
        with open(path, encoding="utf-8") as f:
            records = [json.loads(line) for line in f if line.strip()]
        assert len(records) == 1
        assert records[0]["reason"]


# -- crash matrix ------------------------------------------------------------


def _copy(src: str, tmp_path, name: str) -> str:
    dst = str(tmp_path / name)
    shutil.copytree(src, dst)
    return dst


def _enumerate(op, path) -> int:
    with count_crashpoints() as trace:
        op(path)
    assert trace.labels, "operation passed no crash points"
    assert all(
        label.split(":", 1)[0] in ("fsync", "replace", "install", "installed")
        for label in trace.labels
    )
    return len(trace.labels)


@pytest.fixture(scope="module")
def crash_template(tmp_path_factory):
    """A small pristine R=2 store plus an append batch, for the matrix."""
    population, __ = generate_store_fast(40, seed=5)
    pids = np.sort(population.patient_ids)
    base = subset_store(population, pids[:30])
    batch = subset_store(population, pids[30:])
    root = str(tmp_path_factory.mktemp("repcrash") / "base.shards")
    write_sharded_store(base, root, n_shards=2,
                        config=ShardConfig(replication=2))
    return root, base, batch


def test_replicated_append_crash_matrix(crash_template, tmp_path):
    template, __, batch = crash_template
    pre = _strict(template).materialize_store()
    probe = _copy(template, tmp_path, "probe")
    DeltaWriter(probe).append(batch)
    post = _strict(probe).materialize_store()
    assert not pre.content_equal(post)

    n = _enumerate(lambda p: DeltaWriter(p).append(batch),
                   _copy(template, tmp_path, "count"))
    committed = 0
    for step in range(1, n + 1):
        work = _copy(template, tmp_path, f"append-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            DeltaWriter(work).append(batch)
        assert fsck_store(work).ok, f"fsck dirty after crash at step {step}"
        state = _strict(work).materialize_store()
        if state.content_equal(post):
            committed += 1
        else:
            assert state.content_equal(pre), (
                f"torn state after crash at step {step}"
            )
            DeltaWriter(work).append(batch)
            assert _strict(work).materialize_store().content_equal(post)
            assert fsck_store(work).ok
    assert 1 <= committed < n


def test_replicate_store_crash_matrix(tmp_path):
    population, __ = generate_store_fast(40, seed=5)
    template = str(tmp_path / "flat.shards")
    write_sharded_store(population, template, n_shards=2)
    pre_token = _strict(template).content_token()

    n = _enumerate(lambda p: replicate_store(p, 2),
                   _copy(template, tmp_path, "count"))
    assert n >= 2  # per-replica installs plus the commit bracket
    for step in range(1, n + 1):
        work = _copy(template, tmp_path, f"replicate-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            replicate_store(work, 2)
        # whichever side of the commit the crash landed on, the store
        # opens and serves the identical bytes
        assert _strict(work).content_token() == pre_token
        # re-running converges to a clean fully replicated store
        assert replicate_store(work, 2)["replication"] == 2
        assert fsck_store(work).ok
        assert _strict(work).content_token() == pre_token


def test_scrub_repair_passes_crash_boundaries(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    clean_token = _strict(root).content_token()
    apply_shard_faults(root, _FAULT_KINDS["flip"](0))

    with count_crashpoints() as trace:
        Scrubber(_copy(root, tmp_path, "count")).run_once()
    assert any(label == "replace:scrub-journal" for label in trace.labels)
    repair_steps = [
        i + 1 for i, label in enumerate(trace.labels)
        if label != "replace:scrub-journal"
    ]
    assert repair_steps, "scrub repair passed no install boundaries"

    for step in repair_steps:
        work = _copy(root, tmp_path, f"scrub-{step}")
        with crash_at(step), pytest.raises(SimulatedCrashError):
            Scrubber(work).run_once()
        # a crashed scrub never loses data: reads stay exact...
        assert _strict(work).content_token() == clean_token
        # ...and a rerun finishes the heal
        Scrubber(work).run_once()
        assert fsck_store(work).ok
        assert _strict(work).content_token() == clean_token


# -- workbench / serving surfacing -------------------------------------------


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=15) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def test_stats_expose_replication_and_scrub(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    apply_shard_faults(root, _FAULT_KINDS["flip"](0))
    Scrubber(root).run_once()
    wb = Workbench.from_shards(root, shard_config=_quarantine_config())
    payload = wb.shard_stats()
    assert payload["replication"]["replication"] == 2
    assert payload["scrub"]["journal_present"]
    assert payload["scrub"]["completed_passes"] >= 1
    assert payload["scrub"]["last_pass_clean"] in (True, False)
    with WorkbenchServer(wb) as server:
        status, body = _get(server.url + "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["shards"]["replication"]["replication"] == 2
        assert stats["shards"]["scrub"]["journal_present"]
        status, __ = _get(server.url + "/readyz")
        assert status == 200  # healed store is ready


def test_readyz_503_when_zero_healthy_replicas(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    first = apply_shard_faults(root, _FAULT_KINDS["flip"](0))
    second = apply_shard_faults(root, _FAULT_KINDS["flip"](1))
    assert first[0]["shard"] == second[0]["shard"]
    wb = Workbench.from_shards(root, shard_config=_quarantine_config())
    assert wb.is_degraded
    health = wb.health()
    assert health["shards"]["replication"] == 2
    assert first[0]["shard"] in health["shards"][
        "zero_healthy_replica_shards"]
    with WorkbenchServer(wb) as server:
        status, body = _get(server.url + "/readyz")
        assert status == 503
        assert "zero healthy replicas" in body


# -- CLI ---------------------------------------------------------------------


class TestReplicationCli:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory) -> str:
        path = str(tmp_path_factory.mktemp("repcli") / "store.npz")
        assert main(["generate", "--patients", "120", "--seed", "17",
                     "--out", path]) == 0
        return path

    def test_build_with_replication(self, store_path, tmp_path, capsys):
        out = str(tmp_path / "built.shards")
        assert main(["shard", "build", store_path, "--out", out,
                     "--shards", "2", "--replication", "2"]) == 0
        assert "replication 2" in capsys.readouterr().out
        assert os.path.isdir(os.path.join(out, "shard-0000", "r1"))
        assert fsck_store(out).ok

    def test_replicate_then_scrub_roundtrip(self, store_path, tmp_path,
                                            capsys):
        out = str(tmp_path / "conv.shards")
        assert main(["shard", "build", store_path, "--out", out,
                     "--shards", "2"]) == 0
        capsys.readouterr()  # drop the build banner
        assert main(["shard", "replicate", out,
                     "--replication", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replication"] == 2

        apply_shard_faults(out, _FAULT_KINDS["flip"](0))
        assert not fsck_store(out).ok
        assert main(["shard", "scrub", out, "--once", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["repaired"]) >= 1
        assert payload["journal"]["completed_passes"] >= 1
        assert fsck_store(out).ok

    def test_scrub_single_tick_budget(self, store_path, tmp_path, capsys):
        out = str(tmp_path / "tick.shards")
        assert main(["shard", "build", store_path, "--out", out,
                     "--shards", "2", "--replication", "2"]) == 0
        assert main(["shard", "scrub", out,
                     "--budget", str(32 * 1024)]) == 0
        printed = capsys.readouterr().out
        assert "scrub" in printed.lower()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
