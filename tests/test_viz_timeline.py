"""Tests for axes/zoom, the timeline view and the scene model."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.cohort.alignment import compute_alignment
from repro.errors import RenderError
from repro.query.ast import Concept
from repro.viz.axes import TimeScale, ZoomSliders
from repro.viz.timeline_view import TimelineConfig, TimelineView


class TestZoomSliders:
    def test_bounds_enforced(self):
        with pytest.raises(RenderError):
            ZoomSliders(horizontal=1.2)
        with pytest.raises(RenderError):
            ZoomSliders(vertical=-0.1)

    def test_monotone_in_slider_position(self):
        low = ZoomSliders(horizontal=0.2, vertical=0.2)
        high = ZoomSliders(horizontal=0.8, vertical=0.8)
        assert low.px_per_day < high.px_per_day
        assert low.row_height < high.row_height

    def test_fit_covers_request(self):
        sliders = ZoomSliders.fit(n_days=730, n_rows=100,
                                  plot_width=1000, plot_height=700)
        assert sliders.px_per_day * 730 <= 1000 * 1.01
        assert sliders.row_height * 100 <= 700 * 1.01


class TestTimeScale:
    def test_round_trip(self):
        scale = TimeScale(first_day=15_000, px_per_day=2.0, x_offset=80)
        assert scale.x(15_000) == 80
        assert scale.day_at(scale.x(15_123)) == pytest.approx(15_123)


class TestTimelineView:
    @pytest.fixture(scope="class")
    def ids(self, small_engine):
        return small_engine.patients(Concept("T90"))[:30].tolist()

    def test_svg_is_valid_xml(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        ET.fromstring(scene.svg_text)

    def test_rows_match_requested_order(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        assert scene.rows == ids

    def test_marks_reference_only_requested_patients(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        assert {m.patient_id for m in scene.marks} <= set(ids)

    def test_mark_kinds_present(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        kinds = {m.kind for m in scene.marks}
        assert {"bar", "point", "band"} <= kinds

    def test_medication_colors_are_atc_groups(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        assert scene.medication_colors
        for group in scene.medication_colors:
            assert len(group) == 3  # ATC level 2, e.g. "C07"

    def test_aligned_mode_requires_alignment(self, small_store, ids):
        view = TimelineView(small_store, TimelineConfig(mode="aligned"))
        with pytest.raises(RenderError, match="needs an Alignment"):
            view.render(ids)

    def test_aligned_mode_anchors_at_zero(
        self, small_store, small_engine, ids
    ):
        alignment = compute_alignment(small_engine, Concept("T90"))
        view = TimelineView(small_store, TimelineConfig(mode="aligned"))
        scene = view.render(ids, alignment)
        # The anchor diagnosis of every drawn patient maps near x(0).
        zero_x = scene.scale.x(0)
        assert scene.plot_left <= zero_x <= scene.plot_right

    def test_sampling_beyond_max_rows(self, small_store):
        all_ids = small_store.patient_ids[:200].tolist()
        view = TimelineView(small_store, TimelineConfig(max_rows=50))
        scene = view.render(all_ids)
        assert scene.sampled
        assert len(scene.rows) == 50

    def test_empty_selection_rejected(self, small_store):
        with pytest.raises(RenderError, match="no patients"):
            TimelineView(small_store).render([])

    def test_contacts_toggle_reduces_marks(self, small_store, ids):
        with_contacts = TimelineView(small_store).render(ids)
        without = TimelineView(
            small_store, TimelineConfig(draw_contacts=False)
        ).render(ids)
        assert without.ink_marks < with_contacts.ink_marks

    def test_bad_mode_rejected(self):
        with pytest.raises(RenderError):
            TimelineConfig(mode="spiral")

    def test_detail_text_carries_code(self, small_store, ids):
        scene = TimelineView(small_store).render(ids)
        coded = [m for m in scene.marks if m.code and m.kind == "point"]
        assert coded
        assert all(m.code in m.detail for m in coded[:50])


class TestUserMappableRepresentations:
    """LifeLines Section II-D1: attributes mapped to different graphical
    representations by the user."""

    @pytest.fixture(scope="class")
    def ids(self, small_engine):
        return small_engine.patients(Concept("T90"))[:30].tolist()

    def test_mark_override_applied(self, small_store, ids):
        config = TimelineConfig(
            show_legend=False,
            mark_overrides={"blood_pressure": "TickGlyph"},
        )
        scene = TimelineView(small_store, config).render(ids)
        bp = {m.mark_class for m in scene.marks
              if m.category == "blood_pressure"}
        assert bp == {"TickGlyph"}

    def test_color_override_applied(self, small_store, ids):
        config = TimelineConfig(
            show_legend=False,
            color_overrides={"gp_contact": "#123456"},
        )
        scene = TimelineView(small_store, config).render(ids)
        gp = {m.color for m in scene.marks if m.category == "gp_contact"}
        assert gp == {"#123456"}

    def test_invalid_mark_override_rejected(self):
        with pytest.raises(RenderError, match="must be one of"):
            TimelineConfig(mark_overrides={"diagnosis": "BandMark"})

    def test_chapter_coloring_spreads_hues(self, small_store, ids):
        uniform = TimelineView(
            small_store, TimelineConfig(show_legend=False)
        ).render(ids)
        chapter = TimelineView(
            small_store,
            TimelineConfig(show_legend=False,
                           diagnosis_color_mode="chapter"),
        ).render(ids)
        hues_uniform = {m.color for m in uniform.marks
                        if m.category == "diagnosis"}
        hues_chapter = {m.color for m in chapter.marks
                        if m.category == "diagnosis"}
        assert len(hues_uniform) == 1
        assert len(hues_chapter) > 4

    def test_chapter_color_stable_per_chapter(self, small_store, ids):
        scene = TimelineView(
            small_store,
            TimelineConfig(show_legend=False,
                           diagnosis_color_mode="chapter"),
        ).render(ids)
        by_letter: dict[str, set[str]] = {}
        for m in scene.marks:
            if m.category == "diagnosis" and m.code:
                by_letter.setdefault(m.code[0], set()).add(m.color)
        assert by_letter
        for letter, colors in by_letter.items():
            assert len(colors) == 1, letter

    def test_bad_color_mode_rejected(self):
        with pytest.raises(RenderError):
            TimelineConfig(diagnosis_color_mode="rainbow")
