"""The pre-forked serving pool: fan-out, crash supervision, drain.

Real processes, real sockets: the pool must serve from every worker,
survive a SIGKILL'd worker by re-forking while the listener stays open,
answer deterministic ETags across workers (each holds its own store
mmap), and shut down cleanly without leaking children.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ServingConfig, ShardConfig
from repro.serving import ServingPool
from repro.shard import write_sharded_store
from repro.simulate.fast import generate_store_fast
from repro.workbench import Workbench


def _get(url: str, headers: dict | None = None,
         timeout: float = 15.0) -> tuple[int, dict, str]:
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


@pytest.fixture(scope="module")
def sharded_root(tmp_path_factory):
    store, __ = generate_store_fast(150, seed=5)
    root = str(tmp_path_factory.mktemp("poolshards") / "pool.shards")
    write_sharded_store(store, root, n_shards=4)
    return root


@pytest.fixture()
def pool(sharded_root):
    def factory():
        return Workbench.from_shards(
            sharded_root, shard_config=ShardConfig(n_workers=1)
        )

    running = ServingPool(factory, workers=2, config=ServingConfig())
    with running:
        yield running
    # after shutdown no child may survive
    for pid in running.worker_pids():
        assert not _pid_alive(pid)


class TestServingPool:
    def test_pool_boots_and_serves(self, pool):
        assert len(pool.worker_pids()) == 2
        status, headers, body = _get(pool.url + "/cohort?q=concept%20T90")
        assert status == 200
        assert "patients match" in body
        assert "ETag" in headers
        status, __h, body = _get(pool.url + "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_etags_deterministic_across_workers(self, pool):
        # more requests than workers: whichever worker answers, the
        # content-addressed tag is identical, so a client can revalidate
        # against any of them
        __, headers, __b = _get(pool.url + "/cohort?q=concept%20T90")
        etag = headers["ETag"]
        saw_304 = 0
        for __ in range(6):
            status, headers, __b = _get(
                pool.url + "/cohort?q=concept%20T90",
                headers={"If-None-Match": etag},
            )
            assert status == 304
            assert headers["ETag"] == etag
            saw_304 += 1
        assert saw_304 == 6

    def test_killed_worker_is_reforked_and_service_continues(self, pool):
        before = pool.worker_pids()
        victim = before[0]
        os.kill(victim, signal.SIGKILL)
        for __ in range(200):  # the supervisor polls every 50ms
            current = pool.worker_pids()
            if victim not in current and len(current) == 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("supervisor never re-forked the killed worker")
        assert pool.worker_deaths == 1
        # the replacement (and the survivor) keep serving correctly
        for __ in range(4):
            status, __h, body = _get(pool.url + "/cohort?q=concept%20T90")
            assert status == 200
            assert "patients match" in body

    def test_single_worker_pool_works(self, sharded_root):
        def factory():
            return Workbench.from_shards(
                sharded_root, shard_config=ShardConfig(n_workers=1)
            )

        with ServingPool(factory, workers=1) as single:
            assert len(single.worker_pids()) == 1
            status, __h, __b = _get(single.url + "/healthz")
            assert status == 200

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ServingPool(lambda: None, workers=0)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
