"""Golden-file and schema-shape tests for lintkit's SARIF output.

The SARIF document is deliberately deterministic (relative URIs, rules
sorted by id, no timestamps), so the golden file asserts byte-stable
output.  Regenerate after intentional changes with::

    python tests/test_lintkit_sarif.py --regen
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import all_rules, lint_paths
from tools.lintkit.sarif import sarif_json, to_sarif

GOLDEN = Path(__file__).parent / "golden" / "lintkit_sarif.json"

#: A fixed fixture tree exercising one violation per dataflow tier.
_FIXTURE = {
    "src/repro/shard/bad.py": (
        "import os\n"
        "def stash_blob(path, data):\n"
        "    with open(path + '.tmp', 'wb') as f:\n"
        "        f.write(data)\n"
        "    os.replace(path + '.tmp', path)\n"
    ),
    "src/repro/serving/handler.py": (
        "class Core:\n"
        "    def _cohort(self, request):\n"
        "        return self.workbench.select(request.q)\n"
    ),
}


def _rules():
    # LK003 inspects the real repro.errors taxonomy, not the fixture.
    return [r for r in all_rules() if r.id != "LK003"]


def _lint_fixture_tree(base: Path):
    for rel, source in _FIXTURE.items():
        path = base / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return lint_paths([base / "src"], rules=_rules(), root=base)


def test_sarif_output_matches_golden(tmp_path):
    violations = _lint_fixture_tree(tmp_path)
    assert violations, "fixture tree must produce findings"
    rendered = sarif_json(violations, _rules()) + "\n"
    assert GOLDEN.exists(), f"golden missing — run: python {__file__} --regen"
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_sarif_document_shape(tmp_path):
    violations = _lint_fixture_tree(tmp_path)
    doc = to_sarif(violations, _rules())

    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]

    driver = run["tool"]["driver"]
    assert driver["name"] == "lintkit"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert len(rule_ids) == len(set(rule_ids))
    assert all(r["shortDescription"]["text"] for r in driver["rules"])

    assert run["invocations"][0]["executionSuccessful"] is True
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        uri = location["artifactLocation"]["uri"]
        assert not uri.startswith("/"), "URIs must stay relative"
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["lintkitFingerprint/v1"]

    # The fixture hits each dataflow tier once.
    assert [r["ruleId"] for r in run["results"]] == [
        "LK203", "LK201", "LK202",
    ]


def test_sarif_timings_ride_in_property_bag(tmp_path):
    timings: dict = {}
    for rel, source in _FIXTURE.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    violations = lint_paths([tmp_path / "src"], rules=_rules(),
                            root=tmp_path, timings=timings)
    doc = to_sarif(violations, _rules(), timings=timings)
    recorded = doc["runs"][0]["invocations"][0]["properties"][
        "ruleTimingsSeconds"
    ]
    assert set(recorded) == {r.id for r in _rules()}
    assert all(t >= 0 for t in recorded.values())


def test_cli_sarif_over_clean_repo():
    result = subprocess.run(
        [sys.executable, "-m", "tools.lintkit", "--sarif"],
        cwd=ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    doc = json.loads(result.stdout)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"] == []


def _regen() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        violations = _lint_fixture_tree(Path(tmp))
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(sarif_json(violations, _rules()) + "\n",
                          encoding="utf-8")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":  # pragma: no cover
    if "--regen" in sys.argv:
        _regen()
    else:
        pytest.main([__file__, "-q"])
