"""Tests for the command-line interface (driven in-process)."""

from __future__ import annotations

import csv
import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def store_path(tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("cli") / "store.npz")
    assert main(["generate", "--patients", "1500", "--seed", "5",
                 "--out", path]) == 0
    return path


class TestGenerate:
    def test_store_written(self, store_path):
        assert os.path.exists(store_path)

    def test_full_fidelity_path(self, tmp_path, capsys):
        path = str(tmp_path / "full.npz")
        assert main(["generate", "--patients", "150", "--seed", "2",
                     "--full-fidelity", "--out", path]) == 0
        out = capsys.readouterr().out
        assert "integrated" in out
        assert os.path.exists(path)


class TestStats:
    def test_whole_store(self, store_path, capsys):
        assert main(["stats", store_path]) == 0
        out = capsys.readouterr().out
        assert "patients" in out and "1,500" in out

    def test_query_subset(self, store_path, capsys):
        assert main(["stats", store_path, "--query", "concept T90"]) == 0
        out = capsys.readouterr().out
        assert "patients" in out


class TestSelect:
    def test_writes_csv(self, store_path, tmp_path, capsys):
        out_path = str(tmp_path / "ids.csv")
        assert main(["select", store_path, "concept T90",
                     "--out", out_path]) == 0
        with open(out_path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["patient_id"]
        assert len(rows) > 1

    def test_bad_query_is_reported(self, store_path, tmp_path, capsys):
        code = main(["select", store_path, "concept", "--out",
                     str(tmp_path / "x.csv")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRenderCommands:
    def test_timeline(self, store_path, tmp_path):
        out_path = str(tmp_path / "tl.svg")
        assert main(["timeline", store_path, "concept T90",
                     "--rows", "20", "--out", out_path]) == 0
        assert open(out_path).read().startswith("<svg")

    def test_timeline_aligned(self, store_path, tmp_path):
        out_path = str(tmp_path / "tla.svg")
        assert main(["timeline", store_path, "concept T90",
                     "--rows", "20", "--align", "t90",
                     "--out", out_path]) == 0
        assert os.path.exists(out_path)

    def test_overview(self, store_path, tmp_path):
        out_path = str(tmp_path / "ov.svg")
        assert main(["overview", store_path, "--out", out_path]) == 0
        assert open(out_path).read().startswith("<svg")

    def test_export_web(self, store_path, tmp_path, capsys):
        out_dir = str(tmp_path / "web")
        assert main(["export-web", store_path, "concept T90",
                     "--limit", "4", "--simplified",
                     "--out-dir", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "index.html"))


class TestRecognition:
    def test_prints_marginals(self, store_path, capsys):
        assert main(["recognition", store_path, "concept T90"]) == 0
        out = capsys.readouterr().out
        assert "recognized" in out
        assert "all_wrong" in out


class TestCompareAndCohortPage:
    def test_compare_prints_table(self, store_path, capsys):
        assert main(["compare", store_path, "concept T90",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "over-represented" in out
        assert "RR=" in out

    def test_cohort_page_written(self, store_path, tmp_path):
        out_path = str(tmp_path / "cohort.html")
        assert main(["cohort-page", store_path, "concept T90",
                     "--rows", "15", "--out", out_path]) == 0
        body = open(out_path, encoding="utf-8").read()
        assert "<svg" in body and "wheel" in body
