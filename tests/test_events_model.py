"""Tests for events, histories and cohorts."""

from __future__ import annotations

import pytest

from repro.errors import EventModelError
from repro.events.model import Cohort, History, IntervalEvent, PointEvent
from repro.temporal.timeline import Interval


def make_history(pid: int = 1) -> History:
    return History(
        patient_id=pid,
        birth_day=0,
        sex="F",
        points=[
            PointEvent(day=300, category="diagnosis", code="K86",
                       system="ICPC-2"),
            PointEvent(day=100, category="diagnosis", code="T90",
                       system="ICPC-2"),
            PointEvent(day=200, category="blood_pressure", value=150.0,
                       value2=95.0),
        ],
        intervals=[
            IntervalEvent(Interval(250, 260), "hospital_stay"),
            IntervalEvent(Interval(50, 80), "prescription", code="A10BA02",
                          system="ATC"),
        ],
    )


class TestHistory:
    def test_events_sorted_on_construction(self):
        history = make_history()
        assert [p.day for p in history.points] == [100, 200, 300]
        assert [iv.start for iv in history.intervals] == [50, 250]

    def test_len_counts_both_kinds(self):
        assert len(make_history()) == 5

    def test_span_covers_everything(self):
        assert make_history().span() == Interval(50, 301)

    def test_span_of_empty_history(self):
        assert History(patient_id=9, birth_day=0).span() is None

    def test_codes_in_time_order_across_kinds(self):
        assert make_history().codes() == ["A10BA02", "T90", "K86"]

    def test_codes_filtered_by_system(self):
        assert make_history().codes("ICPC-2") == ["T90", "K86"]

    def test_first_code_day_considers_intervals(self):
        history = make_history()
        assert history.first_code_day({"T90"}) == 100
        assert history.first_code_day({"A10BA02"}) == 50
        assert history.first_code_day({"ZZZ"}) is None

    def test_first_point(self):
        history = make_history()
        found = history.first_point(lambda e: e.category == "blood_pressure")
        assert found is not None and found.day == 200

    def test_filtered_keeps_structure(self):
        history = make_history()
        filtered = history.filtered(
            point_predicate=lambda e: e.code == "T90"
        )
        assert [p.code for p in filtered.points] == ["T90"]
        assert len(filtered.intervals) == 2  # untouched

    def test_shifted_moves_everything(self):
        shifted = make_history().shifted(10)
        assert shifted.span() == Interval(60, 311)
        assert shifted.birth_day == 10

    def test_bad_sex_rejected(self):
        with pytest.raises(EventModelError):
            History(patient_id=1, birth_day=0, sex="X")


class TestCohort:
    def test_duplicate_patient_rejected(self):
        with pytest.raises(EventModelError, match="duplicate"):
            Cohort([make_history(1), make_history(1)])

    def test_get_and_contains(self):
        cohort = Cohort([make_history(1), make_history(2)])
        assert 1 in cohort
        assert cohort.get(2).patient_id == 2
        with pytest.raises(EventModelError):
            cohort.get(99)

    def test_subset_preserves_requested_order(self):
        cohort = Cohort([make_history(i) for i in (1, 2, 3)])
        sub = cohort.subset([3, 1])
        assert sub.patient_ids == [3, 1]

    def test_sorted_by(self):
        cohort = Cohort([make_history(3), make_history(1), make_history(2)])
        assert cohort.sorted_by(
            lambda h: h.patient_id
        ).patient_ids == [1, 2, 3]

    def test_total_events(self):
        cohort = Cohort([make_history(1), make_history(2)])
        assert cohort.total_events() == 10

    def test_iteration_order_is_cohort_order(self):
        cohort = Cohort([make_history(2), make_history(1)])
        assert [h.patient_id for h in cohort] == [2, 1]
