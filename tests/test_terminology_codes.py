"""Unit tests for the generic code-system machinery."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TerminologyError, UnknownCodeError
from repro.terminology.codes import Code, CodeSelection, CodeSystem


def make_system() -> CodeSystem:
    return CodeSystem(
        "demo",
        [
            Code("A", "chapter A", kind="chapter"),
            Code("A01", "a-one", parent="A"),
            Code("A02", "a-two", parent="A"),
            Code("A02x", "a-two-x", parent="A02"),
            Code("B", "chapter B", kind="chapter"),
            Code("B01", "b-one", parent="B"),
        ],
    )


class TestConstruction:
    def test_ids_are_dense_and_stable(self):
        system = make_system()
        assert [system.id_of(c.code) for c in system] == list(range(len(system)))

    def test_duplicate_code_rejected(self):
        system = make_system()
        with pytest.raises(TerminologyError, match="duplicate"):
            system.add(Code("A01", "again", parent="A"))

    def test_parent_must_exist(self):
        system = make_system()
        with pytest.raises(TerminologyError, match="parent"):
            system.add(Code("C01", "orphan", parent="C"))

    def test_empty_code_rejected(self):
        with pytest.raises(TerminologyError):
            Code("", "nothing")


class TestLookup:
    def test_get_and_contains(self):
        system = make_system()
        assert "A02x" in system
        assert system.get("A02x").display == "a-two-x"

    def test_unknown_code_raises_with_context(self):
        system = make_system()
        with pytest.raises(UnknownCodeError) as exc:
            system.get("ZZ")
        assert exc.value.system == "demo"
        assert exc.value.code == "ZZ"

    def test_code_of_inverts_id_of(self):
        system = make_system()
        for code in system:
            assert system.code_of(system.id_of(code.code)) is code

    def test_code_of_out_of_range(self):
        with pytest.raises(UnknownCodeError):
            make_system().code_of(999)


class TestHierarchy:
    def test_roots(self):
        assert [c.code for c in make_system().roots()] == ["A", "B"]

    def test_children_in_insertion_order(self):
        system = make_system()
        assert [c.code for c in system.children_of("A")] == ["A01", "A02"]

    def test_ancestors_nearest_first(self):
        system = make_system()
        assert [c.code for c in system.ancestors("A02x")] == ["A02", "A"]

    def test_descendants_depth_first(self):
        system = make_system()
        assert [c.code for c in system.descendants("A")] == ["A01", "A02", "A02x"]

    def test_is_a_reflexive_and_transitive(self):
        system = make_system()
        assert system.is_a("A02x", "A02x")
        assert system.is_a("A02x", "A")
        assert not system.is_a("A02x", "B")

    def test_depth(self):
        system = make_system()
        assert system.depth("A") == 0
        assert system.depth("A02x") == 2

    def test_parent_of_root_is_none(self):
        assert make_system().parent_of("A") is None


class TestRegexSelection:
    def test_fullmatch_semantics(self):
        system = make_system()
        # "A02" must not match A02x via prefix.
        assert [c.code for c in system.match("A02")] == ["A02"]

    def test_branch_wildcard(self):
        system = make_system()
        assert {c.code for c in system.match("A.*")} == {"A", "A01", "A02", "A02x"}

    def test_disjunction(self):
        system = make_system()
        assert {c.code for c in system.match("A01|B01")} == {"A01", "B01"}

    def test_bad_regex_raises(self):
        with pytest.raises(TerminologyError, match="bad regular expression"):
            make_system().match("[")

    def test_match_ids_agree_with_match(self):
        system = make_system()
        codes = {c.code for c in system.match("A.*")}
        ids = {system.code_of(i).code for i in system.match_ids("A.*")}
        assert codes == ids

    def test_subtree_ids(self):
        system = make_system()
        subtree = {system.code_of(i).code for i in system.subtree_ids("A02")}
        assert subtree == {"A02", "A02x"}


class TestCodeSelection:
    def test_ids_cached_and_contains(self):
        system = make_system()
        selection = CodeSelection(system, "A0.*", label="a-things")
        assert "A01" in selection
        assert "B01" not in selection
        assert {c.code for c in selection.codes()} == {"A01", "A02", "A02x"}


@given(st.text(alphabet="AB012x", min_size=1, max_size=4))
def test_match_never_crashes_on_literal_codes(code_text):
    """Selecting by any escaped literal either hits exactly or misses."""
    import re

    system = make_system()
    hits = system.match(re.escape(code_text))
    assert all(c.code == code_text for c in hits)
