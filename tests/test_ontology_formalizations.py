"""Tests for the paper's two OWL formalizations."""

from __future__ import annotations

import pytest

from repro.errors import OntologyError
from repro.ontology.integration_ontology import (
    CARE_LEVELS,
    SOURCE_KIND_CLASSES,
    build_integration_ontology,
    care_level_of,
    contact_class_for_source_kind,
    integration_reasoner,
    is_interval_contact,
)
from repro.ontology.presentation_ontology import (
    FACETS,
    build_presentation_ontology,
    presentation_reasoner,
    visual_spec_for,
)
from repro.ontology.reasoner import Reasoner


class TestIntegrationOntology:
    def test_consistent(self):
        integration_reasoner().check_consistency()

    def test_every_source_kind_has_contact_class(self):
        reasoner = integration_reasoner()
        for kind, cls in SOURCE_KIND_CLASSES.items():
            assert cls in reasoner.ontology.classes
            assert contact_class_for_source_kind(kind) == cls

    def test_care_levels_partition_contacts(self):
        for cls in SOURCE_KIND_CLASSES.values():
            levels = [
                level for level in CARE_LEVELS
                if integration_reasoner().is_subclass_of(
                    cls, level + "Contact"
                )
            ]
            assert len(levels) == 1, f"{cls} in {levels}"

    def test_hospital_is_specialist_care(self):
        assert care_level_of("InpatientStay") == "SpecialistCare"
        assert care_level_of("GPContact") == "PrimaryCare"
        assert care_level_of("NursingHomeStay") == "MunicipalCare"

    def test_emergency_is_gp_subclass(self):
        reasoner = integration_reasoner()
        assert reasoner.is_subclass_of("EmergencyPrimaryCareContact", "GPContact")

    def test_interval_vs_point_contacts(self):
        assert is_interval_contact("InpatientStay")
        assert is_interval_contact("HomeCareService")
        assert not is_interval_contact("OutpatientVisit")
        assert not is_interval_contact("GPContact")

    def test_source_kind_literal_classifies_record(self):
        ont = build_integration_ontology()
        record = ont.add_individual("rec")
        record.set_value("sourceKind", "hospital_inpatient")
        reasoner = Reasoner(ont)
        types = reasoner.instance_types("rec")
        assert "InpatientStay" in types
        assert "SpecialistCareContact" in types
        assert "IntervalContact" in types

    def test_diabetes_contact_defined_class(self):
        """Membership in DiabetesContact is inferred, never asserted."""
        ont = build_integration_ontology()
        record = ont.add_individual("rec")
        record.set_value("sourceKind", "gp_claim")
        diagnosis = ont.add_individual("dx")
        diagnosis.assert_type(ont.classes["DiagnosisAssertion"])
        diagnosis.set_value("codeChapter", "icpc2:T90")
        record.relate("hasDiagnosis", "dx")
        reasoner = Reasoner(ont)
        assert "DiabetesContact" in reasoner.instance_types("rec")

    def test_icd_coded_diabetes_also_classifies(self):
        """The same defined class spans both terminologies (integration)."""
        ont = build_integration_ontology()
        record = ont.add_individual("rec")
        record.set_value("sourceKind", "hospital_inpatient")
        diagnosis = ont.add_individual("dx")
        diagnosis.set_value("codeChapter", "icd10:E11")
        record.relate("hasDiagnosis", "dx")
        reasoner = Reasoner(ont)
        assert "DiabetesContact" in reasoner.instance_types("rec")


class TestPresentationOntology:
    def test_consistent(self):
        presentation_reasoner().check_consistency()

    def test_point_and_interval_marks_disjoint(self):
        reasoner = presentation_reasoner()
        assert reasoner.is_subclass_of("RectangleGlyph", "PointMark")
        assert reasoner.is_subclass_of("BandMark", "IntervalMark")
        assert "PointMark" not in reasoner.subsumers("BandMark")

    def test_blood_pressure_is_arrow_in_observations(self):
        spec = visual_spec_for("blood_pressure")
        assert spec.mark == "ArrowGlyph"
        assert spec.facet == "Observations"
        assert not spec.is_interval

    def test_prescription_is_band_in_medications(self):
        spec = visual_spec_for("prescription")
        assert spec.mark == "BandMark"
        assert spec.facet == "Medications"
        assert spec.is_interval

    def test_every_category_resolves_uniquely(self):
        ont = build_presentation_ontology()
        categories = sorted(
            name[len("Entry_"):]
            for name in ont.classes
            if name.startswith("Entry_")
        )
        assert len(categories) >= 10
        for category in categories:
            spec = visual_spec_for(category)
            assert spec.facet in FACETS
            assert spec.mark

    def test_unknown_category_raises(self):
        with pytest.raises(OntologyError, match="no presentation axioms"):
            visual_spec_for("not_a_category")

    def test_identity_channels_are_preattentive(self):
        reasoner = presentation_reasoner()
        for category in ("diagnosis", "prescription", "blood_pressure"):
            spec = visual_spec_for(category)
            channel_class = f"Channel_{spec.identity_channel}"
            assert reasoner.is_subclass_of(channel_class, "PreattentiveChannel")
