"""Tests for store persistence and analysis sessions."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.errors import QueryError, EventModelError
from repro.io import load_store, save_store
from repro.session import AnalysisSession
from repro.workbench import Workbench


class TestStorePersistence:
    def test_roundtrip_preserves_everything(self, small_store, tmp_path):
        path = str(tmp_path / "store.npz")
        save_store(small_store, path)
        loaded = load_store(path)
        assert loaded.n_patients == small_store.n_patients
        assert loaded.n_events == small_store.n_events
        assert (loaded.patient == small_store.patient).all()
        assert (loaded.day == small_store.day).all()
        assert (loaded.code == small_store.code).all()
        assert loaded.categories == small_store.categories
        assert loaded.sources == small_store.sources

    def test_roundtrip_preserves_query_results(self, small_store, tmp_path):
        from repro.query.engine import QueryEngine
        from repro.query.ast import Concept, HasEvent

        path = str(tmp_path / "store.npz")
        save_store(small_store, path)
        loaded = load_store(path)
        a = QueryEngine(small_store).patients(HasEvent(Concept("T90")))
        b = QueryEngine(loaded).patients(HasEvent(Concept("T90")))
        assert (a == b).all()

    def test_materialization_identical(self, small_store, tmp_path):
        path = str(tmp_path / "store.npz")
        save_store(small_store, path)
        loaded = load_store(path)
        pid = int(small_store.patient_ids[5])
        assert loaded.materialize(pid) == small_store.materialize(pid)

    def test_fingerprint_mismatch_rejected(self, small_store, tmp_path,
                                           monkeypatch):
        path = str(tmp_path / "store.npz")
        save_store(small_store, path)
        import repro.io as io_module

        def tiny_systems():
            from repro.terminology.codes import Code, CodeSystem

            return {
                "ICPC-2": CodeSystem("ICPC-2", [Code("A", "only one")]),
                "ICD-10": small_store.systems["ICD-10"],
                "ATC": small_store.systems["ATC"],
            }

        monkeypatch.setattr(io_module, "default_systems", tiny_systems)
        with pytest.raises(EventModelError, match="mis-decode"):
            load_store(path)


@pytest.fixture()
def session(workbench: Workbench) -> AnalysisSession:
    return AnalysisSession(workbench)


class TestAnalysisSession:
    def test_initial_state_is_everyone(self, session, workbench):
        assert session.current.n_selected == workbench.store.n_patients

    def test_select_replaces(self, session):
        step = session.select("concept T90", "diabetes")
        assert step.n_selected < session.history()[0].n_selected
        assert session.selected_ids == step.patient_ids

    def test_refine_intersects(self, session):
        session.select("concept T90")
        before = session.current.n_selected
        session.refine("sex F")
        assert session.current.n_selected <= before
        # refined set is a subset of the previous one
        assert set(session.selected_ids) <= set(
            session.history()[-2].patient_ids
        )

    def test_extend_unions(self, session):
        session.select("concept T90")
        before = set(session.selected_ids)
        session.extend("concept K86")
        assert set(session.selected_ids) >= before

    def test_undo_redo(self, session):
        session.select("concept T90")
        n_selected = session.current.n_selected
        session.undo()
        assert session.current.label == "(all patients)"
        session.redo()
        assert session.current.n_selected == n_selected

    def test_undo_at_start_raises(self, session):
        with pytest.raises(QueryError, match="undo"):
            session.undo()

    def test_redo_without_undo_raises(self, session):
        session.select("concept T90")
        with pytest.raises(QueryError, match="redo"):
            session.redo()

    def test_new_step_truncates_redo_tail(self, session):
        session.select("concept T90")
        session.select("concept K86")
        session.undo()
        session.select("sex F")
        with pytest.raises(QueryError):
            session.redo()
        labels = [s.label for s in session.history()]
        assert "select: concept K86" not in labels

    def test_extract_ids_csv(self, session, tmp_path):
        session.select("concept T90")
        path = tmp_path / "cohort.csv"
        count = session.extract_ids(str(path))
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["patient_id"]
        assert len(rows) - 1 == count == session.current.n_selected

    def test_extract_store_reloads(self, session, tmp_path, workbench):
        session.select("concept T90")
        path = str(tmp_path / "cohort.npz")
        count = session.extract_store(path)
        sub = load_store(path)
        assert sub.n_patients == count
        assert set(sub.patient_ids.tolist()) == set(session.selected_ids)

    def test_describe_marks_cursor(self, session):
        session.select("concept T90")
        session.undo()
        text = session.describe()
        assert text.splitlines()[0].startswith("->")

    def test_history_hides_future_after_undo(self, session):
        session.select("concept T90")
        session.undo()
        assert len(session.history()) == 1

    def test_ast_queries_accepted(self, session):
        from repro.query.ast import Concept

        step = session.select(Concept("T90"))
        assert step.n_selected > 0
        step2 = session.refine(Concept("K86"))
        assert step2.n_selected <= step.n_selected


class TestEventCsv:
    def test_roundtrip_full_precision(self, small_store, tmp_path):
        from repro.io import export_events_csv, import_events_csv

        ids = small_store.patient_ids[:40].tolist()
        path = str(tmp_path / "events.csv")
        n = export_events_csv(small_store, path, ids)
        assert n == int(small_store.mask_patients(ids).sum())
        demographics = {
            int(p): (small_store.birth_day_of(int(p)),
                     small_store.sex_of(int(p)))
            for p in ids
        }
        back = import_events_csv(path, demographics)
        for pid in ids:
            assert back.materialize(pid) == small_store.materialize(pid)

    def test_header_row(self, small_store, tmp_path):
        from repro.io import export_events_csv

        path = str(tmp_path / "events.csv")
        export_events_csv(small_store, path, small_store.patient_ids[:2])
        header = open(path, encoding="utf-8").readline().strip()
        assert header.startswith("patient_id,day,end_day,category")

    def test_point_events_have_empty_end(self, small_store, tmp_path):
        import csv

        from repro.io import export_events_csv

        path = str(tmp_path / "events.csv")
        export_events_csv(small_store, path, small_store.patient_ids[:5])
        with open(path, newline="", encoding="utf-8") as f:
            rows = list(csv.DictReader(f))
        points = [r for r in rows if r["category"] == "gp_contact"]
        assert points and all(r["end_day"] == "" for r in points)
        stays = [r for r in rows if r["category"] == "hospital_stay"]
        for r in stays:
            assert int(r["end_day"]) > int(r["day"])


class TestConfig:
    def test_rng_default_seed_reproducible(self):
        from repro.config import rng

        assert rng(None).integers(0, 1_000_000) == \
            rng(None).integers(0, 1_000_000)

    def test_spawn_seeds_independent_of_count(self):
        from repro.config import spawn_seeds

        first = spawn_seeds(42, 10)
        longer = spawn_seeds(42, 20)
        assert first == longer[:10]
        assert len(set(longer)) == 20


class TestDurabilityCrashpoints:
    """The io-tier installs are enumerated by crashpoint() (LK202)."""

    def test_save_store_enumerates_install_boundaries(self, small_store,
                                                      tmp_path):
        from repro.resilience.faults import count_crashpoints

        path = str(tmp_path / "store.npz")
        with count_crashpoints() as trace:
            save_store(small_store, path)
        assert trace.labels == ["fsync:store.npz", "replace:store.npz"]

    def test_crash_mid_save_never_tears_an_existing_store(self, small_store,
                                                          tmp_path):
        from repro.errors import SimulatedCrashError
        from repro.resilience.faults import count_crashpoints, crash_at

        path = str(tmp_path / "store.npz")
        save_store(small_store, path)
        with count_crashpoints() as trace:
            save_store(small_store, path)
        assert trace.labels
        for step in range(1, len(trace.labels) + 1):
            with crash_at(step):
                with pytest.raises(SimulatedCrashError):
                    save_store(small_store, path)
            # Whatever boundary the crash hit, the name either still
            # holds the previous complete archive or the new one — and
            # the staging temp file never leaks.
            assert load_store(path).content_equal(small_store)
            assert sorted(p.name for p in tmp_path.iterdir()) == \
                ["store.npz"]

    def test_append_jsonl_fsync_is_a_crashpoint(self, tmp_path):
        from repro.io import append_jsonl
        from repro.resilience.faults import count_crashpoints

        path = str(tmp_path / "dead.jsonl")
        with count_crashpoints() as trace:
            append_jsonl(path, [{"a": 1}], fsync=True)
        assert trace.labels == ["fsync:dead.jsonl"]
        with count_crashpoints() as trace:
            append_jsonl(path, [{"a": 2}])  # no durability claim
        assert trace.labels == []

    def test_rotate_jsonl_is_a_crashpoint_boundary(self, tmp_path):
        from repro.io import append_jsonl, read_jsonl, rotate_jsonl
        from repro.resilience.faults import count_crashpoints

        path = str(tmp_path / "report.jsonl")
        append_jsonl(path, [{"n": i} for i in range(50)])
        with count_crashpoints() as trace:
            assert rotate_jsonl(path, 10)
        assert trace.labels == ["replace:report.jsonl.1"]
        assert read_jsonl(path) == []
        assert len(read_jsonl(path + ".1")) == 50
