"""Socket-level overload behaviour: shedding, deadlines, degradation.

The in-process suite (``test_serving_core``) proves the middleware logic
against synthetic requests; this one proves the same contracts survive a
real HTTP round-trip — a saturated server answers ``429 Retry-After``
promptly instead of hanging the client, and a request deadline expiring
*inside* sharded scatter-gather execution surfaces as a 503.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ServingConfig, ShardConfig
from repro.errors import DeadlineExceededError
from repro.query.parser import parse_query
from repro.resilience.retry import Deadline
from repro.shard import ParallelExecutor, ShardedEventStore, \
    write_sharded_store
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench


def _get(url: str, timeout: float = 15.0) -> tuple[int, dict, str]:
    """(status, headers, body) — HTTP errors become return values."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


@pytest.fixture(scope="module")
def wb():
    store, __ = generate_store_fast(120, seed=3)
    return Workbench(store)


class TestSaturationOverSockets:
    def test_saturated_server_sheds_429_with_retry_after(self, wb):
        config = ServingConfig(max_inflight=1, debug_routes=True,
                               retry_after_s=2.0)
        with WorkbenchServer(wb, config=config) as server:
            hold = threading.Thread(
                target=_get, args=(server.url + "/debug/sleep?s=1.5",),
                daemon=True,
            )
            hold.start()
            # /readyz bypasses the gauge: poll it until the sleeper is
            # admitted (inflight 1/1 means saturated => 503).
            for __ in range(200):
                status, __h, __b = _get(server.url + "/readyz")
                if status == 503:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("sleeper was never admitted")
            started = time.monotonic()
            status, headers, body = _get(server.url + "/cohort?q=sex%20F")
            elapsed = time.monotonic() - started
            assert status == 429
            assert headers["Retry-After"] == "2"
            assert json.loads(body)["error"] == "overloaded"
            # the shed is immediate — the client never queued behind
            # the in-flight sleeper
            assert elapsed < 1.0
            hold.join(timeout=10)
            # slot released: the same request is admitted and served
            status, __h, __b = _get(server.url + "/cohort?q=sex%20F")
            assert status == 200


class TestDeadlinePropagation:
    @pytest.fixture(scope="class")
    def sharded_root(self, tmp_path_factory):
        store, __ = generate_store_fast(200, seed=9)
        root = str(tmp_path_factory.mktemp("dlshards") / "dl.shards")
        write_sharded_store(store, root, n_shards=4)
        return root

    def test_expired_deadline_aborts_scatter_gather(self, sharded_root):
        sharded = ShardedEventStore(
            sharded_root, config=ShardConfig(n_workers=1)
        )
        expr = parse_query("concept T90 or atleast 2 category gp_contact")
        with ParallelExecutor(config=sharded.config) as executor:
            deadline = Deadline(0.0)
            with pytest.raises(DeadlineExceededError,
                               match="request deadline"):
                executor.patients(sharded, expr, deadline=deadline)
            # a live deadline still yields the full answer
            assert len(executor.patients(
                sharded, expr, deadline=Deadline(60.0)
            )) > 0

    def test_deadline_expiry_over_shards_is_503(self, sharded_root):
        wb = Workbench.from_shards(
            sharded_root, shard_config=ShardConfig(n_workers=1)
        )
        with WorkbenchServer(wb, request_deadline_s=0.0) as server:
            status, headers, body = _get(
                server.url + "/cohort?q=concept%20T90"
            )
            assert status == 503
            assert "deadline" in body
            assert "Retry-After" in headers
            # the probe routes never carry a deadline
            status, __h, __b = _get(server.url + "/healthz")
            assert status == 200

    def test_generous_deadline_serves_sharded_queries(self, sharded_root):
        wb = Workbench.from_shards(
            sharded_root, shard_config=ShardConfig(n_workers=1)
        )
        with WorkbenchServer(wb, request_deadline_s=60.0) as server:
            status, __h, body = _get(server.url + "/cohort?q=concept%20T90")
            assert status == 200
            assert "patients match" in body


class TestConditionalRequestsOverSockets:
    def test_if_none_match_roundtrip(self, wb):
        with WorkbenchServer(wb) as server:
            status, headers, __ = _get(server.url + "/cohort?q=sex%20F")
            assert status == 200
            etag = headers["ETag"]
            request = urllib.request.Request(
                server.url + "/cohort?q=sex%20F",
                headers={"If-None-Match": etag},
            )
            try:
                with urllib.request.urlopen(request, timeout=15) as resp:
                    status = resp.status
                    etag_back = resp.headers.get("ETag")
            except urllib.error.HTTPError as exc:  # urllib treats 304 oddly
                status, etag_back = exc.code, exc.headers.get("ETag")
            assert status == 304
            assert etag_back == etag
            status, __h, body = _get(server.url + "/stats")
            counters = json.loads(body)["http_cache"]
            assert counters["etag_304"] == 1
            assert counters["queries_executed"] == 1


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
