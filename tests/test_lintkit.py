"""The repo-wide AST lint framework (``tools/lintkit``).

Exercises the framework machinery (registry, suppressions, reporters,
syntax-error handling) and each rule against crafted snippets, then the
real gate: the whole of ``src/repro`` and ``tools`` must lint clean —
exactly what CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import all_rules, format_text, lint_paths, to_json


def _lint_snippet(tmp_path, source: str, rel: str = "src/repro/x.py",
                  select: set | None = None):
    """Lint one snippet placed at a repo-relative-looking path.

    ``select`` narrows to specific rule ids (used by subsumption tests
    that port a legacy snippet onto its successor rule).
    """
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    # Exclude the project-wide taxonomy rule: it inspects repro.errors,
    # not the snippet.
    rules = [r for r in all_rules() if r.id != "LK003"]
    if select is not None:
        rules = [r for r in rules if r.id in select]
    return lint_paths([path], rules=rules, root=tmp_path)


def _rules_hit(violations) -> set:
    return {v.rule for v in violations}


# -- rules ------------------------------------------------------------------


def test_lk001_bare_except(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "try:\n    pass\nexcept:\n    pass\n"
    ))
    assert _rules_hit(violations) == {"LK001"}
    assert violations[0].line == 3


def test_lk002_broad_except_without_reraise(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "try:\n    pass\nexcept Exception:\n    x = 1\n"
    ))
    assert _rules_hit(violations) == {"LK002"}


def test_lk002_reraise_is_fine(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "try:\n    pass\nexcept Exception:\n    raise\n"
    ))


def test_lk003_taxonomy_roots_run_clean_on_repo():
    rules = [r for r in all_rules() if r.id == "LK003"]
    assert not lint_paths([], rules=rules, root=ROOT)


def test_lk101_unseeded_rng(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "import numpy as np\nimport random\n"
        "a = np.random.default_rng()\n"
        "b = random.Random()\n"
        "c = np.random.rand(3)\n"
    ))
    assert _rules_hit(violations) == {"LK101"}
    assert len(violations) == 3


def test_lk101_seeded_rng_passes(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "import numpy as np\nimport random\n"
        "a = np.random.default_rng(42)\n"
        "b = random.Random(7)\n"
    ))


def test_lk101_only_applies_to_src(tmp_path):
    source = "import numpy as np\na = np.random.default_rng()\n"
    assert _lint_snippet(tmp_path, source, rel="tools/x.py") == []


# LK201 subsumed the syntactic LK102: the legacy snippets must keep
# failing/passing identically under the dataflow rule.  Passing snippets
# that contain a bare ``os.replace`` now also owe a crashpoint under the
# *new* LK202 contract, so those select the successor rule explicitly.


def test_lk201_in_place_store_write(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "def save_thing(path, data):\n"
        "    with open(path, 'w') as f:\n"
        "        f.write(data)\n"
    ), rel="src/repro/io.py")
    assert _rules_hit(violations) == {"LK201"}


def test_lk201_atomic_replace_passes(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "import os, tempfile\n"
        "def save_thing(path, data):\n"
        "    fd, tmp = tempfile.mkstemp()\n"
        "    with open(tmp, 'w') as f:\n"
        "        f.write(data)\n"
        "    os.replace(tmp, path)\n"
    ), rel="src/repro/io.py", select={"LK201"})


def test_lk201_ignores_non_writer_io_functions(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "def export_csv(path):\n"
        "    with open(path, 'w') as f:\n"
        "        f.write('x')\n"
    ), rel="src/repro/io.py")


def test_lk103_np_load_needs_explicit_mmap(tmp_path):
    rel = "src/repro/shard/x.py"
    violations = _lint_snippet(tmp_path, (
        "import numpy as np\na = np.load('f.npy')\n"
    ), rel=rel)
    assert _rules_hit(violations) == {"LK103"}
    assert not _lint_snippet(tmp_path, (
        "import numpy as np\n"
        "a = np.load('f.npy', mmap_mode='r')\n"
        "b = np.load('g.npy', mmap_mode=None)\n"
    ), rel=rel)


def test_lk103_scoped_to_shard_code(tmp_path):
    source = "import numpy as np\na = np.load('f.npy')\n"
    assert not _lint_snippet(tmp_path, source, rel="src/repro/io.py")


_UNDEADLINED_HANDLER = (
    "class Core:\n"
    "    def _cohort(self, request):\n"
    "        return self.workbench.select(request.param('q'))\n"
)


# LK203 subsumed the syntactic LK104; same legacy snippets, same
# verdicts.


def test_lk203_undeadlined_handler_flagged(tmp_path):
    violations = _lint_snippet(
        tmp_path, _UNDEADLINED_HANDLER, rel="src/repro/serving/core.py"
    )
    assert _rules_hit(violations) == {"LK203"}
    assert violations[0].line == 3
    assert "select" in violations[0].message


def test_lk203_deadline_parameter_passes(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "class Core:\n"
        "    def _cohort(self, request, deadline):\n"
        "        return self.workbench.select(request.param('q'),\n"
        "                                     deadline=deadline)\n"
    ), rel="src/repro/serving/core.py")


def test_lk203_deadline_keyword_alone_passes(tmp_path):
    # Threading a deadline through without naming the parameter
    # 'deadline' (e.g. reading it off the request) still counts.
    assert not _lint_snippet(tmp_path, (
        "class Core:\n"
        "    def _cohort(self, request):\n"
        "        return self.workbench.select(\n"
        "            request.param('q'), deadline=request.budget)\n"
    ), rel="src/repro/serving/core.py")


def test_lk203_scoped_to_serving_code(tmp_path):
    # The same code outside the serving tier (e.g. a batch tool) is
    # allowed to run unbounded queries.
    assert not _lint_snippet(tmp_path, _UNDEADLINED_HANDLER,
                             rel="src/repro/workbench.py")
    assert not _lint_snippet(tmp_path, _UNDEADLINED_HANDLER,
                             rel="tools/x.py")


def test_lk203_applies_to_webapp_shim(tmp_path):
    violations = _lint_snippet(tmp_path, _UNDEADLINED_HANDLER,
                               rel="src/repro/webapp.py")
    assert _rules_hit(violations) == {"LK203"}


def test_lk203_ignores_functions_without_query_calls(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "class Core:\n"
        "    def _healthz(self, request):\n"
        "        return self.workbench.health()\n"
    ), rel="src/repro/serving/core.py")


_UNGUARDED_MATERIALIZE = (
    "class Core:\n"
    "    def _density(self, request, deadline):\n"
    "        flat = self.store.materialize_store()\n"
    "        return render(flat)\n"
)


def test_lk105_unguarded_materialization_flagged(tmp_path):
    violations = _lint_snippet(
        tmp_path, _UNGUARDED_MATERIALIZE, rel="src/repro/serving/core.py"
    )
    assert _rules_hit(violations) == {"LK105"}
    assert violations[0].line == 3
    assert "materialize_store" in violations[0].message


def test_lk105_threshold_guard_passes(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "class Core:\n"
        "    def _density(self, request, deadline):\n"
        "        sketch = self.store.store_sketch()\n"
        "        if sketch.n_patients <= self.config.drilldown_rows:\n"
        "            return render(self.store.materialize_store())\n"
        "        return render_sketch(sketch)\n"
    ), rel="src/repro/serving/core.py")


def test_lk105_applies_to_viz_code(tmp_path):
    violations = _lint_snippet(
        tmp_path, _UNGUARDED_MATERIALIZE, rel="src/repro/viz/views.py"
    )
    assert _rules_hit(violations) == {"LK105"}


def test_lk105_scoped_to_view_serving_code(tmp_path):
    # Batch/maintenance code (repair, CLI, io) legitimately flattens
    # whole stores; the rule only polices view-serving paths.
    assert not _lint_snippet(tmp_path, _UNGUARDED_MATERIALIZE,
                             rel="src/repro/shard/repair.py")
    assert not _lint_snippet(tmp_path, _UNGUARDED_MATERIALIZE,
                             rel="tools/x.py")


_BARE_SHARD_WRITE = (
    "import os\n"
    "def stash_blob(path, data):\n"
    "    with open(path + '.tmp', 'wb') as f:\n"
    "        f.write(data)\n"
    "    os.rename(path + '.tmp', path)\n"
)


# LK201's shard tier subsumed the syntactic LK106; same legacy
# snippets, same verdicts.


def test_lk201_bare_shard_write_flagged(tmp_path):
    violations = _lint_snippet(
        tmp_path, _BARE_SHARD_WRITE, rel="src/repro/shard/x.py"
    )
    assert _rules_hit(violations) == {"LK201"}
    assert violations[0].line == 3
    assert "atomic install path" in violations[0].message


def test_lk201_install_helper_passes(tmp_path):
    # Routing the bytes through an install helper satisfies the rule,
    # even from a function whose name the io tier would not police.
    assert not _lint_snippet(tmp_path, (
        "def stash_blob(path, data):\n"
        "    def write(tmp):\n"
        "        with open(tmp, 'wb') as f:\n"
        "            f.write(data)\n"
        "    atomic_replace(path, write)\n"
    ), rel="src/repro/shard/x.py")


def test_lk201_replace_plus_fsync_passes(tmp_path):
    assert not _lint_snippet(tmp_path, (
        "import os\n"
        "def stash_blob(path, data):\n"
        "    with open(path + '.tmp', 'wb') as f:\n"
        "        f.write(data)\n"
        "    os.replace(path + '.tmp', path)\n"
        "    fsync_dir(os.path.dirname(path))\n"
    ), rel="src/repro/shard/x.py", select={"LK201"})


def test_lk201_replace_without_fsync_flagged(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "import os\n"
        "def stash_blob(path, data):\n"
        "    with open(path + '.tmp', 'wb') as f:\n"
        "        f.write(data)\n"
        "    os.replace(path + '.tmp', path)\n"
    ), rel="src/repro/shard/x.py")
    assert "LK201" in _rules_hit(violations)


def test_lk201_scoped_to_shard_and_io_code(tmp_path):
    assert not _lint_snippet(tmp_path, _BARE_SHARD_WRITE,
                             rel="src/repro/viz/x.py")
    assert not _lint_snippet(tmp_path, _BARE_SHARD_WRITE,
                             rel="tools/x.py")


# -- framework --------------------------------------------------------------


def test_line_suppression(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "try:\n    pass\n"
        "except:  # lintkit: disable=LK001\n    pass\n"
    ))
    assert violations == []


def test_file_suppression(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "# lintkit: disable-file=LK001\n"
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept:\n    pass\n"
    ))
    assert violations == []


def test_suppression_only_silences_named_rule(tmp_path):
    violations = _lint_snippet(tmp_path, (
        "try:\n    pass\n"
        "except:  # lintkit: disable=LK002\n    pass\n"
    ))
    assert _rules_hit(violations) == {"LK001"}


def test_syntax_error_reported_not_raised(tmp_path):
    violations = _lint_snippet(tmp_path, "def broken(:\n")
    assert _rules_hit(violations) == {"LK000"}


def test_reporters(tmp_path):
    violations = _lint_snippet(tmp_path,
                               "try:\n    pass\nexcept:\n    pass\n")
    text = format_text(violations)
    assert "LK001" in text and "src/repro/x.py:3" in text
    payload = json.loads(to_json(violations))
    assert payload[0]["rule"] == "LK001"
    assert format_text([]) == "lintkit: clean"


def test_rule_ids_unique_and_titled():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert all(rule.title for rule in rules)
    assert {"LK001", "LK002", "LK003", "LK101", "LK103", "LK105",
            "LK201", "LK202", "LK203", "LK204"} <= set(ids)
    # The syntactic durability/deadline rules were subsumed by the
    # dataflow family and must not resurface under their old ids.
    assert not {"LK102", "LK104", "LK106"} & set(ids)


# -- the real gate ----------------------------------------------------------


def test_src_and_tools_lint_clean():
    violations = lint_paths([ROOT / "src" / "repro", ROOT / "tools"],
                            root=ROOT)
    assert not violations, format_text(violations)


def test_cli_module_runs_clean():
    result = subprocess.run(
        [sys.executable, "-m", "tools.lintkit"],
        cwd=ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_check_error_taxonomy_wrapper_still_works():
    result = subprocess.run(
        [sys.executable, "tools/check_error_taxonomy.py"],
        cwd=ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "error taxonomy ok" in result.stdout


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
