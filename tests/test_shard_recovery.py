"""Self-healing executor: pool probes, per-shard retries, breakers.

Every recovery decision in :class:`~repro.shard.executor.ParallelExecutor`
is deterministic and observable, so these tests drive it with stubbed
failure injections (a ``_parallel`` that raises ``BrokenProcessPool``, a
``_eval_serial`` that fails N times, a recorded ``sleep``) and assert the
exact state machine: fall back serially on a pool crash, probe parallel
again spending one rebuild per probe, go permanently serial only when
``max_pool_rebuilds`` is exhausted; retry transient shard failures with
seeded backoff, skip retries on definite damage, quarantine at query
time only when the policy allows and the evidence (definite damage or an
open breaker) demands it.
"""

from __future__ import annotations

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.config import ShardConfig
from repro.errors import (
    DeadlineExceededError,
    ShardChecksumError,
    ShardStoreError,
)
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.shard import ParallelExecutor, ShardedEventStore, write_sharded_store
from repro.simulate.fast import generate_store_fast

N_SHARDS = 4


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(200, seed=17)
    return store


@pytest.fixture(scope="module")
def expr():
    return parse_query("concept T90 or sex F")


@pytest.fixture()
def root(flat_store, tmp_path):
    path = str(tmp_path / "recovery.shards")
    write_sharded_store(flat_store, path, n_shards=N_SHARDS)
    return path


def _executor(root_config=None, **kwargs) -> ParallelExecutor:
    sleeps: list[float] = []
    executor = ParallelExecutor(
        config=root_config or ShardConfig(**kwargs),
        sleep=sleeps.append,
    )
    executor._test_sleeps = sleeps
    return executor


class TestPoolSelfHealing:
    def _crashing(self, executor, fail_times: int):
        """Replace ``_parallel`` with a stub that crashes N times, then
        succeeds with a sentinel result."""
        calls = {"n": 0}
        sentinel = np.asarray([1, 2, 3], dtype=np.int64)

        def fake_parallel(sharded, expr, optimize, cache, deadline=None):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise BrokenProcessPool("injected pool crash")
            executor.parallel_queries += 1
            return sentinel

        executor._parallel = fake_parallel
        return calls, sentinel

    def test_crash_falls_back_then_probe_succeeds(self, flat_store, root,
                                                  expr):
        sharded = ShardedEventStore(root)
        expected = np.asarray(QueryEngine(flat_store).patients(expr))
        executor = _executor(n_workers=2, max_pool_rebuilds=3)
        calls, sentinel = self._crashing(executor, fail_times=1)

        # Query 1: pool crashes, the query still completes serially with
        # the full, correct answer.
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        assert executor.pool_failures == 1
        assert executor.pool_fallbacks == 1
        assert executor.serial_queries == 1
        assert executor.mode == "parallel"  # a probe is still owed

        # Query 2: the probe spends one rebuild and sticks.
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), sentinel)
        assert executor.pool_rebuilds == 1
        assert executor.mode == "parallel"
        assert calls["n"] == 2

        # Query 3: healthy parallel again, no further rebuild spent.
        executor.patients(sharded, expr)
        assert executor.pool_rebuilds == 1
        assert executor.stats_dict()["parallel_queries"] == 2

    def test_budget_exhaustion_goes_permanently_serial(self, flat_store,
                                                       root, expr):
        sharded = ShardedEventStore(root)
        expected = np.asarray(QueryEngine(flat_store).patients(expr))
        executor = _executor(n_workers=2, max_pool_rebuilds=2)
        calls, __ = self._crashing(executor, fail_times=100)

        # Crash 1 + two probe crashes exhaust the rebuild budget.
        for __ in range(3):
            got = executor.patients(sharded, expr)
            assert np.array_equal(np.asarray(got), expected)
        assert executor.pool_failures == 3
        assert executor.pool_rebuilds == 2
        # The budget is spent: mode already reports serial for the next
        # query, even before the permanent flag is set by running one.
        assert executor.mode == "serial"

        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        assert executor.mode == "serial"
        assert calls["n"] == 3  # the broken pool is never attempted again
        executor.patients(sharded, expr)
        assert calls["n"] == 3
        stats = executor.stats_dict()
        assert stats["mode"] == "serial"
        assert stats["pool_rebuilds"] == stats["max_pool_rebuilds"] == 2

    def test_close_is_idempotent_and_pool_respawns(self, flat_store, root,
                                                   expr):
        sharded = ShardedEventStore(root)
        expected = np.asarray(QueryEngine(flat_store).patients(expr))
        with ParallelExecutor(config=ShardConfig(n_workers=2)) as executor:
            got = executor.patients(sharded, expr)
            assert np.array_equal(np.asarray(got), expected)
            assert executor.parallel_queries == 1
            executor.close()
            executor.close()  # idempotent
            # A closed executor stays usable: the pool respawns lazily.
            got = executor.patients(sharded, expr)
            assert np.array_equal(np.asarray(got), expected)
            assert executor.parallel_queries == 2
            assert executor.mode == "parallel"
            assert executor.pool_failures == 0


class TestShardRecovery:
    def _failing_eval(self, executor, bad_index: int, fail_times: int,
                      exc_factory):
        """``_eval_serial`` that fails ``fail_times`` times on one shard."""
        real = executor._eval_serial
        calls = {"n": 0}

        def flaky(sharded, index, expr, optimize, cache):
            if index == bad_index:
                calls["n"] += 1
                if calls["n"] <= fail_times:
                    raise exc_factory()
            return real(sharded, index, expr, optimize, cache)

        executor._eval_serial = flaky
        return calls

    @pytest.mark.parametrize("exc_factory", [
        lambda: ShardStoreError("transient shard I/O failure"),
        lambda: DeadlineExceededError("shard exceeded the per-shard budget"),
    ])
    def test_transient_failure_retried_to_success(self, flat_store, root,
                                                  expr, exc_factory):
        sharded = ShardedEventStore(root)
        expected = np.asarray(QueryEngine(flat_store).patients(expr))
        executor = _executor(n_workers=1, shard_max_retries=2)
        self._failing_eval(executor, bad_index=1, fail_times=2,
                           exc_factory=exc_factory)
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        assert executor.shard_retries == 2
        assert len(executor._test_sleeps) == 2
        assert all(delay >= 0 for delay in executor._test_sleeps)
        # The eventual success closed the breaker again.
        assert executor.open_breakers() == {}
        assert executor.query_time_quarantines == 0

    def test_exhausted_transient_raises_under_fail_policy(self, root, expr):
        sharded = ShardedEventStore(root)  # on_damage="fail" default
        executor = _executor(n_workers=1, shard_max_retries=2,
                             shard_failure_threshold=3)
        self._failing_eval(
            executor, bad_index=1, fail_times=100,
            exc_factory=lambda: ShardStoreError("persistent failure"),
        )
        with pytest.raises(ShardStoreError):
            executor.patients(sharded, expr)
        assert executor.shard_retries == 2
        assert executor.open_breakers() == {"shard-0001": "open"}
        assert executor.query_time_quarantines == 0

    def test_open_breaker_quarantines_under_quarantine_policy(
            self, flat_store, root, expr):
        sharded = ShardedEventStore(
            root, config=ShardConfig(on_damage="quarantine"))
        executor = _executor(
            root_config=ShardConfig(on_damage="quarantine", n_workers=1,
                                    shard_max_retries=2,
                                    shard_failure_threshold=3))
        self._failing_eval(
            executor, bad_index=1, fail_times=100,
            exc_factory=lambda: ShardStoreError("persistent failure"),
        )
        got = executor.patients(sharded, expr)
        # 1 initial failure + 2 retries == the breaker threshold: the
        # shard is quarantined and the query completes degraded.
        assert executor.query_time_quarantines == 1
        degradation = sharded.degradation()
        assert degradation.quarantined_shards == ("shard-0001",)
        expected = np.intersect1d(
            np.asarray(QueryEngine(flat_store).patients(expr)),
            sharded.patient_ids,
        )
        assert np.array_equal(np.asarray(got), expected)

    def test_closed_breaker_raises_even_under_quarantine_policy(self, root,
                                                                expr):
        # One failure + one retry leaves the breaker below threshold:
        # transient trouble is not evidence enough to drop a shard.
        executor = _executor(
            root_config=ShardConfig(on_damage="quarantine", n_workers=1,
                                    shard_max_retries=1,
                                    shard_failure_threshold=3))
        sharded = ShardedEventStore(
            root, config=ShardConfig(on_damage="quarantine"))
        self._failing_eval(
            executor, bad_index=2, fail_times=100,
            exc_factory=lambda: ShardStoreError("flaky but unproven"),
        )
        with pytest.raises(ShardStoreError):
            executor.patients(sharded, expr)
        assert executor.query_time_quarantines == 0
        assert not sharded.degradation().is_degraded

    def test_definite_damage_skips_retries(self, root, expr):
        sharded = ShardedEventStore(
            root, config=ShardConfig(on_damage="quarantine"))
        executor = _executor(
            root_config=ShardConfig(on_damage="quarantine", n_workers=1))
        self._failing_eval(
            executor, bad_index=0, fail_times=100,
            exc_factory=lambda: ShardChecksumError(
                "shard-0000", "patient", "aa", "bb"),
        )
        executor.patients(sharded, expr)
        assert executor.shard_retries == 0
        assert executor._test_sleeps == []
        assert executor.query_time_quarantines == 1
        assert sharded.degradation().quarantined_shards == ("shard-0000",)

    def test_genuine_post_open_corruption_quarantined(self, flat_store,
                                                      root, expr):
        # No stubs: the store opens clean, then a byte rots underneath
        # it.  The lazy shard open detects the checksum mismatch and the
        # executor quarantines the shard mid-query.
        sharded = ShardedEventStore(
            root, config=ShardConfig(on_damage="quarantine"))
        assert not sharded.degradation().is_degraded
        import os

        target = os.path.join(root, "shard-0002", "patient.npy")
        with open(target, "r+b") as f:
            f.seek(os.path.getsize(target) - 1)
            byte = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte[0] ^ 0xFF]))
        executor = _executor(
            root_config=ShardConfig(on_damage="quarantine", n_workers=1))
        got = executor.patients(sharded, expr)
        assert executor.query_time_quarantines == 1
        degradation = sharded.degradation()
        assert degradation.quarantined_shards == ("shard-0002",)
        assert "checksum mismatch" in degradation.reasons[0]
        expected = np.intersect1d(
            np.asarray(QueryEngine(flat_store).patients(expr)),
            sharded.patient_ids,
        )
        assert np.array_equal(np.asarray(got), expected)
