"""Tests for time-to-event analysis and KM plotting."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort.alignment import compute_alignment
from repro.cohort.survival import (
    KaplanMeier,
    TimeToEvent,
    kaplan_meier,
    logrank_test,
    time_to_event,
)
from repro.errors import QueryError
from repro.query.ast import Category, Concept
from repro.viz.km_plot import render_km_plot


def tte(durations, observed) -> TimeToEvent:
    return TimeToEvent(
        durations=np.asarray(durations, dtype=np.float64),
        observed=np.asarray(observed, dtype=bool),
    )


class TestKaplanMeier:
    def test_textbook_example(self):
        """Classic hand-checkable case: events at 1, 2; censored at 1.5."""
        data = tte([1.0, 1.5, 2.0], [True, False, True])
        km = kaplan_meier(data)
        # S(1) = 2/3 (3 at risk, 1 event); S(2) = 2/3 * 0 (1 at risk, 1 ev)
        assert km.probability_at(0.5) == 1.0
        assert km.probability_at(1.0) == pytest.approx(2 / 3)
        assert km.probability_at(2.0) == pytest.approx(0.0)

    def test_all_censored_flat_curve(self):
        data = tte([5.0, 6.0, 7.0], [False, False, False])
        km = kaplan_meier(data)
        assert len(km.times) == 0
        assert km.probability_at(100.0) == 1.0
        assert km.median_time() is None

    def test_median(self):
        data = tte([1, 2, 3, 4], [True, True, True, True])
        km = kaplan_meier(data)
        assert km.median_time() == 2.0

    def test_validation(self):
        with pytest.raises(QueryError):
            tte([], [])
        with pytest.raises(QueryError):
            tte([1.0], [True, False])
        with pytest.raises(QueryError):
            tte([-1.0], [True])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.booleans()),
            min_size=1, max_size=40,
        )
    )
    def test_survival_is_monotone_nonincreasing_in_unit_interval(self, raw):
        data = tte([d for d, __ in raw], [o for __, o in raw])
        km = kaplan_meier(data)
        assert ((km.survival >= -1e-12) & (km.survival <= 1 + 1e-12)).all()
        assert (np.diff(km.survival) <= 1e-12).all()


class TestLogRank:
    def test_identical_groups_not_significant(self):
        rng = np.random.default_rng(0)
        durations = rng.exponential(50, size=200)
        observed = rng.random(200) < 0.8
        a = tte(durations[:100], observed[:100])
        b = tte(durations[100:], observed[100:])
        chi2, p = logrank_test(a, b)
        assert p > 0.01

    def test_different_hazards_detected(self):
        rng = np.random.default_rng(1)
        fast = tte(rng.exponential(20, size=150), np.ones(150, dtype=bool))
        slow = tte(rng.exponential(80, size=150), np.ones(150, dtype=bool))
        chi2, p = logrank_test(fast, slow)
        assert p < 1e-6
        assert chi2 > 20

    def test_no_events_rejected(self):
        a = tte([5.0], [False])
        with pytest.raises(QueryError):
            logrank_test(a, a)


class TestTimeToEventFromStore:
    def test_diabetes_to_first_admission(self, small_store, small_engine,
                                         window):
        alignment = compute_alignment(small_engine, Concept("T90"))
        data = time_to_event(
            small_engine, alignment, Category("hospital_stay"),
            window.end_day,
        )
        assert data.n_subjects == len(alignment)
        assert 0 < data.n_events < data.n_subjects
        assert (data.durations <= window.end_day).all()

    def test_durations_match_manual_check(self, small_store, small_engine,
                                          window):
        alignment = compute_alignment(small_engine, Concept("T90"))
        data = time_to_event(
            small_engine, alignment, Category("hospital_stay"),
            window.end_day,
        )
        ids = alignment.aligned_ids()
        for i in (0, len(ids) // 2, len(ids) - 1):
            pid = ids[i]
            history = small_store.materialize(pid)
            anchor = alignment.anchor_of(pid)
            stays = [iv.start for iv in history.intervals
                     if iv.category == "hospital_stay"
                     and iv.start >= anchor]
            if stays:
                assert data.observed[i]
                assert data.durations[i] == min(stays) - anchor
            else:
                assert not data.observed[i]

    def test_higher_risk_group_fails_faster(self, small_store, small_engine,
                                            window):
        """Heart-failure diabetics reach hospital sooner than the rest of
        the diabetes cohort (their hospitalization rate is ~6x)."""
        alignment = compute_alignment(small_engine, Concept("T90"))
        hf = set(small_engine.patients(Concept("K77")).tolist())
        ids = alignment.aligned_ids()
        split = [pid in hf for pid in ids]
        data = time_to_event(
            small_engine, alignment, Category("hospital_stay"),
            window.end_day,
        )
        mask = np.asarray(split)
        if mask.sum() < 10:
            pytest.skip("too few heart-failure diabetics at this scale")
        with_hf = TimeToEvent(data.durations[mask], data.observed[mask])
        without = TimeToEvent(data.durations[~mask], data.observed[~mask])
        km_hf = kaplan_meier(with_hf)
        km_rest = kaplan_meier(without)
        at = 365.0
        assert km_hf.probability_at(at) < km_rest.probability_at(at)
        __, p = logrank_test(with_hf, without)
        assert p < 0.05


class TestKmPlot:
    def test_valid_svg_with_legend(self):
        data = tte([1, 2, 3, 4, 5], [True, True, False, True, False])
        svg = render_km_plot({"cohort": kaplan_meier(data)})
        ET.fromstring(svg.to_string())
        assert "cohort" in svg.to_string()

    def test_multiple_curves_distinct_colors(self):
        a = kaplan_meier(tte([1, 2, 3], [True, True, True]))
        b = kaplan_meier(tte([4, 5, 6], [True, True, True]))
        text = render_km_plot({"a": a, "b": b}).to_string()
        from repro.viz.colors import QUALITATIVE_PALETTE

        assert QUALITATIVE_PALETTE[0] in text
        assert QUALITATIVE_PALETTE[1] in text

    def test_empty_rejected(self):
        from repro.errors import RenderError

        with pytest.raises(RenderError):
            render_km_plot({})
