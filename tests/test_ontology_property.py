"""Property tests over random ontologies: serialization round-trips and
reasoner invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.model import (
    Conjunction,
    DataHasValue,
    NamedClass,
    ObjectSomeValuesFrom,
    Ontology,
)
from repro.ontology.owl_io import from_functional_syntax, to_functional_syntax
from repro.ontology.reasoner import Reasoner

_CLASS_NAMES = [f"C{i}" for i in range(6)]
_PROPS = ["r", "s"]
_DATA_PROPS = ["p"]


@st.composite
def ontologies(draw) -> Ontology:
    """A random small ontology with subclass/equivalence axioms over
    named classes, conjunctions, existentials and value restrictions."""
    ont = Ontology("random")
    for name in _CLASS_NAMES:
        ont.declare_class(name)
    for prop in _PROPS:
        ont.declare_object_property(prop)
    for prop in _DATA_PROPS:
        ont.declare_data_property(prop)

    def atom():
        return NamedClass(draw(st.sampled_from(_CLASS_NAMES)))

    def expression(depth: int):
        if depth == 0:
            choice = draw(st.integers(0, 1))
            if choice == 0:
                return atom()
            return DataHasValue(
                draw(st.sampled_from(_DATA_PROPS)),
                draw(st.sampled_from(["a", "b", 1, True])),
            )
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return atom()
        if choice == 1:
            return Conjunction((expression(depth - 1), expression(depth - 1)))
        if choice == 2:
            return ObjectSomeValuesFrom(
                draw(st.sampled_from(_PROPS)), expression(depth - 1)
            )
        return DataHasValue(
            draw(st.sampled_from(_DATA_PROPS)),
            draw(st.sampled_from(["a", "b", 2])),
        )

    n_axioms = draw(st.integers(1, 8))
    for __ in range(n_axioms):
        kind = draw(st.integers(0, 1))
        if kind == 0:
            ont.subclass_of(expression(2), expression(2))
        else:
            ont.equivalent(expression(1), expression(1))

    n_individuals = draw(st.integers(0, 3))
    for i in range(n_individuals):
        ind = ont.add_individual(f"x{i}")
        ind.assert_type(atom())
        if draw(st.booleans()):
            ind.relate(draw(st.sampled_from(_PROPS)), f"x{(i + 1) % 3}")
        if draw(st.booleans()):
            ind.set_value("p", draw(st.sampled_from(["a", "b", 1])))
    return ont


@settings(max_examples=60, deadline=None)
@given(ontologies())
def test_roundtrip_preserves_axioms(ont):
    back = from_functional_syntax(to_functional_syntax(ont))
    assert set(back.classes) == set(ont.classes)
    assert [repr(a) for a in back.axioms] == [repr(a) for a in ont.axioms]
    assert set(back.individuals) == set(ont.individuals)


@settings(max_examples=40, deadline=None)
@given(ontologies())
def test_roundtrip_preserves_entailments(ont):
    original = Reasoner(ont)
    back = Reasoner(from_functional_syntax(to_functional_syntax(ont)))
    for cls in _CLASS_NAMES:
        assert original.subsumers(cls) == back.subsumers(cls)
    for name in ont.individuals:
        assert original.instance_types(name) == back.instance_types(name)


@settings(max_examples=40, deadline=None)
@given(ontologies())
def test_subsumption_is_a_preorder(ont):
    """Reflexivity and transitivity over all named classes."""
    reasoner = Reasoner(ont)
    for a in _CLASS_NAMES:
        assert reasoner.is_subclass_of(a, a)
        assert reasoner.is_subclass_of(a, "Thing")
        for b in reasoner.subsumers(a):
            for c in reasoner.subsumers(b):
                assert reasoner.is_subclass_of(a, c), (a, b, c)


@settings(max_examples=30, deadline=None)
@given(ontologies())
def test_instance_types_closed_under_subsumption(ont):
    reasoner = Reasoner(ont)
    for name in ont.individuals:
        types = reasoner.instance_types(name)
        for t in types:
            # every subsumer of an inferred type must itself be inferred
            for sup in reasoner.subsumers(t):
                assert sup in types, (name, t, sup)
