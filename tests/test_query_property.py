"""Property test: the vectorized engine vs a naive reference interpreter.

Hypothesis generates random query ASTs; both evaluators must return the
same patient set.  The reference interpreter works on materialized
``History`` objects with the simplest possible semantics, so any
disagreement points at the columnar fast path.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.events.model import History
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventAnd,
    EventExpr,
    EventNot,
    EventOr,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientExpr,
    PatientNot,
    PatientOr,
    SexIs,
    Source,
    TimeWindow,
    ValueRange,
)
from repro.query.engine import QueryEngine
from repro.simulate.fast import generate_store_fast
from repro.terminology import icpc2_to_icd10_map

# A small store keeps the naive interpreter fast enough for many examples.
_STORE, __ = generate_store_fast(300, seed=17)
_ENGINE = QueryEngine(_STORE)
_HISTORIES: dict[int, History] = {
    int(p): _STORE.materialize(int(p)) for p in _STORE.patient_ids
}
_DAY_LO = int(_STORE.day.min())
_DAY_HI = int(_STORE.day.max())


# -- the reference interpreter ---------------------------------------------


def _iter_events(history: History):
    for p in history.points:
        yield (p.day, p.day + 1, p.category, p.code, p.system, p.value,
               p.source)
    for iv in history.intervals:
        yield (iv.start, iv.end, iv.category, iv.code, iv.system, iv.value,
               iv.source)


def _event_matches(event, expr: EventExpr) -> bool:
    day, end, category, code, system, value, source = event
    if isinstance(expr, CodeMatch):
        return (system == expr.system and code is not None
                and re.fullmatch(expr.pattern, code) is not None)
    if isinstance(expr, Concept):
        icpc_codes, icd_codes = icpc2_to_icd10_map().expand_concept(expr.code)
        if system == "ICPC-2":
            return code in icpc_codes
        if system == "ICD-10":
            return code in icd_codes
        return False
    if isinstance(expr, Category):
        return category == expr.category
    if isinstance(expr, Source):
        return source == expr.source_kind
    if isinstance(expr, ValueRange):
        return value is not None and expr.low <= value <= expr.high
    if isinstance(expr, TimeWindow):
        return day <= expr.last_day and end > expr.first_day
    if isinstance(expr, EventAnd):
        return all(_event_matches(event, c) for c in expr.children)
    if isinstance(expr, EventOr):
        return any(_event_matches(event, c) for c in expr.children)
    if isinstance(expr, EventNot):
        return not _event_matches(event, expr.child)
    raise AssertionError(expr)


def _naive_patients(expr: PatientExpr | EventExpr) -> set[int]:
    if isinstance(expr, EventExpr):
        expr = HasEvent(expr)
    if isinstance(expr, HasEvent):
        return {
            pid for pid, h in _HISTORIES.items()
            if any(_event_matches(e, expr.expr) for e in _iter_events(h))
        }
    if isinstance(expr, CountAtLeast):
        return {
            pid for pid, h in _HISTORIES.items()
            if sum(
                1 for e in _iter_events(h) if _event_matches(e, expr.expr)
            ) >= expr.minimum
        }
    if isinstance(expr, FirstBefore):
        result = set()
        for pid, h in _HISTORIES.items():
            days = [e[0] for e in _iter_events(h)
                    if _event_matches(e, expr.expr)]
            if days and min(days) <= expr.day:
                result.add(pid)
        return result
    if isinstance(expr, AgeRange):
        return {
            pid for pid, h in _HISTORIES.items()
            if expr.min_years
            <= (expr.at_day - h.birth_day) / 365.25
            <= expr.max_years
        }
    if isinstance(expr, SexIs):
        return {pid for pid, h in _HISTORIES.items() if h.sex == expr.sex}
    if isinstance(expr, PatientAnd):
        sets = [_naive_patients(c) for c in expr.children]
        result = sets[0]
        for s in sets[1:]:
            result = result & s
        return result
    if isinstance(expr, PatientOr):
        result: set[int] = set()
        for c in expr.children:
            result |= _naive_patients(c)
        return result
    if isinstance(expr, PatientNot):
        return set(_HISTORIES) - _naive_patients(expr.child)
    raise AssertionError(expr)


# -- strategies ---------------------------------------------------------------

_event_atoms = st.one_of(
    st.sampled_from([
        CodeMatch("ICPC-2", "T90"),
        CodeMatch("ICPC-2", "K8."),
        CodeMatch("ICPC-2", "F.*|H.*"),
        CodeMatch("ICD-10", "E1[14]"),
        CodeMatch("ATC", "C07.*"),
        Concept("T90"),
        Concept("K86"),
        Category("gp_contact"),
        Category("hospital_stay"),
        Category("blood_pressure"),
        Source("hospital_inpatient"),
        Source("gp_claim"),
        ValueRange(140.0, 250.0),
    ]),
    st.builds(
        TimeWindow,
        st.integers(_DAY_LO, _DAY_HI - 30),
        st.just(_DAY_HI),
    ),
)


def _event_exprs(depth: int):
    if depth == 0:
        return _event_atoms
    smaller = _event_exprs(depth - 1)
    return st.one_of(
        _event_atoms,
        st.builds(lambda a, b: EventAnd((a, b)), smaller, smaller),
        st.builds(lambda a, b: EventOr((a, b)), smaller, smaller),
        st.builds(EventNot, smaller),
    )


_patient_atoms = st.one_of(
    st.builds(HasEvent, _event_exprs(1)),
    st.builds(CountAtLeast, _event_exprs(0), st.integers(1, 8)),
    st.builds(FirstBefore, _event_exprs(0),
              st.integers(_DAY_LO, _DAY_HI)),
    st.builds(AgeRange, st.integers(0, 60), st.integers(60, 120),
              st.just(_DAY_HI)),
    st.sampled_from([SexIs("F"), SexIs("M")]),
)


def _patient_exprs(depth: int):
    if depth == 0:
        return _patient_atoms
    smaller = _patient_exprs(depth - 1)
    return st.one_of(
        _patient_atoms,
        st.builds(lambda a, b: PatientAnd((a, b)), smaller, smaller),
        st.builds(lambda a, b: PatientOr((a, b)), smaller, smaller),
        st.builds(PatientNot, smaller),
    )


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_patient_exprs(2))
def test_engine_matches_reference_interpreter(query):
    fast = set(_ENGINE.patients(query).tolist())
    slow = _naive_patients(query)
    assert fast == slow


@settings(max_examples=60, deadline=None)
@given(_event_exprs(2))
def test_event_masks_match_reference(expr):
    mask = _ENGINE.event_mask(expr)
    fast_patients = set(_STORE.patients_matching(mask).tolist())
    slow_patients = {
        pid for pid, h in _HISTORIES.items()
        if any(_event_matches(e, expr) for e in _iter_events(h))
    }
    assert fast_patients == slow_patients


def test_reference_interpreter_sane():
    """The reference itself agrees with hand counts on a spot check."""
    expr = HasEvent(Category("hospital_stay"))
    by_hand = {
        pid for pid, h in _HISTORIES.items()
        if any(iv.category == "hospital_stay" for iv in h.intervals)
    }
    assert _naive_patients(expr) == by_hand


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
