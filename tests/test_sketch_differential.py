"""Differential harness: sketch folds ≡ brute-force row recomputation.

The sketch subsystem is only admissible if pre-aggregation is
*invisible*: for any cohort, folding per-shard sketch sidecars must
produce exactly the counts a full scan of the materialized rows
produces.  This suite proves that equivalence three ways:

* an **independent pure-Python reference builder** (its own row sort,
  its own chapter-root walk, dict-and-loop aggregation — no shared
  vectorized code) must agree with :func:`repro.sketch.build_sketch`;
* whole-store and query-masked sketches over {1, 2, 7} shards ×
  {0, 1, 3} pending delta batches (and post-compaction) must equal the
  brute-force recomputation from ``materialize_store()`` rows, with the
  query corpus reusing the seeded 17-node AST generator;
* the merge algebra must be associative and invariant under shard
  permutation.

The canonical row order matters: same-``(patient, day)`` rows have no
inherent order and delta resolution may permute them, so both builders
sort by the full event-identity key before counting transitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.engine import QueryEngine
from repro.shard import (
    Compactor,
    DeltaWriter,
    ShardedEventStore,
    write_sharded_store,
)
from repro.shard.writer import subset_store
from repro.sketch import SketchSpec, build_sketch, merge_sketches
from repro.sketch.chapters import UNCODED_GROUP
from repro.simulate.fast import generate_store_fast
from tests.test_query_planner_property import _generated_corpus

SPEC = SketchSpec()


# -- independent reference implementation --------------------------------------


def _row_tuples(store) -> list[tuple]:
    """Rows as plain tuples in the canonical event-identity order."""
    columns = [
        np.asarray(c).tolist()
        for c in (store.patient, store.day, store.end, store.is_point,
                  store.category, store.system, store.code, store.source)
    ]
    return sorted(zip(*columns))


def _root_label(store, system_idx: int, code_id: int,
                memo: dict) -> str:
    """Chapter label via a hand-rolled parent walk (not ChapterIndex)."""
    key = (system_idx, code_id)
    if key not in memo:
        name = store.system_names[system_idx]
        system = store.systems[name]
        code = list(system)[code_id].code
        while system.get(code).parent is not None:
            code = system.get(code).parent
        memo[key] = f"{name}:{code}"
    return memo[key]


def brute_sketch_counts(store, spec: SketchSpec = SPEC) -> dict:
    """Aggregate counts by looping over rows — the trusted oracle.

    Returns plain dicts keyed by labels/absolute buckets so comparison
    against a :class:`CohortSketch` is axis-order independent.
    """
    rows = _row_tuples(store)
    memo: dict = {}
    density: dict = {}
    bucket_patients: dict = {}
    group_patients: dict = {}
    flow: dict = {}
    flow_starts: dict = {}
    seen_bucket: set = set()
    seen_group: set = set()
    categories = list(store.categories)

    per_patient_coded: dict[int, list[str]] = {}
    for patient, day, __, ___, category, system, code, ____ in rows:
        coded = system >= 0 and code >= 0
        label = (_root_label(store, system, code, memo) if coded
                 else UNCODED_GROUP)
        bucket = day // spec.bucket_days
        density[(bucket, label, categories[category])] = (
            density.get((bucket, label, categories[category]), 0) + 1
        )
        if (patient, bucket) not in seen_bucket:
            seen_bucket.add((patient, bucket))
            bucket_patients[bucket] = bucket_patients.get(bucket, 0) + 1
        if (patient, label) not in seen_group:
            seen_group.add((patient, label))
            group_patients[label] = group_patients.get(label, 0) + 1
        if coded:
            per_patient_coded.setdefault(patient, []).append(label)
    for labels in per_patient_coded.values():
        flow_starts[labels[0]] = flow_starts.get(labels[0], 0) + 1
        for src, dst in zip(labels[: spec.first_k - 1],
                            labels[1: spec.first_k]):
            flow[(src, dst)] = flow.get((src, dst), 0) + 1

    age_sex: dict = {}
    first_day = {}
    for patient, day, *__ in rows:
        if patient not in first_day:
            first_day[patient] = day
    ids = np.asarray(store.patient_ids).tolist()
    births = np.asarray(store.birth_days).tolist()
    sexes = np.asarray(store.sexes).tolist()
    for pid, birth, sex in zip(ids, births, sexes):
        age = (first_day.get(pid, 0) - birth) // 365
        band = min(max(age // spec.age_band_years, 0), spec.n_age_bands - 1)
        sex = min(max(sex, 0), 2)
        age_sex[(band, sex)] = age_sex.get((band, sex), 0) + 1

    return {
        "n_patients": len(ids),
        "n_events": len(rows),
        "density": density,
        "bucket_patients": bucket_patients,
        "group_patients": group_patients,
        "flow": flow,
        "flow_starts": flow_starts,
        "age_sex": age_sex,
    }


def sketch_as_counts(sketch) -> dict:
    """A CohortSketch flattened to the oracle's dict-of-nonzero shape."""
    out = {
        "n_patients": int(sketch.n_patients),
        "n_events": int(sketch.n_events),
        "density": {},
        "bucket_patients": {},
        "group_patients": {},
        "flow": {},
        "flow_starts": {},
        "age_sex": {},
    }
    for b, g, c in zip(*np.nonzero(sketch.density)):
        out["density"][
            (sketch.bucket_lo + int(b), sketch.groups[g],
             sketch.categories[c])
        ] = int(sketch.density[b, g, c])
    for b in np.nonzero(sketch.bucket_patients)[0]:
        out["bucket_patients"][sketch.bucket_lo + int(b)] = int(
            sketch.bucket_patients[b]
        )
    for g in np.nonzero(sketch.group_patients)[0]:
        out["group_patients"][sketch.groups[g]] = int(
            sketch.group_patients[g]
        )
    for s, d in zip(*np.nonzero(sketch.flow)):
        out["flow"][(sketch.groups[s], sketch.groups[d])] = int(
            sketch.flow[s, d]
        )
    for g in np.nonzero(sketch.flow_starts)[0]:
        out["flow_starts"][sketch.groups[g]] = int(sketch.flow_starts[g])
    for band, sex in zip(*np.nonzero(sketch.age_sex)):
        out["age_sex"][(int(band), int(sex))] = int(
            sketch.age_sex[band, sex]
        )
    return out


def assert_sketch_matches_rows(sketch, store, context: str = "") -> None:
    expected = brute_sketch_counts(store)
    got = sketch_as_counts(sketch)
    for key in expected:
        assert got[key] == expected[key], (
            f"{context}: sketch {key} diverged from brute force"
        )


# -- fixtures ------------------------------------------------------------------


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(220, seed=11)
    return store


def _delta_batches(n: int):
    """Overlapping append batches (same id block → contested patients)."""
    return [
        generate_store_fast(60, seed=100 + i, id_offset=40 * i)[0]
        for i in range(n)
    ]


def _build(tmp_path, flat_store, n_shards, n_deltas):
    path = str(tmp_path / f"s{n_shards}d{n_deltas}.shards")
    write_sharded_store(flat_store, path, n_shards=n_shards,
                        partition="hash")
    writer = DeltaWriter(path)
    for batch in _delta_batches(n_deltas):
        writer.append(batch)
    return ShardedEventStore(path)


# -- the differential ----------------------------------------------------------


def test_reference_builder_agrees_with_build_sketch(flat_store):
    """The vectorized builder ≡ the loop-and-dict oracle, field by field."""
    assert_sketch_matches_rows(build_sketch(flat_store), flat_store,
                               "flat store")


@pytest.mark.parametrize("n_shards", [1, 2, 7])
@pytest.mark.parametrize("n_deltas", [0, 1, 3])
def test_store_sketch_equals_brute_force(tmp_path, flat_store, n_shards,
                                         n_deltas):
    """Sidecar folds (plus contested-patient delta algebra) are exact."""
    sharded = _build(tmp_path, flat_store, n_shards, n_deltas)
    context = f"{n_shards} shard(s), {n_deltas} pending delta batch(es)"
    assert_sketch_matches_rows(
        sharded.store_sketch(), sharded.materialize_store(), context
    )
    if n_deltas:
        # The delta path must not have been served from sidecars alone.
        assert sharded.counters["sketch_delta_resketches"] > 0
    # Post-compaction the fold is sidecar-only and still exact.
    Compactor(sharded.path).compact()
    sharded.refresh()
    assert_sketch_matches_rows(
        sharded.store_sketch(), sharded.materialize_store(),
        context + ", compacted",
    )


@pytest.mark.parametrize("n_shards,n_deltas", [(2, 0), (7, 1), (2, 3)])
def test_query_masked_sketch_equals_brute_force(tmp_path, flat_store,
                                                n_shards, n_deltas):
    """Query-refined sketches over the 17-node AST corpus are exact."""
    sharded = _build(tmp_path, flat_store, n_shards, n_deltas)
    flat = sharded.materialize_store()
    engine = QueryEngine(flat, optimize=True)
    executor = sharded_executor(sharded)
    for i, query in enumerate(_generated_corpus(flat, 2016, 25)):
        ids = engine.patients(query)
        sketch = executor.sketch_shards(sharded, query)
        assert_sketch_matches_rows(
            sketch, subset_store(flat, ids),
            f"case {i}, {n_shards} shard(s), {n_deltas} delta(s)",
        )


def sharded_executor(sharded):
    from repro.shard import ParallelExecutor

    return ParallelExecutor(config=sharded.config)


# -- algebra -------------------------------------------------------------------


def test_merge_is_associative(tmp_path, flat_store):
    sharded = _build(tmp_path, flat_store, 7, 0)
    sketches = [sharded.shard_sketch(i) for i in sharded.active_indices()]
    left = sketches[0]
    for s in sketches[1:]:
        left = left.merge(s)
    right = sketches[-1]
    for s in reversed(sketches[:-1]):
        right = s.merge(right)
    assert left.content_equal(right)
    assert left.content_equal(merge_sketches(sketches))


def test_fold_is_shard_permutation_invariant(tmp_path, flat_store):
    rng = np.random.default_rng(5)
    sharded = _build(tmp_path, flat_store, 7, 1)
    sketches = [sharded.shard_sketch(i) for i in sharded.active_indices()]
    baseline = merge_sketches(sketches)
    for __ in range(5):
        order = rng.permutation(len(sketches))
        permuted = merge_sketches([sketches[i] for i in order])
        assert permuted.content_equal(baseline)
        assert sketch_as_counts(permuted) == sketch_as_counts(baseline)


def test_subtract_inverts_merge(tmp_path, flat_store):
    sharded = _build(tmp_path, flat_store, 2, 0)
    a = sharded.shard_sketch(0)
    b = sharded.shard_sketch(1)
    assert a.merge(b).subtract(b).content_equal(a)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
