"""Tests for the dead-letter quarantine store and its replay round-trip."""

from __future__ import annotations

import os

import pytest

from repro.config import ResilienceConfig
from repro.errors import EventModelError
from repro.io import append_jsonl, merge_stores, read_jsonl
from repro.resilience.faults import (
    CORRUPTION_MARKER,
    FaultPlan,
    FaultySource,
    corrupt_record,
    repair_record,
)
from repro.resilience.quarantine import QuarantinedRecord, QuarantineStore
from repro.simulate import generate_raw_sources
from repro.sources.integrate import IntegrationPipeline
from repro.sources.schema import (
    GPClaim,
    HospitalEpisode,
    MunicipalServiceRecord,
    SpecialistClaim,
)

SAMPLE_RECORDS = [
    ("gp_claims",
     GPClaim(1, "03.05.2012", icpc_codes="T90, K86", note="bp 140/90")),
    ("hospital_episodes",
     HospitalEpisode(2, "2012-05-03", "2012-05-09",
                     main_diagnosis="I21",
                     secondary_diagnoses=("E11", "I10"), ward="cardiac")),
    ("municipal_records",
     MunicipalServiceRecord(3, "home_care", "2012-05-03", "2012-06-01",
                            hours_per_week=4.5)),
    ("specialist_claims",
     SpecialistClaim(4, "03/05/2012", icd10_codes="I21;E11",
                     specialty="cardiology",
                     prescriptions=("C07AB02x90",))),
]


def quiet_pipeline(horizon_day, **kwargs):
    """A pipeline that never really sleeps (zero backoff)."""
    kwargs.setdefault(
        "resilience", ResilienceConfig(backoff_base_s=0.0, backoff_max_s=0.0)
    )
    return IntegrationPipeline(horizon_day, sleep=lambda s: None, **kwargs)


class TestJsonlRoundTrip:
    def test_all_record_kinds_survive(self, tmp_path):
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        for source, record in SAMPLE_RECORDS:
            quarantine.add(source, record, reason=f"broken {source}")
        assert len(quarantine) == len(SAMPLE_RECORDS)
        loaded = quarantine.records()
        for (source, record), item in zip(SAMPLE_RECORDS, loaded):
            assert item.source == source
            assert item.record == record  # tuples restored, types exact
            assert item.reason == f"broken {source}"
        assert [item.seq for item in loaded] == [0, 1, 2, 3]

    def test_missing_file_is_empty(self, tmp_path):
        quarantine = QuarantineStore(str(tmp_path / "never-written.jsonl"))
        assert len(quarantine) == 0
        assert quarantine.records() == []
        assert quarantine.reasons_by_source() == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventModelError):
            QuarantinedRecord.from_json(
                {"seq": 0, "source": "s", "reason": "r",
                 "kind": "Mystery", "record": {}}
            )

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        append_jsonl(path, [{"ok": 1}])
        with open(path, "a", encoding="utf-8") as f:
            f.write("{not json\n")
        with pytest.raises(EventModelError, match=r":2"):
            read_jsonl(path)

    def test_clear_drops_everything(self, tmp_path):
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        quarantine.add("gp_claims", SAMPLE_RECORDS[0][1], "bad")
        assert quarantine.clear() == 1
        assert len(quarantine) == 0

    def test_reasons_by_source_groups(self, tmp_path):
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        quarantine.add("gp_claims", SAMPLE_RECORDS[0][1], "a")
        quarantine.add("gp_claims", SAMPLE_RECORDS[0][1], "b")
        quarantine.add("specialist_claims", SAMPLE_RECORDS[3][1], "c")
        assert quarantine.reasons_by_source() == {
            "gp_claims": ["a", "b"], "specialist_claims": ["c"],
        }


class TestCorruptionIsReversible:
    def test_round_trip_every_kind(self):
        for __, record in SAMPLE_RECORDS:
            mangled = corrupt_record(record)
            assert mangled != record
            assert repair_record(mangled) == record

    def test_repair_is_idempotent_on_clean_records(self):
        record = SAMPLE_RECORDS[0][1]
        assert repair_record(record) == record

    def test_marker_lands_on_the_date_field(self):
        mangled = corrupt_record(SAMPLE_RECORDS[1][1])
        assert mangled.admitted.startswith(CORRUPTION_MARKER)


class TestRepair:
    def test_repair_counts_only_changed_records(self, tmp_path):
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        quarantine.add("gp_claims", corrupt_record(SAMPLE_RECORDS[0][1]),
                       "bad date")
        quarantine.add("specialist_claims", SAMPLE_RECORDS[3][1],
                       "bad code")  # not corrupted; repair won't touch it
        assert quarantine.repair(repair_record) == 1
        assert quarantine.records()[0].record == SAMPLE_RECORDS[0][1]
        # reasons survive the rewrite
        assert [i.reason for i in quarantine.records()] == [
            "bad date", "bad code",
        ]


class TestReplayRoundTrip:
    """The satellite acceptance path: corrupt -> quarantine -> repair ->
    replay -> merge == fault-free store."""

    def test_replay_reproduces_fault_free_store(self, tmp_path):
        raw = generate_raw_sources(60, seed=7)
        pipeline0 = quiet_pipeline(raw.window.end_day)
        store0, report0 = pipeline0.run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )

        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        faulty_gp = FaultySource(
            raw.gp_claims, FaultPlan(seed=3, corrupt_rate=0.10),
            source="gp_claims",
        )
        pipeline1 = quiet_pipeline(raw.window.end_day, quarantine=quarantine)
        store1, report1 = pipeline1.run(
            raw.patients, faulty_gp, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        injected = len(faulty_gp.corrupted_records)
        assert injected > 0
        # every injected corruption is dead-lettered (the simulator also
        # emits a few natively bad records, hence >=)
        assert report1.quarantined >= injected
        assert report1.quarantined == len(quarantine)
        corrupted = {
            getattr(r, "contact_date", None)
            for r in faulty_gp.corrupted_records
        }
        quarantined_dates = {
            item.record.contact_date
            for item in quarantine.records()
            if isinstance(item.record, GPClaim)
        }
        assert corrupted <= quarantined_dates
        for item in quarantine.records():
            assert item.reason  # every dead letter carries its why
        assert not store1.content_equal(store0)  # events really missing

        quarantine.repair(repair_record)
        replayed, replay_report = quarantine.replay(
            quiet_pipeline(raw.window.end_day), raw.patients
        )
        # natively-bad records fail again on replay; the injected ones parse
        assert replay_report.failed_records == report0.failed_records
        merged = merge_stores(store1, replayed, deduplicate_events=True)
        assert merged.content_equal(store0)

    def test_replay_without_repair_changes_nothing(self, tmp_path):
        raw = generate_raw_sources(40, seed=11)
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        faulty_gp = FaultySource(
            raw.gp_claims, FaultPlan(seed=5, corrupt_rate=0.10),
            source="gp_claims",
        )
        pipeline = quiet_pipeline(raw.window.end_day, quarantine=quarantine)
        store1, __ = pipeline.run(
            raw.patients, faulty_gp, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        replayed, report = quarantine.replay(
            quiet_pipeline(raw.window.end_day), raw.patients
        )
        assert report.failed_records == len(quarantine)  # all still broken
        merged = merge_stores(store1, replayed, deduplicate_events=True)
        assert merged.content_equal(store1)


class TestMergeStores:
    def test_plain_merge_concatenates(self):
        raw = generate_raw_sources(30, seed=3)
        pipeline = quiet_pipeline(raw.window.end_day)
        gp_only, __ = pipeline.run(raw.patients, gp_claims=raw.gp_claims)
        rest, __ = quiet_pipeline(raw.window.end_day).run(
            raw.patients,
            hospital_episodes=raw.hospital_episodes,
            municipal_records=raw.municipal_records,
            specialist_claims=raw.specialist_claims,
        )
        merged = merge_stores(gp_only, rest)
        assert merged.n_events == gp_only.n_events + rest.n_events
        assert merged.n_patients == gp_only.n_patients

    def test_merge_with_dedup_matches_single_run(self):
        # Splitting sources across two runs and dedup-merging must agree
        # with integrating everything in one run.
        raw = generate_raw_sources(30, seed=3)
        full, __ = quiet_pipeline(raw.window.end_day).run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        gp_only, __ = quiet_pipeline(raw.window.end_day).run(
            raw.patients, gp_claims=raw.gp_claims
        )
        rest, __ = quiet_pipeline(raw.window.end_day).run(
            raw.patients,
            hospital_episodes=raw.hospital_episodes,
            municipal_records=raw.municipal_records,
            specialist_claims=raw.specialist_claims,
        )
        merged = merge_stores(gp_only, rest, deduplicate_events=True)
        assert merged.content_equal(full)

    def test_content_signature_is_order_insensitive(self):
        from repro.events.store import EventStoreBuilder

        def build(first_code, second_code):
            builder = EventStoreBuilder()
            builder.add_patient(1, -10_000, "F")
            for code in (first_code, second_code):
                builder.add_event(patient_id=1, day=100,
                                  category="diagnosis", code=code,
                                  system="ICPC-2", source="gp_claim",
                                  detail="x")
            return builder.build()

        a = build("T90", "K86")
        b = build("K86", "T90")  # same events, different insertion order
        assert a.content_equal(b)
        assert not a.content_equal(build("T90", "T89"))


class TestTornTailDurability:
    """Crash-mid-append recovery: the dead-letter file heals itself."""

    def _seed(self, tmp_path) -> QuarantineStore:
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        for source, record in SAMPLE_RECORDS[:2]:
            quarantine.add(source, record, reason="seed")
        return quarantine

    def test_partial_garbage_tail_is_skipped_and_truncated(self, tmp_path):
        quarantine = self._seed(tmp_path)
        with open(quarantine.path, "ab") as f:
            f.write(b'{"seq": 99, "source": "reg", "GARBL')  # torn mid-write
        # Readers tolerate the torn tail without repair.
        assert len(quarantine) == 2
        assert [item.seq for item in quarantine.records()] == [0, 1]
        # The next add heals the framing: the garbage is gone, the new
        # line lands on a clean boundary, and nothing good was lost.
        source, record = SAMPLE_RECORDS[2]
        quarantine.add(source, record, reason="after crash")
        assert len(quarantine) == 3
        loaded = quarantine.records()
        assert [item.seq for item in loaded] == [0, 1, 2]
        assert loaded[-1].reason == "after crash"
        with open(quarantine.path, "rb") as f:
            data = f.read()
        assert b'"GARBL' not in data  # the torn fragment was truncated away
        assert data.endswith(b"\n")

    def test_complete_json_missing_newline_is_terminated_not_lost(
            self, tmp_path):
        quarantine = self._seed(tmp_path)
        with open(quarantine.path, "rb+") as f:
            f.seek(-1, 2)
            f.truncate()  # crash landed between payload and newline
        assert not open(quarantine.path, "rb").read().endswith(b"\n")
        source, record = SAMPLE_RECORDS[2]
        quarantine.add(source, record, reason="after crash")
        # The complete-but-unterminated record survived as a record.
        loaded = quarantine.records()
        assert len(loaded) == 3
        assert [item.seq for item in loaded] == [0, 1, 2]
        assert loaded[1].record == SAMPLE_RECORDS[1][1]

    def test_add_is_fsynced(self, tmp_path, monkeypatch):
        import repro.io as io_module

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(io_module.os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        source, record = SAMPLE_RECORDS[0]
        quarantine.add(source, record, reason="must be durable")
        assert synced  # the append reached the disk, not just the page cache
