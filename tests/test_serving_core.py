"""The transport-agnostic serving core and overload middleware.

Everything here runs without sockets: :class:`repro.serving.core.Request`
objects go straight into :class:`RequestCore`/:class:`ServingApp` and the
typed :class:`Response` comes back, so the HTTP caching contract (strong
ETags, 304 without plan execution, the response-body LRU), the admission
gauge, the per-client token bucket (driven by a fake clock), deadline
503s, stale-serving under overload and gzip encoding are all asserted
deterministically.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.config import ServingConfig
from repro.errors import QueryError
from repro.serving.core import Request, RequestCore, Response, ResponseCache
from repro.serving.middleware import InflightGauge, ServingApp, TokenBucket
from repro.simulate.fast import generate_store_fast
from repro.workbench import Workbench


@pytest.fixture(scope="module")
def wb():
    store, __ = generate_store_fast(120, seed=3)
    return Workbench(store)


def _req(target: str, headers: dict | None = None,
         client: str = "10.0.0.1", method: str = "GET") -> Request:
    return Request.from_target(target, headers=headers, client=client,
                               method=method)


def _payload(response: Response) -> dict:
    return json.loads(response.body.decode("utf-8"))


# -- request parsing --------------------------------------------------------


class TestRequest:
    def test_from_target_parses_path_params_headers(self):
        request = Request.from_target(
            "/cohort?q=concept%20T90&rows=5",
            headers={"If-None-Match": '"abc"', "ACCEPT-ENCODING": "gzip"},
        )
        assert request.path == "/cohort"
        assert request.param("q") == "concept T90"
        assert request.int_param("rows", 1) == 5
        # header lookup is case-insensitive both ways
        assert request.header("if-none-match") == '"abc"'
        assert request.header("Accept-Encoding") == "gzip"

    def test_int_param_rejects_garbage(self):
        request = Request.from_target("/timeline.svg?rows=abc")
        with pytest.raises(QueryError, match="must be an integer"):
            request.int_param("rows", 1)

    def test_header_items_always_carry_content_length(self):
        response = Response.text("hello", "text/plain")
        items = dict(response.header_items())
        assert items["Content-Length"] == "5"
        assert items["Content-Type"] == "text/plain"


# -- the response-body LRU --------------------------------------------------


class TestResponseCache:
    def _body(self, text: str) -> Response:
        return Response.text(text, "text/plain")

    def test_entry_bound_evicts_lru(self):
        cache = ResponseCache(max_entries=2, max_bytes=1 << 20)
        cache.put("a", self._body("A"))
        cache.put("b", self._body("B"))
        assert cache.get("a") is not None  # touch: 'b' is now LRU
        cache.put("c", self._body("C"))
        assert cache.peek("b") is None
        assert cache.peek("a") is not None
        assert cache.evictions == 1

    def test_byte_bound_evicts(self):
        cache = ResponseCache(max_entries=100, max_bytes=10)
        cache.put("a", self._body("x" * 8))
        cache.put("b", self._body("y" * 8))
        assert len(cache) == 1
        assert cache.peek("a") is None

    def test_peek_does_not_touch_counters(self):
        cache = ResponseCache()
        cache.put("a", self._body("A"))
        cache.peek("a")
        cache.peek("missing")
        assert cache.hits == 0 and cache.misses == 0
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1 and cache.misses == 1

    def test_put_replaces_without_leaking_bytes(self):
        cache = ResponseCache(max_entries=4, max_bytes=1 << 20)
        cache.put("a", self._body("x" * 100))
        cache.put("a", self._body("y"))
        assert cache.stats_dict()["bytes"] == 1


# -- routes and HTTP caching ------------------------------------------------


class TestCoreRoutes:
    @pytest.fixture()
    def core(self, wb):
        return RequestCore(wb, ServingConfig())

    def test_index_serves_form(self, core):
        response = core.handle(_req("/"))
        assert response.status == 200
        assert b"run query" in response.body

    def test_unknown_path_404(self, core):
        assert core.handle(_req("/nope")).status == 404

    def test_post_is_405(self, core):
        assert core.handle(_req("/", method="POST")).status == 405

    def test_bad_query_is_400(self, core):
        response = core.handle(_req("/cohort?q=concept%20%3C%3C"))
        assert response.status == 400
        assert core.counters["errors_400"] == 1

    def test_cohort_carries_strong_etag(self, core):
        response = core.handle(_req("/cohort?q=concept%20T90"))
        assert response.status == 200
        etag = response.headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        assert response.headers["Cache-Control"].startswith("private")

    def test_if_none_match_304_skips_execution(self, core):
        first = core.handle(_req("/cohort?q=concept%20T90"))
        assert core.counters["queries_executed"] == 1
        etag = first.headers["ETag"]
        second = core.handle(
            _req("/cohort?q=concept%20T90",
                 headers={"If-None-Match": etag})
        )
        assert second.status == 304
        assert second.body == b""
        assert second.headers["ETag"] == etag
        # the plan never ran again: the 304 came from the ETag alone
        assert core.counters["queries_executed"] == 1
        assert core.counters["etag_304"] == 1

    def test_repeat_request_served_from_response_cache(self, core):
        core.handle(_req("/timeline.svg?q=concept%20T90"))
        renders = core.counters["renders"]
        again = core.handle(_req("/timeline.svg?q=concept%20T90"))
        assert again.status == 200
        assert again.body.startswith(b"<svg")
        assert core.counters["renders"] == renders
        assert core.response_cache.hits >= 1

    def test_equivalent_spellings_share_svg_etag(self, core):
        # extra whitespace parses to the same canonical plan, and the
        # SVG body depends only on the result: one ETag, one rendering
        a = core.handle(_req("/timeline.svg?q=concept%20T90"))
        b = core.handle(_req("/timeline.svg?q=concept%20%20T90"))
        assert a.headers["ETag"] == b.headers["ETag"]

    def test_cohort_etag_keeps_raw_query_text(self, core):
        # /cohort echoes the query text in the form, so equivalent
        # spellings must NOT share a representation
        a = core.handle(_req("/cohort?q=concept%20T90"))
        b = core.handle(_req("/cohort?q=concept%20%20T90"))
        assert a.headers["ETag"] != b.headers["ETag"]

    def test_params_partition_the_etag(self, core):
        a = core.handle(_req("/timeline.svg?q=concept%20T90&rows=10"))
        b = core.handle(_req("/timeline.svg?q=concept%20T90&rows=20"))
        assert a.headers["ETag"] != b.headers["ETag"]

    def test_analyze_is_json_and_cacheable(self, core):
        response = core.handle(_req("/analyze?q=concept%20T90"))
        assert response.status == 200
        assert response.content_type == "application/json"
        assert "ETag" in response.headers
        assert _payload(response)["query"] == "concept T90"

    def test_stats_reports_http_cache_counters(self, core):
        core.handle(_req("/cohort?q=concept%20T90"))
        etag = core.handle(_req("/cohort?q=concept%20T90")).headers["ETag"]
        core.handle(_req("/cohort?q=concept%20T90",
                         headers={"If-None-Match": etag}))
        stats = _payload(core.handle(_req("/stats")))
        http = stats["http_cache"]
        assert http["etag_304"] == 1
        assert http["queries_executed"] == 1
        assert http["response_cache"]["hits"] >= 1

    def test_cached_response_probe_never_executes(self, core):
        # nothing cached yet: the overload probe must answer None
        # without running the query
        assert core.cached_response(_req("/cohort?q=concept%20T90")) is None
        assert core.counters["queries_executed"] == 0
        core.handle(_req("/cohort?q=concept%20T90"))
        probed = core.cached_response(_req("/cohort?q=concept%20T90"))
        assert probed is not None and probed.status == 200
        assert core.counters["queries_executed"] == 1

    def test_debug_sleep_absent_unless_enabled(self, wb):
        assert RequestCore(wb, ServingConfig()).handle(
            _req("/debug/sleep?s=0")
        ).status == 404
        assert RequestCore(wb, ServingConfig(debug_routes=True)).handle(
            _req("/debug/sleep?s=0")
        ).status == 200


# -- readiness --------------------------------------------------------------


class TestReadyz:
    def _core_with_probe(self, wb, **saturation):
        core = RequestCore(wb, ServingConfig())
        state = {"inflight": 0, "max_inflight": 4, "draining": False}
        state.update(saturation)
        core.saturation_probe = lambda: state
        return core

    def test_ready_when_idle(self, wb):
        core = self._core_with_probe(wb)
        response = core.handle(_req("/readyz"))
        assert response.status == 200
        assert _payload(response)["ready"] is True

    def test_saturated_is_503_before_shedding_starts(self, wb):
        # high-water default 0.8: 4 of 4 in flight is beyond it
        core = self._core_with_probe(wb, inflight=4)
        response = core.handle(_req("/readyz"))
        assert response.status == 503
        payload = _payload(response)
        assert any("saturated" in reason for reason in payload["reasons"])
        assert payload["inflight"] == 4

    def test_draining_is_503(self, wb):
        core = self._core_with_probe(wb, draining=True)
        payload = _payload(core.handle(_req("/readyz")))
        assert payload["ready"] is False
        assert "draining" in payload["reasons"]


# -- middleware: admission, rate limiting, stale-serve, gzip ---------------


class TestInflightGauge:
    def test_sheds_at_limit_and_recovers(self):
        gauge = InflightGauge(2)
        assert gauge.try_acquire() and gauge.try_acquire()
        assert not gauge.try_acquire()
        assert gauge.shed == 1
        gauge.release()
        assert gauge.try_acquire()
        stats = gauge.stats_dict()
        assert stats["peak"] == 2
        assert stats["admitted"] == 3

    def test_release_never_goes_negative(self):
        gauge = InflightGauge(1)
        gauge.release()
        assert gauge.inflight == 0


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        assert bucket.allow("a") and bucket.allow("a")
        assert not bucket.allow("a")
        now[0] += 1.0
        assert bucket.allow("a")
        assert bucket.limited == 1

    def test_clients_are_independent(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1, clock=lambda: now[0])
        assert bucket.allow("a")
        assert bucket.allow("b")
        assert not bucket.allow("a")

    def test_client_state_is_bounded(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1, clock=lambda: now[0],
                             max_clients=2)
        for client in ("a", "b", "c"):
            bucket.allow(client)
        assert bucket.stats_dict()["clients"] == 2
        # 'a' was evicted; on return it refills to full burst
        assert bucket.allow("a")

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)


class TestServingApp:
    def test_rate_limit_sheds_with_retry_after(self, wb):
        now = [0.0]
        app = ServingApp(
            wb, ServingConfig(rate_limit_rps=1.0, rate_limit_burst=2),
            clock=lambda: now[0],
        )
        assert app.handle(_req("/")).status == 200
        assert app.handle(_req("/")).status == 200
        shed = app.handle(_req("/"))
        assert shed.status == 429
        assert shed.headers["Retry-After"] == "1"
        assert _payload(shed)["error"] == "rate-limited"
        assert app.counters["shed_rate_limited"] == 1
        # a different client has its own bucket
        assert app.handle(_req("/", client="10.0.0.2")).status == 200

    def test_admission_sheds_when_gauge_full(self, wb):
        app = ServingApp(wb, ServingConfig(max_inflight=1))
        assert app.gauge.try_acquire()  # pin the only slot
        shed = app.handle(_req("/cohort?q=concept%20T90"))
        assert shed.status == 429
        assert shed.headers["Retry-After"] == "1"
        assert _payload(shed)["error"] == "overloaded"
        assert app.counters["shed_inflight"] == 1
        app.gauge.release()
        assert app.handle(_req("/cohort?q=concept%20T90")).status == 200

    def test_saturated_worker_serves_cached_bytes_instead(self, wb):
        app = ServingApp(wb, ServingConfig(max_inflight=1))
        primed = app.handle(_req("/cohort?q=concept%20T90"))
        assert primed.status == 200
        executed = app.core.counters["queries_executed"]
        assert app.gauge.try_acquire()
        served = app.handle(_req("/cohort?q=concept%20T90"))
        assert served.status == 200
        assert served.headers["X-Served-From"] == "response-cache-overload"
        assert served.body == primed.body
        assert app.counters["served_stale_on_overload"] == 1
        assert app.core.counters["queries_executed"] == executed

    def test_health_routes_bypass_shedding(self, wb):
        app = ServingApp(
            wb, ServingConfig(max_inflight=1, rate_limit_rps=0.001,
                              rate_limit_burst=1),
        )
        assert app.gauge.try_acquire()
        for __ in range(3):
            assert app.handle(_req("/healthz")).status == 200
        # /readyz stays reachable too — it *reports* the saturation
        ready = app.handle(_req("/readyz"))
        assert ready.status == 503
        assert any("saturated" in reason
                   for reason in _payload(ready)["reasons"])

    def test_expired_deadline_is_503(self, wb):
        app = ServingApp(wb, ServingConfig(request_deadline_s=0.0))
        response = app.handle(_req("/cohort?q=concept%20T90"))
        assert response.status == 503
        assert "Retry-After" in response.headers
        assert app.core.counters["deadline_503"] == 1

    def test_drain_flips_readiness_only(self, wb):
        app = ServingApp(wb, ServingConfig())
        app.drain()
        assert app.handle(_req("/healthz")).status == 200
        payload = _payload(app.handle(_req("/readyz")))
        assert payload["ready"] is False and "draining" in payload["reasons"]
        # admitted work still completes while draining
        assert app.handle(_req("/")).status == 200

    def test_gzip_for_willing_clients_only(self, wb):
        app = ServingApp(wb, ServingConfig())
        plain = app.handle(_req("/timeline.svg?q=concept%20T90"))
        assert plain.status == 200
        assert "Content-Encoding" not in plain.headers
        zipped = app.handle(
            _req("/timeline.svg?q=concept%20T90",
                 headers={"Accept-Encoding": "gzip, br"})
        )
        assert zipped.headers["Content-Encoding"] == "gzip"
        assert zipped.headers["Vary"] == "Accept-Encoding"
        assert len(zipped.body) < len(plain.body)
        assert gzip.decompress(zipped.body) == plain.body
        assert app.counters["gzipped"] == 1

    def test_small_bodies_not_compressed(self, wb):
        app = ServingApp(wb, ServingConfig(debug_routes=True))
        response = app.handle(
            _req("/debug/sleep?s=0", headers={"Accept-Encoding": "gzip"})
        )
        assert response.status == 200
        assert "Content-Encoding" not in response.headers

    def test_stats_exposes_serving_section(self, wb):
        app = ServingApp(
            wb, ServingConfig(max_inflight=4, rate_limit_rps=100.0)
        )
        app.handle(_req("/cohort?q=concept%20T90"))
        stats = _payload(app.handle(_req("/stats")))
        serving = stats["serving"]
        assert serving["inflight_gauge"]["limit"] == 4
        assert serving["rate_limiter"]["rate_rps"] == 100.0
        assert serving["draining"] is False


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
