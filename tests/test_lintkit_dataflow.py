"""Fixture corpus for the dataflow rule family (LK201–LK204).

Each rule gets violating snippets and corrected twins laid out as a
miniature project (the dataflow rules are project rules: they parse the
whole tree under ``root``, build CFGs and call summaries, and judge the
requested files).  The corpus is what documents each rule's contract:
the corrected twin of every violation is the smallest change that makes
the protocol hold.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import (
    all_rules,
    lint_paths,
    load_baseline,
    violation_fingerprint,
    write_baseline,
)


def _lint_fixture(tmp_path, files: dict, select: set):
    """Write ``files`` (rel -> source) under tmp_path, lint with rules."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    rules = [r for r in all_rules() if r.id in select]
    return lint_paths([tmp_path / "src"], rules=rules, root=tmp_path)


# -- LK201: durability protocol ----------------------------------------------


def test_lk201_wrapper_installer_proved_by_summary(tmp_path):
    # _install is NOT on any allow-list: the bottom-up summary must
    # prove it durable (replace followed by fsync_dir on all paths) and
    # then excuse the write that reaches it.
    assert not _lint_fixture(tmp_path, {
        "src/repro/shard/wx.py": (
            "import os\n"
            "def fsync_dir(path):\n"
            "    fd = os.open(path, os.O_RDONLY)\n"
            "    os.fsync(fd)\n"
            "    os.close(fd)\n"
            "def _install(tmp, dst):\n"
            "    os.replace(tmp, dst)\n"
            "    fsync_dir(os.path.dirname(dst))\n"
            "def stash(path, data):\n"
            "    with open(path + '.tmp', 'wb') as f:\n"
            "        f.write(data)\n"
            "    _install(path + '.tmp', path)\n"
        ),
    }, select={"LK201"})


def test_lk201_write_escaping_on_one_branch_flagged(tmp_path):
    # Path sensitivity: the protocol must complete on EVERY normal
    # path.  The fast branch renames without replace+fsync_dir, so the
    # write is flagged even though the slow branch is correct.
    violations = _lint_fixture(tmp_path, {
        "src/repro/shard/bx.py": (
            "import os\n"
            "def stash(path, data, fast):\n"
            "    with open(path + '.tmp', 'wb') as f:\n"
            "        f.write(data)\n"
            "    if fast:\n"
            "        os.rename(path + '.tmp', path)\n"
            "    else:\n"
            "        os.replace(path + '.tmp', path)\n"
            "        fsync_dir(os.path.dirname(path))\n"
        ),
    }, select={"LK201"})
    assert len(violations) == 1
    assert violations[0].line == 3
    assert "atomic install path" in violations[0].message


def test_lk201_early_raise_is_not_an_escape(tmp_path):
    # A raise has no normal successor: aborting before the install is a
    # legal outcome, so validation guards do not defeat the must-proof.
    assert not _lint_fixture(tmp_path, {
        "src/repro/shard/rx.py": (
            "import os\n"
            "def stash(path, data):\n"
            "    if not data:\n"
            "        raise ValueError('empty')\n"
            "    with open(path + '.tmp', 'wb') as f:\n"
            "        f.write(data)\n"
            "    os.replace(path + '.tmp', path)\n"
            "    fsync_dir(os.path.dirname(path))\n"
        ),
    }, select={"LK201"})


def test_lk201_replace_without_dirsync_flagged_in_shard_tier(tmp_path):
    violations = _lint_fixture(tmp_path, {
        "src/repro/sketch/sx.py": (
            "import os\n"
            "def stash(path, data):\n"
            "    with open(path + '.tmp', 'wb') as f:\n"
            "        f.write(data)\n"
            "    os.replace(path + '.tmp', path)\n"
        ),
    }, select={"LK201"})
    assert [v.line for v in violations] == [3]


# -- LK202: crashpoint coverage ----------------------------------------------


def test_lk202_uncovered_boundaries_flagged(tmp_path):
    violations = _lint_fixture(tmp_path, {
        "src/repro/shard/fx.py": (
            "import os\n"
            "def install(tmp, dst):\n"
            "    os.replace(tmp, dst)\n"
            "def flush(f):\n"
            "    os.fsync(f.fileno())\n"
        ),
    }, select={"LK202"})
    assert len(violations) == 2
    assert "os.replace" in violations[0].message
    assert "os.fsync" in violations[1].message
    assert all("crashpoint" in v.message for v in violations)


def test_lk202_crashpoint_after_boundary_passes(tmp_path):
    assert not _lint_fixture(tmp_path, {
        "src/repro/shard/fx.py": (
            "import os\n"
            "def install(tmp, dst):\n"
            "    os.replace(tmp, dst)\n"
            "    crashpoint('replace:seg')\n"
        ),
    }, select={"LK202"})


def test_lk202_coverage_through_helper_summary(tmp_path):
    # _mark always hits crashpoint(), so calling it covers the boundary
    # — the summary makes helper indirection sound, not a loophole.
    assert not _lint_fixture(tmp_path, {
        "src/repro/shard/fx.py": (
            "import os\n"
            "def _mark(label):\n"
            "    crashpoint('replace:' + label)\n"
            "def install(tmp, dst):\n"
            "    os.replace(tmp, dst)\n"
            "    _mark('seg')\n"
        ),
    }, select={"LK202"})


def test_lk202_conditional_crashpoint_still_flagged(tmp_path):
    # Coverage is a must-property: a crashpoint reached only on one
    # branch leaves the other branch invisible to the crash matrix.
    violations = _lint_fixture(tmp_path, {
        "src/repro/shard/fx.py": (
            "import os\n"
            "def install(tmp, dst, noisy):\n"
            "    os.replace(tmp, dst)\n"
            "    if noisy:\n"
            "        crashpoint('replace:seg')\n"
        ),
    }, select={"LK202"})
    assert len(violations) == 1
    assert "os.replace" in violations[0].message


# -- LK203: deadline propagation ----------------------------------------------


def test_lk203_helper_indirection_flagged(tmp_path):
    # The handler has no Deadline anywhere, and the query work hides
    # behind a serving-local helper — the call-graph summary sees
    # through it.
    violations = _lint_fixture(tmp_path, {
        "src/repro/serving/hx.py": (
            "class Core:\n"
            "    def _cohort(self, request):\n"
            "        return run_query(self.workbench, request.q)\n"
            "def run_query(workbench, q, deadline=None):\n"
            "    return workbench.select(q, deadline=deadline)\n"
        ),
    }, select={"LK203"})
    assert len(violations) == 1
    assert violations[0].line == 3
    assert "run_query" in violations[0].message
    assert "no Deadline in scope" in violations[0].message


def test_lk203_deadline_in_scope_but_not_threaded_flagged(tmp_path):
    # Tier 2: having a deadline parameter (the old LK104 contract) is
    # no longer enough — it must reach the executor call.
    violations = _lint_fixture(tmp_path, {
        "src/repro/serving/hx.py": (
            "class Core:\n"
            "    def _cohort(self, request, deadline):\n"
            "        return self.workbench.select(request.q)\n"
        ),
    }, select={"LK203"})
    assert len(violations) == 1
    assert "without threading its Deadline" in violations[0].message


def test_lk203_deadline_threaded_positionally_passes(tmp_path):
    # A locally constructed Deadline bound to another name still
    # counts when it reaches the call — taint, not spelling.
    assert not _lint_fixture(tmp_path, {
        "src/repro/serving/hx.py": (
            "class Core:\n"
            "    def _cohort(self, request):\n"
            "        budget = Deadline(0.5)\n"
            "        return self.workbench.select(request.q, budget)\n"
        ),
    }, select={"LK203"})


def test_lk203_helper_constructing_own_deadline_excuses_caller(tmp_path):
    # snapshot() bounds its own query work, so callers need not thread
    # a deadline into it.
    assert not _lint_fixture(tmp_path, {
        "src/repro/serving/hx.py": (
            "class Core:\n"
            "    def _overview(self, request):\n"
            "        return snapshot(self.workbench)\n"
            "def snapshot(workbench):\n"
            "    deadline = Deadline(0.2)\n"
            "    return workbench.overview(deadline=deadline)\n"
        ),
    }, select={"LK203"})


# -- LK204: fork safety --------------------------------------------------------


def test_lk204_prefork_lock_used_in_child_flagged(tmp_path):
    violations = _lint_fixture(tmp_path, {
        "src/repro/serving/kx.py": (
            "import os\n"
            "import threading\n"
            "def run():\n"
            "    lock = threading.Lock()\n"
            "    pid = os.fork()\n"
            "    if pid == 0:\n"
            "        lock.acquire()\n"
        ),
    }, select={"LK204"})
    assert len(violations) == 1
    assert violations[0].line == 7
    assert "lock" in violations[0].message
    assert "before fork" in violations[0].message


def test_lk204_resource_created_inside_child_passes(tmp_path):
    # The corrected twin: per-process state built after the fork.
    assert not _lint_fixture(tmp_path, {
        "src/repro/serving/kx.py": (
            "import os\n"
            "import threading\n"
            "def run():\n"
            "    pid = os.fork()\n"
            "    if pid == 0:\n"
            "        lock = threading.Lock()\n"
            "        lock.acquire()\n"
        ),
    }, select={"LK204"})


def test_lk204_closing_inherited_handle_is_hygiene_not_use(tmp_path):
    assert not _lint_fixture(tmp_path, {
        "src/repro/serving/kx.py": (
            "import os\n"
            "import socket\n"
            "def run():\n"
            "    listener = socket.socket()\n"
            "    pid = os.fork()\n"
            "    if pid == 0:\n"
            "        listener.close()\n"
        ),
    }, select={"LK204"})


def test_lk204_store_object_into_pool_worker_flagged(tmp_path):
    violations = _lint_fixture(tmp_path, {
        "src/repro/shard/px.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def _work(store):\n"
            "    return store\n"
            "def scatter(path):\n"
            "    store = load_store(path)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(_work, store).result()\n"
        ),
    }, select={"LK204"})
    assert len(violations) == 1
    assert "mmap-backed store" in violations[0].message
    assert "process-pool worker" in violations[0].message


def test_lk204_passing_plain_field_into_pool_passes(tmp_path):
    # store.path is a plain value: only the resource object itself
    # crossing the pool boundary is unsafe.
    assert not _lint_fixture(tmp_path, {
        "src/repro/shard/px.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def _work(path):\n"
            "    return path\n"
            "def scatter(path):\n"
            "    store = load_store(path)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(_work, store.path).result()\n"
        ),
    }, select={"LK204"})


# -- framework mechanics over project rules -----------------------------------


def test_project_rule_honours_line_suppression(tmp_path):
    assert not _lint_fixture(tmp_path, {
        "src/repro/serving/kx.py": (
            "import os\n"
            "import threading\n"
            "def run():\n"
            "    lock = threading.Lock()\n"
            "    pid = os.fork()\n"
            "    if pid == 0:\n"
            "        lock.acquire()  # lintkit: disable=LK204\n"
        ),
    }, select={"LK204"})


_BASELINE_SNIPPET = (
    "import os\n"
    "def install(tmp, dst):\n"
    "    os.replace(tmp, dst)\n"
)


def test_baseline_filters_known_findings_only(tmp_path):
    files = {"src/repro/shard/fx.py": _BASELINE_SNIPPET}
    found = _lint_fixture(tmp_path, files, select={"LK202"})
    assert len(found) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, found)
    baseline = load_baseline(baseline_path)
    assert baseline == {violation_fingerprint(found[0])}

    # The recorded finding no longer gates...
    rules = [r for r in all_rules() if r.id == "LK202"]
    assert not lint_paths([tmp_path / "src"], rules=rules, root=tmp_path,
                          baseline=baseline)
    # ...even after edits above it move the line (fingerprints are
    # line-independent)...
    (tmp_path / "src/repro/shard/fx.py").write_text(
        "# a new leading comment\n" + _BASELINE_SNIPPET, encoding="utf-8"
    )
    assert not lint_paths([tmp_path / "src"], rules=rules, root=tmp_path,
                          baseline=baseline)
    # ...but a new finding still does.
    grown = "# a new leading comment\n" + _BASELINE_SNIPPET + (
        "def install2(tmp, dst):\n"
        "    os.replace(tmp, dst)\n"
    )
    (tmp_path / "src/repro/shard/fx.py").write_text(grown, encoding="utf-8")
    new = lint_paths([tmp_path / "src"], rules=rules, root=tmp_path,
                     baseline=baseline)
    assert len(new) == 1
    assert "install2" in new[0].message


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
