"""Differential harness: incremental delta ingestion ≡ full rebuild.

Delta-shard ingestion is only admissible if *how* events arrived is
invisible to queries: a base store plus ``k`` appended batches must
answer every query the planner can express with the bit-identical
patient-id array a store rebuilt from scratch over the union returns.
This suite re-uses the seeded 17-node AST generator from
``tests/test_query_planner_property.py`` and proves that equivalence
for k ∈ {0, 1, 3} appended batches on both hash and range
partitioning, plus the edge cases the format contract calls out:
empty batches (a durable no-op), batches landing on a single shard,
last-write-wins restatement (payload replacement, demographics,
within-batch duplicates), and ``merge_stores`` over a store that still
has pending deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EventModelError
from repro.events.store import EventStore
from repro.io import merge_stores
from repro.query.engine import QueryEngine
from repro.shard import (
    Compactor,
    DeltaWriter,
    ShardedEventStore,
    fsck_store,
    subset_store,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast
from tests.test_query_planner_property import _generated_corpus
from repro.workbench import Workbench

N_SHARDS = 4


@pytest.fixture(scope="module")
def union_store():
    """The ground-truth population every incremental path must equal."""
    store, __ = generate_store_fast(250, seed=11)
    return store


def _split(union: EventStore, n_batches: int):
    """Split the union into a base store plus ``n_batches`` batches.

    Patients are disjoint: the base keeps most of the population and
    each batch carries a deterministic slice of "newly arrived"
    patients, the way nightly registry extracts land in production.
    """
    pids = np.sort(union.patient_ids)
    if n_batches == 0:
        return subset_store(union, pids), []
    per_batch = max(1, len(pids) // 10)
    cut = len(pids) - per_batch * n_batches
    base = subset_store(union, pids[:cut])
    batches = [
        subset_store(union, pids[cut + i * per_batch:
                                 cut + (i + 1) * per_batch])
        for i in range(n_batches)
    ]
    return base, batches


def _incremental(union, tmp_path, n_batches, partition="hash"):
    """Write the base, append each batch, return the sharded store."""
    base, batches = _split(union, n_batches)
    path = str(tmp_path / f"inc-{partition}-{n_batches}.shards")
    write_sharded_store(base, path, n_shards=N_SHARDS, partition=partition)
    writer = DeltaWriter(path)
    for batch in batches:
        writer.append(batch)
    return ShardedEventStore(path), base, batches


@pytest.mark.parametrize("partition", ["hash", "range"])
@pytest.mark.parametrize("n_batches", [0, 1, 3])
def test_incremental_equals_rebuild(union_store, tmp_path, n_batches,
                                    partition):
    """base + k appends ≡ one full rebuild of the union, per query."""
    sharded, base, batches = _incremental(
        union_store, tmp_path, n_batches, partition
    )
    assert sharded.n_patients == union_store.n_patients
    assert sharded.n_events == union_store.n_events

    rebuilt_path = str(tmp_path / "rebuilt.shards")
    write_sharded_store(union_store, rebuilt_path, n_shards=N_SHARDS,
                        partition=partition)
    rebuilt = ShardedEventStore(rebuilt_path)

    flat = QueryEngine(union_store, optimize=True)
    incremental = QueryEngine(sharded)
    full = QueryEngine(rebuilt)
    for i, query in enumerate(_generated_corpus(union_store, 2016, 120)):
        expected = flat.patients(query)
        got = incremental.patients(query)
        assert np.array_equal(got, expected), (
            f"case {i} ({partition}, k={n_batches}) diverged: "
            f"incremental {len(got)} vs flat {len(expected)} for {query!r}"
        )
        assert np.array_equal(full.patients(query), expected)

    # The materialized effective view is the union, event for event.
    assert sharded.materialize_store().content_equal(
        merge_stores(base, *batches) if batches else base
    )
    assert fsck_store(sharded.path).ok


@pytest.mark.parametrize("partition", ["hash", "range"])
def test_compaction_preserves_every_answer(union_store, tmp_path, partition):
    """Folding deltas into new base generations changes no result."""
    sharded, __, __ = _incremental(union_store, tmp_path, 3, partition)
    assert sharded.has_pending_deltas
    pre_token = sharded.content_token()
    flat = QueryEngine(union_store, optimize=True)
    queries = list(_generated_corpus(union_store, 909, 60))
    before = [flat.patients(q) for q in queries]

    report = Compactor(sharded.path).compact()
    assert report.compacted
    assert sharded.refresh()
    assert not sharded.has_pending_deltas
    assert sharded.delta_stats()["pending_deltas"] == 0
    # Compaction rewrites segments, so caches keyed on the token must
    # miss; the content itself is unchanged.
    assert sharded.content_token() != pre_token
    engine = QueryEngine(sharded)
    for query, expected in zip(queries, before):
        assert np.array_equal(engine.patients(query), expected)
    base, batches = _split(union_store, 3)
    assert sharded.materialize_store().content_equal(
        merge_stores(base, *batches)
    )
    assert fsck_store(sharded.path).ok


def test_append_bumps_revision_and_content_token(union_store, tmp_path):
    """Every append is one atomic manifest bump that invalidates caches."""
    sharded, __, batches = _incremental(union_store, tmp_path, 0)
    base_token = sharded.content_token()
    assert sharded.revision == 0

    batch = subset_store(union_store, sharded.patient_ids[:20])
    manifest = DeltaWriter(sharded.path).append(batch)
    assert manifest["revision"] == 1
    assert sharded.refresh()
    assert sharded.revision == 1
    token_after_append = sharded.content_token()
    assert token_after_append != base_token

    Compactor(sharded.path).compact()
    assert sharded.refresh()
    assert sharded.revision == 2
    assert sharded.content_token() not in (base_token, token_after_append)


def test_empty_batch_append_is_a_noop(union_store, tmp_path):
    sharded, __, __ = _incremental(union_store, tmp_path, 0)
    empty = subset_store(union_store, np.array([], dtype=np.int64))
    manifest = DeltaWriter(sharded.path).append(empty)
    assert manifest["revision"] == 0
    assert not sharded.refresh()
    assert not sharded.has_pending_deltas


def test_single_patient_batch_lands_on_one_shard(union_store, tmp_path):
    sharded, base, __ = _incremental(union_store, tmp_path, 0)
    batch = subset_store(union_store, base.patient_ids[:1])
    DeltaWriter(sharded.path).append(batch)
    sharded.refresh()
    touched = [e for e in sharded.shard_entries if e.get("deltas")]
    assert len(touched) == 1
    assert touched[0]["deltas"][0]["n_patients"] == 1
    stats = sharded.delta_stats()
    assert stats["pending_deltas"] == 1
    assert stats["shards_with_deltas"] == 1
    assert fsck_store(sharded.path).ok


# -- last-write-wins semantics -------------------------------------------------


def _with_values(store: EventStore, value: float) -> EventStore:
    """The same events with every payload value replaced."""
    return EventStore(
        systems=store.systems,
        system_names=store.system_names,
        categories=store.categories,
        sources=store.sources,
        details=store.details,
        patient=store.patient,
        day=store.day,
        end=store.end,
        is_point=store.is_point,
        category=store.category,
        system=store.system,
        code=store.code,
        value=np.full_like(store.value, value),
        value2=store.value2,
        source=store.source,
        detail=store.detail,
        patient_ids=store.patient_ids,
        birth_days=store.birth_days,
        sexes=store.sexes,
    )


def test_lww_restatement_replaces_payload(union_store, tmp_path):
    """Re-appending the same events with new values dedups to the
    latest payload — the corrected-lab-result case."""
    sharded, base, __ = _incremental(union_store, tmp_path, 0)
    target = subset_store(union_store, base.patient_ids[:10])
    restated = _with_values(target, 424242.0)
    DeltaWriter(sharded.path).append(restated)
    sharded.refresh()
    merged = sharded.materialize_store()
    assert merged.n_events == base.n_events  # replaced, not duplicated
    rows = np.isin(merged.patient, target.patient_ids)
    assert rows.sum() == target.n_events
    assert np.all(merged.value[rows] == 424242.0)


def test_lww_demographics_later_batch_wins(union_store, tmp_path):
    sharded, base, __ = _incremental(union_store, tmp_path, 0)
    pid = int(base.patient_ids[0])
    target = subset_store(union_store, np.array([pid]))
    corrected = EventStore(
        systems=target.systems,
        system_names=target.system_names,
        categories=target.categories,
        sources=target.sources,
        details=target.details,
        patient=target.patient,
        day=target.day,
        end=target.end,
        is_point=target.is_point,
        category=target.category,
        system=target.system,
        code=target.code,
        value=target.value,
        value2=target.value2,
        source=target.source,
        detail=target.detail,
        patient_ids=target.patient_ids,
        birth_days=target.birth_days - 365,
        sexes=target.sexes,
    )
    DeltaWriter(sharded.path).append(corrected)
    sharded.refresh()
    merged = sharded.materialize_store()
    assert merged.birth_day_of(pid) == target.birth_days[0] - 365
    assert merged.n_patients == base.n_patients


def test_within_batch_duplicates_are_preserved(union_store, tmp_path):
    """LWW dedups *across* batches, never rows inside one batch — a
    batch that legitimately carries two identical doses keeps both."""
    sharded, base, __ = _incremental(union_store, tmp_path, 0)
    fresh = subset_store(union_store, base.patient_ids[:3])
    doubled = EventStore(
        systems=fresh.systems,
        system_names=fresh.system_names,
        categories=fresh.categories,
        sources=fresh.sources,
        details=fresh.details,
        patient=np.repeat(fresh.patient, 2),
        day=np.repeat(fresh.day, 2),
        end=np.repeat(fresh.end, 2),
        is_point=np.repeat(fresh.is_point, 2),
        category=np.repeat(fresh.category, 2),
        system=np.repeat(fresh.system, 2),
        code=np.repeat(fresh.code, 2),
        value=np.repeat(fresh.value, 2),
        value2=np.repeat(fresh.value2, 2),
        source=np.repeat(fresh.source, 2),
        detail=np.repeat(fresh.detail, 2),
        patient_ids=fresh.patient_ids,
        birth_days=fresh.birth_days,
        sexes=fresh.sexes,
    )
    DeltaWriter(sharded.path).append(doubled)
    sharded.refresh()
    merged = sharded.materialize_store()
    rows = np.isin(merged.patient, fresh.patient_ids)
    # The doubled batch replaced the base rows for these patients and
    # kept both copies of each duplicated row.
    assert rows.sum() == 2 * fresh.n_events


# -- merge_stores over pending deltas (regression) -----------------------------


def test_merge_stores_accepts_pending_deltas(union_store, tmp_path):
    """A sharded input mid-ingestion merges its *effective* view."""
    sharded, base, batches = _incremental(union_store, tmp_path, 2)
    assert sharded.has_pending_deltas
    raw, __ = generate_store_fast(20, seed=77)
    # Shift the second population's ids out of the union's id space.
    other = EventStore(
        systems=raw.systems,
        system_names=raw.system_names,
        categories=raw.categories,
        sources=raw.sources,
        details=raw.details,
        patient=raw.patient + 10_000_000,
        day=raw.day,
        end=raw.end,
        is_point=raw.is_point,
        category=raw.category,
        system=raw.system,
        code=raw.code,
        value=raw.value,
        value2=raw.value2,
        source=raw.source,
        detail=raw.detail,
        patient_ids=raw.patient_ids + 10_000_000,
        birth_days=raw.birth_days,
        sexes=raw.sexes,
    )
    merged = merge_stores(sharded, other)
    truth = merge_stores(merge_stores(base, *batches), other)
    assert merged.content_equal(truth)


# -- workbench / serving wiring ------------------------------------------------


def test_workbench_append_and_compact(union_store, tmp_path):
    base, batches = _split(union_store, 1)
    path = str(tmp_path / "wb.shards")
    write_sharded_store(base, path, n_shards=N_SHARDS)
    wb = Workbench.from_shards(path)
    from repro.query.parser import parse_query

    query = parse_query("sex F or sex M")
    before = wb.select(query)
    stats = wb.append_batch(batches[0])
    assert stats["pending_deltas"] > 0
    assert stats["revision"] == 1
    after = wb.select(query)
    # The plan/result caches invalidated on the token change: the new
    # patients are visible without any explicit flush.
    assert len(after) == len(before) + batches[0].n_patients
    health = wb.health()
    assert health["shards"]["ingestion"]["pending_deltas"] > 0

    report = wb.compact()
    assert report["revision"] == 2
    assert wb.shard_stats()["ingestion"]["pending_deltas"] == 0
    assert np.array_equal(wb.select(query), after)


def test_workbench_append_requires_sharded_store(union_store):
    wb = Workbench(union_store)
    with pytest.raises(EventModelError):
        wb.append_batch(union_store)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
