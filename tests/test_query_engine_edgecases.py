"""Edge-case and regression tests for previously untested engine corners.

* ``FirstBefore`` moved from a per-patient Python dict/sort to one
  vectorized pass; a regression test pins the new output against the
  old implementation verbatim.
* ``CountAtLeast(minimum=0)`` (rejected at construction), ``AgeRange``
  at exact boundary ages, and ``SexIs`` on a patient-less store were
  untested corners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.events.store import EventStoreBuilder
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventOr,
    FirstBefore,
    HasEvent,
    SexIs,
)
from repro.query.engine import QueryEngine


def _first_before_legacy(engine: QueryEngine, expr: FirstBefore) -> np.ndarray:
    """The pre-planner implementation (per-patient dict + Python sort),
    kept verbatim as the regression oracle."""
    store = engine.store
    first = store.first_day_per_patient(engine.event_mask(expr.expr))
    return np.asarray(
        sorted(pid for pid, day in first.items() if day <= expr.day),
        dtype=np.int64,
    )


class TestFirstBeforeRegression:
    @pytest.mark.parametrize("optimize", [True, False],
                             ids=["planned", "naive"])
    def test_matches_legacy_implementation(self, small_store, optimize):
        engine = QueryEngine(small_store, optimize=optimize)
        day_lo = int(small_store.day.min())
        day_hi = int(small_store.day.max())
        cutoffs = [day_lo - 1, day_lo, (day_lo + day_hi) // 2, day_hi,
                   day_hi + 1]
        exprs = [
            Concept("T90"),
            Category("gp_contact"),
            EventOr((Category("hospital_stay"), CodeMatch("ICPC-2", "K8."))),
            Category("no_such_category"),
        ]
        for event_expr in exprs:
            for cutoff in cutoffs:
                expr = FirstBefore(event_expr, cutoff)
                got = engine.patients(expr)
                expected = _first_before_legacy(engine, expr)
                assert got.dtype == np.int64
                assert np.array_equal(got, expected), (expr, cutoff)

    def test_cutoff_before_everything_is_empty(self, small_engine):
        cutoff = int(small_engine.store.day.min()) - 10
        ids = small_engine.patients(FirstBefore(Category("gp_contact"),
                                                cutoff))
        assert len(ids) == 0

    def test_no_matching_events_is_empty_int64(self, small_engine):
        ids = small_engine.patients(
            FirstBefore(Category("no_such_category"), 20_000)
        )
        assert len(ids) == 0
        assert ids.dtype == np.int64


class TestCountAtLeastEdges:
    def test_minimum_zero_rejected_at_construction(self):
        # "at least 0 events" matches everyone vacuously — the AST
        # rejects it so a query always states a real threshold.
        with pytest.raises(QueryError):
            CountAtLeast(Category("gp_contact"), 0)
        with pytest.raises(QueryError):
            CountAtLeast(Category("gp_contact"), -1)

    def test_minimum_one_equals_has_event(self, small_engine):
        at_least_one = small_engine.patients(
            CountAtLeast(Category("gp_contact"), 1)
        )
        has = small_engine.patients(HasEvent(Category("gp_contact")))
        assert np.array_equal(at_least_one, has)

    def test_huge_minimum_matches_nobody(self, small_engine):
        ids = small_engine.patients(
            CountAtLeast(Category("gp_contact"), 10_000)
        )
        assert len(ids) == 0


def _demographic_store():
    """Patients whose ages at day 36,525 are exactly 100, 40 and ~0."""
    builder = EventStoreBuilder()
    # age = (at_day - birth_day) / 365.25; pick birth days that divide
    # exactly so the boundary comparison is not a float coin toss.
    builder.add_patient(1, birth_day=0, sex="F")            # age 100.0
    builder.add_patient(2, birth_day=21_915, sex="M")       # age 40.0
    builder.add_patient(3, birth_day=36_525, sex="F")       # age 0.0
    return builder.build()


class TestAgeRangeBoundaries:
    AT = 36_525  # 100 * 365.25

    @pytest.mark.parametrize("optimize", [True, False],
                             ids=["planned", "naive"])
    def test_boundaries_inclusive(self, optimize):
        engine = QueryEngine(_demographic_store(), optimize=optimize)
        at = self.AT
        # Exact lower and upper bounds both include the boundary age.
        assert engine.patients(AgeRange(100.0, 120.0, at)).tolist() == [1]
        assert engine.patients(AgeRange(0.0, 100.0, at)).tolist() == [1, 2, 3]
        assert engine.patients(AgeRange(40.0, 100.0, at)).tolist() == [1, 2]
        assert engine.patients(AgeRange(0.0, 0.0, at)).tolist() == [3]

    def test_just_outside_boundary_excluded(self):
        engine = QueryEngine(_demographic_store())
        at = self.AT
        assert engine.patients(AgeRange(100.001, 120.0, at)).tolist() == []
        assert engine.patients(AgeRange(40.0, 99.999, at)).tolist() == [2]

    def test_degenerate_range_equals_exact_age(self):
        engine = QueryEngine(_demographic_store())
        assert engine.patients(AgeRange(40.0, 40.0, self.AT)).tolist() == [2]

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            AgeRange(50.0, 40.0, self.AT)


class TestEmptyStore:
    @pytest.fixture()
    def empty_engine(self):
        return QueryEngine(EventStoreBuilder().build())

    @pytest.mark.parametrize("sex", ["F", "M", "U"])
    def test_sex_is_on_no_patients(self, empty_engine, sex):
        ids = empty_engine.patients(SexIs(sex))
        assert len(ids) == 0
        assert ids.dtype == np.int64

    def test_age_range_on_no_patients(self, empty_engine):
        assert len(empty_engine.patients(AgeRange(0, 120, 20_000))) == 0

    def test_event_queries_on_no_events(self, empty_engine):
        assert len(empty_engine.patients(HasEvent(Category("x")))) == 0
        assert len(empty_engine.patients(CountAtLeast(Category("x"), 1))) == 0
        assert empty_engine.selectivity(SexIs("F")) == 0.0

    def test_sex_is_on_events_but_single_patient(self):
        builder = EventStoreBuilder()
        builder.add_patient(5, birth_day=-5_000, sex="M")
        engine = QueryEngine(builder.build())
        assert engine.patients(SexIs("M")).tolist() == [5]
        assert engine.patients(SexIs("F")).tolist() == []


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
