"""Tests for the density overview and the uncertainty metaphors."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import RenderError
from repro.temporal.uncertainty import UncertainInterval, UncertaintyMetaphor
from repro.viz.axes import TimeScale
from repro.viz.density_view import render_density
from repro.viz.svg import SvgDocument
from repro.viz.uncertainty_view import draw_uncertain_interval


class TestDensityView:
    def test_svg_valid(self, small_store):
        scene = render_density(small_store)
        ET.fromstring(scene.svg_text)

    def test_grid_sums_to_event_count(self, small_store):
        scene = render_density(small_store)
        assert int(scene.grid.sum()) == small_store.n_events

    def test_mask_restricts_events(self, small_store):
        mask = small_store.mask_category("hospital_stay")
        scene = render_density(small_store, mask=mask)
        assert int(scene.grid.sum()) == int(mask.sum())

    def test_subset_of_patients(self, small_store):
        ids = small_store.patient_ids[:100].tolist()
        scene = render_density(small_store, ids)
        assert scene.n_patients == 100
        expected = int(small_store.mask_patients(ids).sum())
        assert int(scene.grid.sum()) == expected

    def test_row_buckets_capped_by_population(self, small_store):
        ids = small_store.patient_ids[:10].tolist()
        scene = render_density(small_store, ids, row_buckets=120)
        assert scene.n_row_buckets == 10

    def test_empty_selection_rejected(self, small_store):
        with pytest.raises(RenderError):
            render_density(small_store, [])

    def test_empty_mask_rejected(self, small_store):
        with pytest.raises(RenderError, match="no events"):
            render_density(
                small_store,
                mask=np.zeros(small_store.n_events, dtype=bool),
            )

    def test_ink_is_bounded_by_grid_not_events(self, small_store):
        """The point of the overview: O(cells), not O(events)."""
        scene = render_density(small_store)
        n_cells = scene.n_row_buckets * scene.n_month_bins
        assert scene.svg_text.count("<rect") <= n_cells + 2


class TestUncertaintyView:
    @pytest.fixture()
    def canvas(self):
        return SvgDocument(400, 60)

    @pytest.fixture()
    def scale(self):
        return TimeScale(first_day=0, px_per_day=10.0, x_offset=20.0)

    @pytest.mark.parametrize("metaphor", list(UncertaintyMetaphor))
    def test_each_metaphor_renders_valid_svg(self, canvas, scale, metaphor):
        interval = UncertainInterval(0, 5, 15, 25)
        draw_uncertain_interval(canvas, interval, scale, 10, 20,
                                metaphor=metaphor, title="stay?")
        ET.fromstring(canvas.to_string())

    def test_solid_core_always_present(self, canvas, scale):
        interval = UncertainInterval(0, 5, 15, 25)
        draw_uncertain_interval(canvas, interval, scale, 10, 20)
        text = canvas.to_string()
        # core [5,15) at 10px/day + 20 offset -> rect at x=70 width 100
        assert 'x="70"' in text and 'width="100"' in text

    def test_spring_draws_zigzag_path(self, scale):
        canvas = SvgDocument(400, 60)
        interval = UncertainInterval(0, 10, 20, 35)
        draw_uncertain_interval(canvas, interval, scale, 10, 20,
                                metaphor=UncertaintyMetaphor.SPRING)
        assert "<path" in canvas.to_string()

    def test_paint_strip_hatches(self, scale):
        canvas = SvgDocument(400, 60)
        interval = UncertainInterval(0, 10, 20, 35)
        draw_uncertain_interval(canvas, interval, scale, 10, 20,
                                metaphor=UncertaintyMetaphor.PAINT_STRIP)
        assert canvas.to_string().count("<line") >= 4

    def test_bad_height_rejected(self, canvas, scale):
        with pytest.raises(RenderError):
            draw_uncertain_interval(
                canvas, UncertainInterval(0, 5, 15, 25), scale, 10, 0
            )

    def test_crisp_interval_is_all_solid(self, scale):
        from repro.temporal.timeline import Interval

        canvas = SvgDocument(400, 60)
        interval = UncertainInterval.crisp(Interval(2, 8))
        draw_uncertain_interval(canvas, interval, scale, 10, 20)
        text = canvas.to_string()
        assert "<path" not in text  # no fuzzy rendering needed
