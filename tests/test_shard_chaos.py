"""Chaos differential: damaged stores serve exactly the surviving truth.

The quarantine contract has one falsifiable core: a store opened with
``on_damage="quarantine"`` over k damaged shards must answer every query
with **exactly** the flat store's answer restricted to the surviving
patients — never a patient the flat store would not return, never a
surviving patient dropped, and every result flagged with a
:class:`~repro.shard.store.QueryDegradation` naming the quarantined
shards.  This suite proves that for k ∈ {0, 1, 2} under three damage
modes (byte flip, truncated segment, deleted manifest) on the seeded
query corpus, then repairs the store and proves full equality (and
byte-identical content tokens) is restored.

It also covers the executor's pool-level self-healing: a worker killed
mid-query (via the seeded worker-kill token) must still yield the full,
correct answer — serially for the poisoned query, in parallel again
after the rebuild probe — and the webapp must surface shard damage
through ``/healthz`` 503s, the degraded banner and ``/stats``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import ShardConfig
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.resilience.faults import (
    KILL_WORKER_ENV,
    ShardFaultPlan,
    apply_shard_faults,
)
from repro.shard import (
    ParallelExecutor,
    ShardedEventStore,
    fsck_store,
    repair_store,
    write_sharded_store,
)
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench
from tests.test_query_planner_property import _generated_corpus

N_SHARDS = 4

_FAULT_KINDS = {
    "flip": lambda k: ShardFaultPlan(seed=13, flip_bytes=k),
    "truncate": lambda k: ShardFaultPlan(seed=13, truncate_segments=k),
    "missing_manifest": lambda k: ShardFaultPlan(seed=13,
                                                 delete_manifests=k),
}


@pytest.fixture(scope="module")
def flat_store():
    store, __ = generate_store_fast(250, seed=11)
    return store


def _build(flat_store, tmp_path) -> str:
    root = str(tmp_path / "chaos.shards")
    write_sharded_store(flat_store, root, n_shards=N_SHARDS)
    return root


def _quarantine_config(**kwargs) -> ShardConfig:
    return ShardConfig(on_damage="quarantine", n_workers=1, **kwargs)


@pytest.mark.parametrize("kind", sorted(_FAULT_KINDS))
@pytest.mark.parametrize("k", [0, 1, 2])
def test_degraded_results_equal_restricted_flat(flat_store, tmp_path,
                                                kind, k):
    root = _build(flat_store, tmp_path)
    clean_token = ShardedEventStore(root).content_token()
    applied = apply_shard_faults(root, _FAULT_KINDS[kind](k))
    assert len(applied) == k

    sharded = ShardedEventStore(root, config=_quarantine_config())
    degradation = sharded.degradation()
    assert degradation.is_degraded == (k > 0)
    assert set(degradation.quarantined_shards) == \
        {fault["shard"] for fault in applied}
    assert sharded.n_active_shards == N_SHARDS - k
    if k:
        assert sharded.content_token() != clean_token
        assert degradation.patients_lost > 0

    surviving = sharded.patient_ids
    assert len(surviving) + degradation.patients_lost == flat_store.n_patients

    single = QueryEngine(flat_store, optimize=True)
    merged = QueryEngine(sharded, optimize=True)
    for expr in _generated_corpus(flat_store, seed=29, count=40):
        expected = np.intersect1d(
            np.asarray(single.patients(expr)), surviving
        )
        got = np.asarray(merged.patients(expr))
        assert np.array_equal(got, expected), expr

    # Repair restores full equality and the byte-identical store token.
    report = repair_store(root, source=flat_store)
    assert report.ok, report.format_summary()
    assert fsck_store(root).ok
    healed = ShardedEventStore(root, config=_quarantine_config())
    assert not healed.degradation().is_degraded
    assert healed.content_token() == clean_token
    healed_engine = QueryEngine(healed, optimize=True)
    for expr in _generated_corpus(flat_store, seed=31, count=15):
        assert np.array_equal(
            np.asarray(healed_engine.patients(expr)),
            np.asarray(single.patients(expr)),
        ), expr


def test_mixed_damage_modes_in_one_store(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    applied = apply_shard_faults(
        root, ShardFaultPlan(seed=7, flip_bytes=1, delete_manifests=1)
    )
    sharded = ShardedEventStore(root, config=_quarantine_config())
    degradation = sharded.degradation()
    assert set(degradation.quarantined_shards) == \
        {fault["shard"] for fault in applied}
    assert "DEGRADED: 2 shard(s)" in degradation.format_summary()
    # explain() carries the damage on every plan over this store.
    engine = QueryEngine(sharded)
    assert "DEGRADED: 2 shard(s)" in engine.explain(parse_query("concept T90"))


def test_worker_killed_mid_query_recovers_to_parallel(flat_store, tmp_path,
                                                      monkeypatch):
    root = _build(flat_store, tmp_path)
    token = tmp_path / "kill-token"
    token.write_text("")
    monkeypatch.setenv(KILL_WORKER_ENV, str(token))
    sharded = ShardedEventStore(
        root, config=ShardConfig(on_damage="quarantine", n_workers=2)
    )
    expr = parse_query("concept T90 or atleast 2 category gp_contact")
    expected = np.asarray(QueryEngine(flat_store).patients(expr))
    with ParallelExecutor(config=sharded.config) as executor:
        # The poisoned query: one worker claims the token and dies, the
        # pool breaks, the query completes serially — full answer.
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        assert executor.pool_failures == 1
        assert executor.pool_fallbacks == 1
        assert not token.exists()  # the token was claimed exactly once
        assert executor.mode == "parallel"  # probe pending, not broken
        # The next query probes parallel again, spending one rebuild.
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        stats = executor.stats_dict()
        assert stats["pool_rebuilds"] == 1
        assert stats["parallel_queries"] >= 1
        assert executor.mode == "parallel"
    # Nothing was quarantined: the damage was a process, not the bytes.
    assert not sharded.degradation().is_degraded


def test_parallel_executor_over_quarantined_store(flat_store, tmp_path):
    root = _build(flat_store, tmp_path)
    applied = apply_shard_faults(root, ShardFaultPlan(seed=3, flip_bytes=1))
    sharded = ShardedEventStore(
        root, config=ShardConfig(on_damage="quarantine", n_workers=2)
    )
    surviving = sharded.patient_ids
    expr = parse_query("sex F")
    expected = np.intersect1d(
        np.asarray(QueryEngine(flat_store).patients(expr)), surviving
    )
    with ParallelExecutor(config=sharded.config) as executor:
        got = executor.patients(sharded, expr)
        assert np.array_equal(np.asarray(got), expected)
        # Only the surviving shards were scanned.
        assert executor.shards_scanned == N_SHARDS - len(applied)


class TestWebappOverDamagedStore:
    @pytest.fixture(scope="class")
    def damaged_root(self, tmp_path_factory):
        store, __ = generate_store_fast(250, seed=11)
        root = str(tmp_path_factory.mktemp("chaosweb") / "web.shards")
        write_sharded_store(store, root, n_shards=N_SHARDS)
        apply_shard_faults(root, ShardFaultPlan(seed=5, flip_bytes=1))
        return root

    def _get(self, url: str) -> tuple[int, str]:
        try:
            with urllib.request.urlopen(url, timeout=15) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")

    def test_health_degraded_and_readyz_503(self, damaged_root):
        wb = Workbench.from_shards(
            damaged_root, shard_config=_quarantine_config()
        )
        assert wb.is_degraded
        health = wb.health()
        assert health["status"] == "degraded"
        assert health["shards"]["active"] == N_SHARDS - 1
        assert len(health["shards"]["quarantined"]) == 1
        assert health["shards"]["patients_lost"] > 0
        with WorkbenchServer(wb) as server:
            # Liveness stays 200 (the worker is serving); the payload
            # and the readiness probe carry the quarantine state.
            status, body = self._get(server.url + "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            status, body = self._get(server.url + "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False
            status, body = self._get(server.url + "/stats")
            assert status == 200
            shards = json.loads(body)["shards"]
            assert shards["degradation"]["degraded"] is True
            assert shards["active_shards"] == N_SHARDS - 1
            # The banner names the quarantined shard on the index page.
            status, body = self._get(server.url + "/")
            assert status == 200
            assert "shard-" in body

    def test_degraded_mode_fail_returns_503_everywhere(self, damaged_root):
        wb = Workbench.from_shards(
            damaged_root, shard_config=_quarantine_config()
        )
        with WorkbenchServer(wb, degraded_mode="fail") as server:
            status, __ = self._get(server.url + "/")
            assert status == 503
