"""CLI and web-workbench coverage for the sharded store.

``repro shard build|info|verify`` manage shard directories, ``repro
query`` auto-detects a directory store (``--shards`` asserts it,
``--workers`` sizes the scatter-gather pool), and a workbench served
from shards reports shard/executor counters on ``/stats``.
"""

from __future__ import annotations

import json
import os
import urllib.request

import pytest

from repro.cli import main
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench


@pytest.fixture(scope="module")
def store_path(tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("shardcli") / "store.npz")
    assert main(["generate", "--patients", "400", "--seed", "5",
                 "--out", path]) == 0
    return path


@pytest.fixture(scope="module")
def shard_dir(store_path, tmp_path_factory) -> str:
    out = str(tmp_path_factory.mktemp("shardcli") / "cohort.shards")
    assert main(["shard", "build", store_path, "--out", out,
                 "--shards", "3"]) == 0
    return out


class TestShardBuild:
    def test_reports_layout(self, store_path, tmp_path, capsys):
        out = str(tmp_path / "built.shards")
        assert main(["shard", "build", store_path, "--out", out,
                     "--shards", "2", "--partition", "range"]) == 0
        printed = capsys.readouterr().out
        assert "2 range-partitioned shard(s)" in printed
        assert os.path.exists(os.path.join(out, "manifest.json"))

    def test_info(self, shard_dir, capsys):
        assert main(["shard", "info", shard_dir]) == 0
        out = capsys.readouterr().out
        assert "shards:     3" in out
        assert "shard-0000" in out

    def test_verify_clean(self, shard_dir, capsys):
        assert main(["shard", "verify", shard_dir]) == 0
        assert "verified 3 shard(s)" in capsys.readouterr().out

    def test_verify_detects_corruption(self, store_path, tmp_path, capsys):
        out = str(tmp_path / "corrupt.shards")
        assert main(["shard", "build", store_path, "--out", out,
                     "--shards", "2"]) == 0
        column = os.path.join(out, "shard-0000", "code.npy")
        with open(column, "r+b") as f:
            f.seek(200)
            byte = f.read(1)
            f.seek(200)
            f.write(bytes([byte[0] ^ 0xFF]))
        assert main(["shard", "verify", out]) == 1
        assert "error:" in capsys.readouterr().err


class TestQueryOverShards:
    def test_directory_store_is_autodetected(self, shard_dir, capsys):
        assert main(["query", shard_dir, "concept T90"]) == 0
        out = capsys.readouterr().out
        assert "scatter-gather: 3 shards" in out

    def test_results_match_flat_store(self, store_path, shard_dir, capsys):
        assert main(["query", store_path, "concept T90 or sex F"]) == 0
        flat = capsys.readouterr().out
        assert main(["query", shard_dir, "concept T90 or sex F",
                     "--shards", "--workers", "1"]) == 0
        sharded = capsys.readouterr().out
        assert flat.splitlines()[0] == sharded.splitlines()[0]

    def test_shards_flag_rejects_flat_store(self, store_path, capsys):
        assert main(["query", store_path, "concept T90", "--shards"]) == 1
        assert "--shards requires" in capsys.readouterr().err

    def test_stats_over_shards(self, shard_dir, capsys):
        assert main(["stats", shard_dir]) == 0
        assert "patients" in capsys.readouterr().out


class TestWebappOverShards:
    @pytest.fixture(scope="class")
    def server(self, shard_dir):
        wb = Workbench.from_shards(shard_dir)
        with WorkbenchServer(wb) as running:
            yield running

    def _get(self, server, path: str) -> tuple[int, str]:
        with urllib.request.urlopen(server.url + path,
                                    timeout=15) as response:
            return response.status, response.read().decode("utf-8")

    def test_stats_reports_shard_counters(self, server):
        status, body = self._get(server, "/stats")
        assert status == 200
        payload = json.loads(body)
        shards = payload["shards"]
        assert shards["n_shards"] == 3
        assert shards["partition"] == "hash"
        assert "executor" in shards

    def test_cohort_page_serves_from_shards(self, server):
        status, body = self._get(server, "/cohort?q=concept%20T90")
        assert status == 200
        assert "patients match" in body

    def test_executor_counters_advance(self, server):
        before = json.loads(self._get(server, "/stats")[1])
        self._get(server, "/cohort?q=sex%20F")
        after = json.loads(self._get(server, "/stats")[1])
        assert after["shards"]["executor"]["queries"] \
            > before["shards"]["executor"]["queries"]

    def test_patient_page_routes_through_owning_shard(self, server):
        status, body = self._get(server, "/cohort?q=concept%20T90")
        pid = body.split("/patient/")[1].split('"')[0]
        status, page = self._get(server, f"/patient/{pid}")
        assert status == 200
        assert "timeline" in page.lower()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
