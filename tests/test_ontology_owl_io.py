"""Round-trip tests for the OWL functional-syntax serializer."""

from __future__ import annotations

import pytest

from repro.errors import OntologyError
from repro.ontology.integration_ontology import build_integration_ontology
from repro.ontology.model import (
    Conjunction,
    DataHasValue,
    NamedClass,
    ObjectSomeValuesFrom,
    Ontology,
)
from repro.ontology.owl_io import from_functional_syntax, to_functional_syntax
from repro.ontology.presentation_ontology import build_presentation_ontology
from repro.ontology.reasoner import Reasoner


def sample_ontology() -> Ontology:
    ont = Ontology("sample")
    a = ont.declare_class("A")
    b = ont.declare_class("B")
    c = ont.declare_class("C")
    ont.declare_object_property("r")
    ont.declare_data_property("p")
    ont.subclass_of(a, b)
    ont.equivalent(c, Conjunction((a, ObjectSomeValuesFrom("r", b))))
    ont.disjoint(a, c)
    ont.subclass_of(DataHasValue("p", 'quote"inside'), a)
    ont.subclass_of(DataHasValue("p", 42), b)
    ont.subclass_of(DataHasValue("p", True), b)
    ont.subclass_of(DataHasValue("p", 2.5), b)
    x = ont.add_individual("x")
    x.assert_type(a)
    x.relate("r", "y")
    x.set_value("p", "hello world")
    ont.add_individual("y")
    return ont


def roundtrip(ont: Ontology) -> Ontology:
    return from_functional_syntax(to_functional_syntax(ont))


class TestRoundTrip:
    def test_structure_preserved(self):
        ont = sample_ontology()
        back = roundtrip(ont)
        assert set(back.classes) == set(ont.classes)
        assert set(back.object_properties) == set(ont.object_properties)
        assert set(back.data_properties) == set(ont.data_properties)
        assert len(back.axioms) == len(ont.axioms)
        assert set(back.individuals) == set(ont.individuals)

    def test_axioms_semantically_identical(self):
        ont = sample_ontology()
        back = roundtrip(ont)
        assert set(map(repr, back.axioms)) == set(map(repr, ont.axioms))

    def test_literal_types_survive(self):
        back = roundtrip(sample_ontology())
        values = {
            v for ax in back.axioms
            if hasattr(ax, "sub") and isinstance(ax.sub, DataHasValue)
            for v in [ax.sub.value]
        }
        assert 'quote"inside' in values
        assert 42 in values and True in values and 2.5 in values
        # bool must stay bool, not become int
        assert any(v is True for v in values)

    def test_individual_assertions_survive(self):
        back = roundtrip(sample_ontology())
        x = back.individuals["x"]
        assert NamedClass("A") in x.types
        assert ("r", "y") in x.object_assertions
        assert ("p", "hello world") in x.data_assertions

    def test_reasoning_agrees_after_roundtrip(self):
        ont = sample_ontology()
        r1 = Reasoner(ont)
        r2 = Reasoner(roundtrip(ont))
        for cls in ont.classes:
            assert r1.subsumers(cls) == r2.subsumers(cls)

    @pytest.mark.parametrize(
        "builder", [build_integration_ontology, build_presentation_ontology]
    )
    def test_paper_formalizations_roundtrip(self, builder):
        ont = builder()
        back = roundtrip(ont)
        assert set(back.classes) == set(ont.classes)
        assert len(back.axioms) == len(ont.axioms)


class TestParserErrors:
    def test_garbage_rejected(self):
        with pytest.raises(OntologyError):
            from_functional_syntax("not owl at all ;;;")

    def test_wrong_iri_rejected(self):
        with pytest.raises(OntologyError, match="IRI"):
            from_functional_syntax("Ontology(<urn:other:x>)")

    def test_unknown_construct_rejected(self):
        text = "Ontology(<urn:repro:x>\n  FancyAxiom(:A :B)\n)"
        with pytest.raises(OntologyError, match="unknown OWL construct"):
            from_functional_syntax(text)

    def test_truncated_document(self):
        ont = sample_ontology()
        text = to_functional_syntax(ont)
        with pytest.raises(OntologyError):
            from_functional_syntax(text[: len(text) // 2])
