"""Tests for the query AST and vectorized engine, cross-checked against a
naive object-model evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    CountAtLeast,
    EventAnd,
    EventNot,
    EventOr,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
    Source,
    TimeWindow,
    ValueRange,
)
from repro.query.engine import QueryEngine


class TestEventMasks:
    def test_code_match(self, small_engine):
        mask = small_engine.event_mask(CodeMatch("ICPC-2", "T90"))
        store = small_engine.store
        idx = store.systems["ICPC-2"].id_of("T90")
        assert mask.sum() == ((store.code == idx)
                              & (store.system == 0)).sum()

    def test_concept_spans_terminologies(self, small_engine):
        concept = small_engine.event_mask(Concept("T90"))
        icpc_only = small_engine.event_mask(CodeMatch("ICPC-2", "T90"))
        icd_only = small_engine.event_mask(CodeMatch("ICD-10", "E11|E14"))
        assert concept.sum() == (icpc_only | icd_only).sum()
        assert concept.sum() > icpc_only.sum() > 0

    def test_boolean_algebra(self, small_engine):
        a = Category("gp_contact")
        b = TimeWindow(15_400, 15_500)
        conj = small_engine.event_mask(EventAnd((a, b)))
        disj = small_engine.event_mask(EventOr((a, b)))
        neg = small_engine.event_mask(EventNot(a))
        ma = small_engine.event_mask(a)
        mb = small_engine.event_mask(b)
        assert (conj == (ma & mb)).all()
        assert (disj == (ma | mb)).all()
        assert (neg == ~ma).all()

    def test_operator_sugar(self, small_engine):
        sugar = small_engine.event_mask(
            Category("gp_contact") & TimeWindow(15_400, 15_500)
        )
        explicit = small_engine.event_mask(
            EventAnd((Category("gp_contact"), TimeWindow(15_400, 15_500)))
        )
        assert (sugar == explicit).all()

    def test_value_range(self, small_engine):
        mask = small_engine.event_mask(
            Category("blood_pressure") & ValueRange(160.0, 300.0)
        )
        values = small_engine.store.value[mask]
        assert (values >= 160.0).all()

    def test_empty_ranges_rejected(self):
        with pytest.raises(QueryError):
            ValueRange(10, 5)
        with pytest.raises(QueryError):
            TimeWindow(10, 5)
        with pytest.raises(QueryError):
            AgeRange(80, 40, at_day=0)


class TestPatientQueries:
    def test_has_event_equals_naive(self, small_engine):
        """Columnar result == scanning materialized histories."""
        expr = HasEvent(CodeMatch("ICPC-2", "K8[67]"))
        fast = set(small_engine.patients(expr).tolist())
        slow = set()
        store = small_engine.store
        for pid in store.patient_ids.tolist():
            history = store.materialize(pid)
            if any(c in ("K86", "K87") for c in history.codes("ICPC-2")):
                slow.add(pid)
        assert fast == slow

    def test_count_at_least_equals_naive(self, small_engine):
        expr = CountAtLeast(Category("gp_contact"), 10)
        fast = set(small_engine.patients(expr).tolist())
        store = small_engine.store
        slow = set()
        for pid in store.patient_ids.tolist():
            history = store.materialize(pid)
            n = sum(1 for p in history.points if p.category == "gp_contact")
            if n >= 10:
                slow.add(pid)
        assert fast == slow

    def test_event_expr_implicitly_wrapped(self, small_engine):
        raw = small_engine.patients(Category("hospital_stay"))
        wrapped = small_engine.patients(HasEvent(Category("hospital_stay")))
        assert (raw == wrapped).all()

    def test_set_algebra(self, small_engine):
        a = HasEvent(Concept("T90"))
        b = SexIs("F")
        both = small_engine.patients(PatientAnd((a, b)))
        either = small_engine.patients(PatientOr((a, b)))
        neither = small_engine.patients(PatientNot(PatientOr((a, b))))
        sa = set(small_engine.patients(a).tolist())
        sb = set(small_engine.patients(b).tolist())
        assert set(both.tolist()) == sa & sb
        assert set(either.tolist()) == sa | sb
        all_ids = set(small_engine.store.patient_ids.tolist())
        assert set(neither.tolist()) == all_ids - (sa | sb)

    def test_not_not_is_identity(self, small_engine):
        a = HasEvent(Concept("T90"))
        double = small_engine.patients(PatientNot(PatientNot(a)))
        assert (double == small_engine.patients(a)).all()

    def test_age_range(self, small_engine):
        at_day = 16_000
        ids = small_engine.patients(AgeRange(70, 200, at_day))
        store = small_engine.store
        for pid in ids.tolist():
            age = (at_day - store.birth_day_of(pid)) / 365.25
            assert age >= 70

    def test_sex_partition(self, small_engine):
        f = set(small_engine.patients(SexIs("F")).tolist())
        m = set(small_engine.patients(SexIs("M")).tolist())
        assert not (f & m)
        assert len(f) + len(m) == small_engine.store.n_patients

    def test_first_before(self, small_engine):
        cutoff = 15_500
        expr = FirstBefore(Concept("T90"), cutoff)
        ids = small_engine.patients(expr)
        store = small_engine.store
        mask = small_engine.event_mask(Concept("T90"))
        firsts = store.first_day_per_patient(mask)
        expected = sorted(p for p, d in firsts.items() if d <= cutoff)
        assert ids.tolist() == expected

    def test_selectivity_and_count(self, small_engine):
        expr = HasEvent(Concept("T90"))
        count = small_engine.count(expr)
        assert count == len(small_engine.patients(expr))
        assert small_engine.selectivity(expr) == pytest.approx(
            count / small_engine.store.n_patients
        )

    def test_results_sorted_unique(self, small_engine):
        ids = small_engine.patients(
            PatientOr((HasEvent(Concept("T90")), SexIs("F")))
        )
        assert (np.diff(ids) > 0).all()

    def test_unknown_node_rejected(self, small_engine):
        class Weird:  # neither EventExpr nor PatientExpr
            pass

        with pytest.raises(QueryError):
            small_engine.patients(Weird())  # type: ignore[arg-type]

    def test_source_query(self, small_engine):
        ids = small_engine.patients(Source("municipal_home_care"))
        assert len(ids) > 0
