"""The query static analyzer: every rule, and every wiring layer.

Covers the rule catalog of :mod:`repro.query.analyze` (QA101…QA209),
the engine gate (``analyze=True`` refuses error-severity queries with a
typed :class:`QueryAnalysisError` before touching event data), the
``explain()`` DIAGNOSTICS section, the CLI (``lint-query`` and
``query --lint``, exit code 4) and the webapp (400 on rejected
queries, warnings embedded, ``/analyze`` endpoint, ``/stats``
counters).  The acceptance bound — a catastrophic-backtracking pattern
rejected statically in under 100 ms — is asserted directly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.config import WorkbenchConfig
from repro.errors import QueryAnalysisError, QuerySyntaxError
from repro.io import save_store
from repro.query.analyze import AnalysisContext, Diagnostic, analyze_query
from repro.query.ast import (
    AgeRange,
    Category,
    CodeMatch,
    Concept,
    EventAnd,
    EventNot,
    EventOr,
    FirstBefore,
    HasEvent,
    PatientAnd,
    PatientNot,
    PatientOr,
    SexIs,
    Source,
    TimeWindow,
    ValueRange,
)
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.printer import to_text
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench

#: A pattern with genuinely exponential backtracking (nested ambiguous
#: quantifiers) — the acceptance criterion's crafted rejection target.
_REDOS = "(A+)+"


@pytest.fixture(scope="module")
def store():
    store, __ = generate_store_fast(300, seed=9)
    return store


def _rules(diagnostics: list) -> set:
    return {d.rule for d in diagnostics}


def _one(diagnostics: list, rule: str) -> Diagnostic:
    matches = [d for d in diagnostics if d.rule == rule]
    assert matches, f"{rule} not in {_rules(diagnostics)}"
    return matches[0]


# -- rule catalog ----------------------------------------------------------


def test_qa101_invalid_pattern():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", "K8["))),
                "QA101")
    assert diag.severity == "error"
    assert diag.path == "$.expr"


def test_qa102_nested_quantifier_is_error_with_hint():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", _REDOS))),
                "QA102")
    assert diag.severity == "error"
    assert diag.hint  # a fix-it suggestion, not just a complaint
    assert "A+" in diag.hint


def test_qa102_overlapping_alternation():
    diagnostics = analyze_query(HasEvent(CodeMatch("ICPC-2", "(T|TT)+9")))
    assert _one(diagnostics, "QA102").severity == "error"


def test_qa103_adjacent_quantifiers_warn():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", "T.*.*90"))),
                "QA103")
    assert diag.severity == "warning"


def test_qa104_impossible_alphabet():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", "t90"))),
                "QA104")
    assert diag.severity == "warning"
    assert diag.unsatisfiable
    assert "uppercase" in diag.message


def test_qa104_zero_known_codes():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", "ZZZ"))),
                "QA104")
    assert diag.unsatisfiable


def test_qa105_unknown_system_and_concept_are_errors():
    assert _one(analyze_query(HasEvent(CodeMatch("SNOMED", "T90"))),
                "QA105").severity == "error"
    assert _one(analyze_query(HasEvent(Concept("QQ99"))),
                "QA105").severity == "error"


def test_qa106_redundant_anchor_is_info():
    diag = _one(analyze_query(HasEvent(CodeMatch("ICPC-2", "^T90$"))),
                "QA106")
    assert diag.severity == "info"


def test_qa201_disjoint_value_ranges():
    query = HasEvent(EventAnd((ValueRange(0.0, 10.0),
                               ValueRange(20.0, 30.0))))
    diag = _one(analyze_query(query), "QA201")
    assert diag.severity == "warning"
    assert diag.unsatisfiable


def test_qa201_two_categories_conflict():
    query = HasEvent(EventAnd((Category("gp_contact"),
                               Category("prescription"))))
    assert _one(analyze_query(query), "QA201").unsatisfiable


def test_qa201_sex_contradiction():
    query = PatientAnd((SexIs("F"), SexIs("M")))
    assert _one(analyze_query(query), "QA201").unsatisfiable


def test_qa201_disjoint_code_selections():
    query = HasEvent(EventAnd((CodeMatch("ICPC-2", "T90"),
                               CodeMatch("ICPC-2", "K86"))))
    assert _one(analyze_query(query), "QA201").unsatisfiable


def test_qa201_disjoint_age_ranges():
    query = PatientAnd((AgeRange(0.0, 10.0, 15_000),
                        AgeRange(50.0, 60.0, 15_000)))
    assert _one(analyze_query(query), "QA201").unsatisfiable


def test_qa202_contradiction_folds_to_empty():
    atom = Concept("T90")
    diag = _one(analyze_query(HasEvent(EventAnd((atom, EventNot(atom))))),
                "QA202")
    assert diag.severity == "warning"
    assert diag.unsatisfiable


def test_qa203_tautology_folds_to_everything():
    atom = SexIs("F")
    diag = _one(analyze_query(PatientOr((atom, PatientNot(atom)))),
                "QA203")
    assert diag.severity == "warning"
    assert not diag.unsatisfiable


def test_qa204_double_negation():
    diag = _one(analyze_query(PatientNot(PatientNot(SexIs("F")))),
                "QA204")
    assert diag.severity == "info"


def test_qa205_unknown_category_and_source():
    diag = _one(analyze_query(HasEvent(Category("no_such_category"))),
                "QA205")
    assert diag.severity == "warning"
    assert diag.unsatisfiable
    assert _one(analyze_query(HasEvent(Source("no_such_source"))),
                "QA205").unsatisfiable


def test_qa206_defensive_empty_combinator():
    # EventAnd's constructor refuses < 2 children, so forge one the way
    # a buggy programmatic caller might.
    broken = object.__new__(EventAnd)
    object.__setattr__(broken, "children", (Concept("T90"),))
    diag = _one(analyze_query(HasEvent(broken)), "QA206")
    assert diag.severity == "warning"


def test_qa207_first_before_window_never_binds():
    query = FirstBefore(
        EventAnd((Concept("T90"), TimeWindow(15_100, 15_200))), 15_000
    )
    diag = _one(analyze_query(query), "QA207")
    assert diag.severity == "warning"
    assert not diag.unsatisfiable


def test_qa207_disjoint_time_windows_not_marked_unsat():
    # Interval events can span the gap between two windows, so this is
    # a "probably never binds" warning, NOT an unsatisfiability proof.
    query = HasEvent(EventAnd((TimeWindow(100, 200), TimeWindow(300, 400))))
    diag = _one(analyze_query(query), "QA207")
    assert not diag.unsatisfiable


def test_qa208_shadowed_clause():
    query = HasEvent(EventOr((CodeMatch("ICPC-2", "T90"),
                              CodeMatch("ICPC-2", "T9."))))
    diag = _one(analyze_query(query), "QA208")
    assert diag.severity == "warning"


def test_qa209_duplicate_siblings():
    atom = HasEvent(Concept("T90"))
    diag = _one(analyze_query(PatientAnd((atom, atom))), "QA209")
    assert diag.severity == "info"


def test_clean_query_has_no_diagnostics():
    query = parse_query("concept T90 and atleast 2 category gp_contact")
    assert analyze_query(query) == []


def test_diagnostics_sorted_errors_first():
    query = PatientAnd((
        HasEvent(CodeMatch("ICPC-2", "^ZZZ")),       # QA104 + QA106
        HasEvent(CodeMatch("SNOMED", "T90")),        # QA105 error
    ))
    diagnostics = analyze_query(query)
    severities = [d.severity for d in diagnostics]
    assert severities == sorted(
        severities, key={"error": 0, "warning": 1, "info": 2}.get
    )
    assert severities[0] == "error"


def test_diagnostic_json_shape():
    diag = analyze_query(HasEvent(CodeMatch("ICPC-2", "K8[")))[0]
    payload = diag.to_json()
    assert set(payload) == {
        "rule", "severity", "path", "message", "hint", "unsatisfiable"
    }
    json.dumps(payload)  # round-trippable


def test_context_from_store_matches_store_vocabulary(store):
    context = AnalysisContext.from_store(store)
    assert analyze_query(HasEvent(Category("gp_contact")), context) == []
    diagnostics = analyze_query(HasEvent(Category("bogus")), context)
    assert _one(diagnostics, "QA205").unsatisfiable


# -- acceptance bound ------------------------------------------------------


def test_redos_rejected_statically_under_100ms():
    query = HasEvent(CodeMatch("ICPC-2", _REDOS))
    analyze_query(query)  # warm any lazy imports
    start = time.perf_counter()
    diagnostics = analyze_query(query)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    assert any(d.rule == "QA102" and d.severity == "error"
               for d in diagnostics)
    assert elapsed_ms < 100.0, f"analysis took {elapsed_ms:.1f} ms"


# -- engine gate -----------------------------------------------------------


def test_engine_gate_refuses_error_queries(store):
    engine = QueryEngine(store, analyze=True)
    with pytest.raises(QueryAnalysisError) as excinfo:
        engine.patients(HasEvent(CodeMatch("ICPC-2", _REDOS)))
    assert any(d.rule == "QA102" for d in excinfo.value.diagnostics)
    assert "QA102" in str(excinfo.value)
    assert engine.analyzer_counters["errors"] >= 1


def test_engine_gate_lets_warnings_through(store):
    engine = QueryEngine(store, analyze=True)
    ids = engine.patients(HasEvent(Category("no_such_category")))
    assert len(ids) == 0
    assert engine.analyzer_counters["analyzed"] == 1
    assert engine.analyzer_counters["errors"] == 0


def test_engine_gate_off_by_default(store):
    engine = QueryEngine(store)
    # Pathological but satisfiable-in-principle queries still run when
    # the gate is off; only genuinely un-evaluable ones would raise.
    ids = engine.patients(HasEvent(Category("no_such_category")))
    assert len(ids) == 0
    assert engine.analyzer_counters["analyzed"] == 0


def test_workbench_config_enables_gate(store):
    wb = Workbench.from_store(
        store, config=WorkbenchConfig(analyze_queries=True)
    )
    with pytest.raises(QueryAnalysisError):
        wb.select(f"code icpc2 /{_REDOS}/")


def test_explain_has_diagnostics_section(store):
    engine = QueryEngine(store)
    clean = engine.explain(parse_query("concept T90"))
    assert "DIAGNOSTICS" in clean
    assert "none" in clean.split("DIAGNOSTICS")[1]
    dirty = engine.explain(HasEvent(CodeMatch("ICPC-2", "ZZZ")))
    assert "QA104" in dirty.split("DIAGNOSTICS")[1]


# -- CLI -------------------------------------------------------------------


def test_cli_lint_query_clean_exit_zero(capsys):
    assert cli_main(["lint-query", "concept T90"]) == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_cli_lint_query_error_exit_four(capsys):
    assert cli_main(["lint-query", f"code icpc2 /{_REDOS}/"]) == 4
    out = capsys.readouterr().out
    assert "QA102" in out and "hint:" in out


def test_cli_lint_query_json(capsys):
    assert cli_main(["lint-query", f"code icpc2 /{_REDOS}/",
                     "--json"]) == 4
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "QA102"
    assert payload[0]["severity"] == "error"


def test_cli_lint_query_warnings_exit_zero(capsys):
    assert cli_main(["lint-query", "category no_such_category"]) == 0
    assert "QA205" in capsys.readouterr().out


def test_cli_lint_query_with_store(tmp_path, store, capsys):
    path = str(tmp_path / "s.npz")
    save_store(store, path)
    assert cli_main(["lint-query", "category gp_contact",
                     "--store", path]) == 0


def test_cli_query_lint_rejects_before_evaluating(tmp_path, store,
                                                  capsys):
    path = str(tmp_path / "s.npz")
    save_store(store, path)
    code = cli_main(["query", path, f"code icpc2 /{_REDOS}/", "--lint"])
    captured = capsys.readouterr()
    assert code == 4
    assert "QA102" in captured.err
    assert "match" not in captured.out  # never evaluated


def test_cli_query_lint_warns_and_continues(tmp_path, store, capsys):
    path = str(tmp_path / "s.npz")
    save_store(store, path)
    code = cli_main(["query", path,
                     "concept T90 and concept T90", "--lint"])
    captured = capsys.readouterr()
    assert code == 0
    assert "QA209" in captured.err
    assert "patients match" in captured.out


# -- webapp ----------------------------------------------------------------


def _get(url: str):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture(scope="module")
def server(store):
    with WorkbenchServer(Workbench.from_store(store)) as srv:
        yield srv


def test_webapp_rejects_error_query_with_400(server):
    q = urllib.parse.quote(f"code icpc2 /{_REDOS}/")
    status, body = _get(f"{server.url}/cohort?q={q}")
    assert status == 400
    assert "QA102" in body and "hint" in body
    assert "patients match" not in body


def test_webapp_embeds_warnings_in_results(server):
    q = urllib.parse.quote("concept T90 and concept T90")
    status, body = _get(f"{server.url}/cohort?q={q}")
    assert status == 200
    assert "QA209" in body and "patients match" in body


def test_webapp_analyze_endpoint(server):
    q = urllib.parse.quote(f"code icpc2 /{_REDOS}/")
    status, body = _get(f"{server.url}/analyze?q={q}")
    assert status == 200
    payload = json.loads(body)
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["rule"] == "QA102"

    status, body = _get(f"{server.url}/analyze?q=concept+T90")
    assert json.loads(body) == {"query": "concept T90", "ok": True,
                                "diagnostics": []}


def test_webapp_stats_reports_analyzer_counters(server):
    status, body = _get(f"{server.url}/stats")
    assert status == 200
    counters = json.loads(body)["analyzer"]
    assert counters["analyzed"] >= 1
    assert counters["errors"] >= 1  # the rejected cohort request above


# -- satellite regressions: parser, printer, regex_select ------------------


def test_parser_unterminated_regex_caret_position():
    with pytest.raises(QuerySyntaxError) as excinfo:
        parse_query("code icpc2 /T90")
    message = str(excinfo.value)
    assert "unterminated regex literal" in message
    # The caret block points at the opening slash.
    caret_line = message.splitlines()[-1]
    assert caret_line.index("^") == 2 + len("code icpc2 ")


def test_parser_printer_roundtrip_escaped_slash():
    for pattern in ("T90", "a/b", "a\\/b", "\\d+", "a\\\\b", "K8."):
        query = HasEvent(CodeMatch("ICPC-2", pattern))
        text = to_text(query)
        assert parse_query(text) == query, (pattern, text)


def test_regex_select_rejects_bad_fragment():
    from repro.errors import TerminologyError
    from repro.terminology import any_of

    with pytest.raises(TerminologyError, match="K8\\["):
        any_of("T90", "K8[")


def test_regex_select_any_of_codes_escapes_metacharacters():
    import re

    from repro.terminology import any_of_codes

    pattern = any_of_codes("N39.0", "K86")
    assert re.fullmatch(pattern, "N39.0")
    assert not re.fullmatch(pattern, "N3900")  # the dot is literal


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
