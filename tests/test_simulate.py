"""Tests for the synthetic-data substrate: population, trajectories,
noise, fast path and recall model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulate.conditions import ACUTE_CONDITIONS, CONDITIONS
from repro.simulate.fast import generate_store_fast
from repro.simulate.noise import NoiseConfig
from repro.simulate.population import generate_population
from repro.simulate.recall import RecallOutcome, run_recognition_study
from repro.simulate.trajectories import StudyWindow, generate_raw_sources
from repro.terminology import atc, icd10, icpc2


class TestConditionCatalog:
    def test_all_codes_exist_in_terminologies(self):
        for model in CONDITIONS:
            assert model.icpc2 in icpc2(), model.name
            assert model.icd10 in icd10(), model.name
            for med in model.medications:
                assert med in atc(), (model.name, med)
            for symptom in model.symptoms:
                assert symptom in icpc2(), (model.name, symptom)
        for model in ACUTE_CONDITIONS:
            assert model.icpc2 in icpc2(), model.name
            assert model.icd10 in icd10(), model.name

    def test_comorbidity_targets_exist(self):
        names = {m.name for m in CONDITIONS}
        for model in CONDITIONS:
            for target in model.comorbidity_boost:
                # targets may be pseudo-flags (e.g. fracture_risk); real
                # condition targets must resolve
                if target in names:
                    assert target in names


class TestPopulation:
    def test_deterministic(self):
        a = generate_population(100, seed=5)
        b = generate_population(100, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_population(100, seed=5)
        b = generate_population(100, seed=6)
        assert a != b

    def test_size_and_ids(self):
        patients = generate_population(50, seed=1)
        assert len(patients) == 50
        assert [p.patient_id for p in patients] == list(
            range(100_000, 100_050)
        )

    def test_prevalence_increases_with_age(self):
        patients = generate_population(8_000, seed=2)
        window = StudyWindow.for_year(2012)
        old = [p for p in patients
               if (window.start_day - p.birth_day) / 365.25 >= 70]
        young = [p for p in patients
                 if (window.start_day - p.birth_day) / 365.25 < 40]
        mean_old = np.mean([p.n_conditions for p in old])
        mean_young = np.mean([p.n_conditions for p in young])
        assert mean_old > mean_young * 1.5

    def test_bad_size_rejected(self):
        with pytest.raises(SimulationError):
            generate_population(0)


class TestRawSources:
    def test_deterministic(self):
        a = generate_raw_sources(50, seed=3)
        b = generate_raw_sources(50, seed=3)
        assert a.gp_claims == b.gp_claims
        assert a.hospital_episodes == b.hospital_episodes

    def test_all_source_types_produced(self, raw_sources):
        assert raw_sources.gp_claims
        assert raw_sources.hospital_episodes
        assert raw_sources.municipal_records
        assert raw_sources.specialist_claims
        assert raw_sources.total_records() > 1_000

    def test_noise_rates_respected(self, raw_sources):
        bad_dates = sum(
            1 for claim in raw_sources.gp_claims
            if not _parses(claim.contact_date)
        )
        rate = bad_dates / len(raw_sources.gp_claims)
        assert 0.0 < rate < 0.02  # configured at 0.002 + mangled variants

    def test_noise_can_be_disabled(self):
        raw = generate_raw_sources(100, seed=3, noise=NoiseConfig.none())
        assert all(_parses(c.contact_date) for c in raw.gp_claims)

    def test_dates_inside_window(self, raw_sources):
        from repro.sources.parsed import parse_iso_date

        for episode in raw_sources.hospital_episodes[:200]:
            day = parse_iso_date(episode.admitted)
            assert raw_sources.window.start_day <= day \
                <= raw_sources.window.end_day


def _parses(raw: str) -> bool:
    from repro.errors import SourceFormatError
    from repro.sources.parsed import parse_norwegian_date

    try:
        parse_norwegian_date(raw)
        return True
    except SourceFormatError:
        return False


class TestFastPath:
    def test_deterministic(self):
        a, __ = generate_store_fast(500, seed=9)
        b, __ = generate_store_fast(500, seed=9)
        assert (a.patient == b.patient).all()
        assert (a.day == b.day).all()
        assert (a.code == b.code).all()

    def test_store_is_sorted_by_patient_day(self, small_store):
        assert (np.diff(small_store.patient) >= 0).all()
        same_patient = np.diff(small_store.patient) == 0
        assert (np.diff(small_store.day)[same_patient] >= 0).all()

    def test_matches_full_path_statistics(self):
        """The fast path's per-condition prevalence must agree with the
        full-fidelity path within sampling error (DESIGN.md §2)."""
        n = 3_000
        __, summary = generate_store_fast(n, seed=11)
        population = generate_population(n, seed=11)
        full_counts = {m.name: 0 for m in CONDITIONS}
        for patient in population:
            for name in patient.conditions:
                full_counts[name] += 1
        for name, fast_count in summary.patients_per_condition.items():
            full_count = full_counts[name]
            spread = 4 * np.sqrt(max(full_count, fast_count) + 10)
            assert abs(fast_count - full_count) <= spread, (
                name, fast_count, full_count
            )

    def test_diabetes_selectivity_near_paper(self):
        """~7.7% of the population (13k of 168k) is the paper's anchor."""
        store, summary = generate_store_fast(20_000, seed=42)
        share = summary.patients_per_condition["diabetes_t2"] / 20_000
        assert 0.06 <= share <= 0.095

    def test_bad_size_rejected(self):
        with pytest.raises(SimulationError):
            generate_store_fast(0)


class TestRecall:
    def test_marginals_match_paper(self, small_store, window):
        """92 / 7 / 1 within tolerance (experiment E6's assertion)."""
        ids = small_store.patient_ids.tolist()
        study = run_recognition_study(small_store, ids, window.end_day,
                                      seed=1)
        pct = study.as_percentages()
        assert pct["recognized"] == pytest.approx(92.0, abs=2.5)
        assert pct["did_not_remember"] == pytest.approx(7.0, abs=2.5)
        assert pct["all_wrong"] == pytest.approx(1.0, abs=0.7)

    def test_counts_sum_to_n(self, small_store, window):
        ids = small_store.patient_ids[:500].tolist()
        study = run_recognition_study(small_store, ids, window.end_day,
                                      seed=2)
        assert sum(study.counts.values()) == study.n_patients == 500

    def test_deterministic_in_seed(self, small_store, window):
        ids = small_store.patient_ids[:500].tolist()
        a = run_recognition_study(small_store, ids, window.end_day, seed=3)
        b = run_recognition_study(small_store, ids, window.end_day, seed=3)
        assert a.counts == b.counts

    def test_elderly_forget_more(self, small_store, window):
        ages = (window.end_day - small_store.birth_days) / 365.25
        old_ids = small_store.patient_ids[ages >= 80].tolist()
        young_ids = small_store.patient_ids[ages <= 45].tolist()
        old = run_recognition_study(small_store, old_ids, window.end_day,
                                    seed=4)
        young = run_recognition_study(small_store, young_ids, window.end_day,
                                      seed=4)
        assert old.fraction(RecallOutcome.DID_NOT_REMEMBER) > young.fraction(
            RecallOutcome.DID_NOT_REMEMBER
        )


class TestSeasonality:
    def test_winter_peaked_conditions_peak_in_winter(self, small_store):
        import numpy as np

        from repro.temporal.timeline import from_day_number

        mask = small_store.mask_pattern("ICPC-2", "R80")  # influenza
        months = np.array([
            from_day_number(int(d)).month
            for d in small_store.day[mask]
        ])
        winter = np.isin(months, (12, 1, 2)).mean()
        summer = np.isin(months, (6, 7, 8)).mean()
        assert winter > 2.0 * summer

    def test_flat_conditions_stay_flat(self, small_store):
        import numpy as np

        from repro.temporal.timeline import from_day_number

        mask = small_store.mask_pattern("ICPC-2", "U71")  # cystitis
        months = np.array([
            from_day_number(int(d)).month
            for d in small_store.day[mask]
        ])
        winter = np.isin(months, (12, 1, 2)).mean()
        summer = np.isin(months, (6, 7, 8)).mean()
        assert abs(winter - summer) < 0.1

    def test_seasonal_weights_mean_near_one(self):
        import numpy as np

        from repro.simulate.conditions import seasonal_weights

        days = np.arange(0, 3653)  # ten years
        weights = seasonal_weights(days, 6.0)
        assert abs(float(weights.mean()) - 1.0) < 0.02
        assert weights.min() > 0.0

    def test_flat_factor_identity(self):
        import numpy as np

        from repro.simulate.conditions import seasonal_weights

        days = np.arange(0, 365)
        assert (seasonal_weights(days, 1.0) == 1.0).all()
