"""Tests for Allen's interval algebra, including algebraic property tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal.allen import (
    ALL_RELATIONS,
    AllenRelation,
    compose,
    compose_sets,
    invert_set,
    relation_between,
)
from repro.temporal.timeline import Interval

intervals = st.builds(
    lambda start, length: Interval(start, start + length),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=1, max_value=200),
)


class TestRelationBetween:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((0, 5), (10, 20), AllenRelation.BEFORE),
            ((0, 5), (5, 10), AllenRelation.MEETS),
            ((0, 8), (5, 12), AllenRelation.OVERLAPS),
            ((0, 5), (0, 10), AllenRelation.STARTS),
            ((3, 5), (0, 10), AllenRelation.DURING),
            ((5, 10), (0, 10), AllenRelation.FINISHES),
            ((0, 10), (0, 10), AllenRelation.EQUALS),
            ((10, 20), (0, 5), AllenRelation.AFTER),
            ((5, 10), (0, 5), AllenRelation.MET_BY),
            ((5, 12), (0, 8), AllenRelation.OVERLAPPED_BY),
            ((0, 10), (0, 5), AllenRelation.STARTED_BY),
            ((0, 10), (3, 5), AllenRelation.CONTAINS),
            ((0, 10), (5, 10), AllenRelation.FINISHED_BY),
        ],
    )
    def test_all_13_basic_cases(self, a, b, expected):
        assert relation_between(Interval(*a), Interval(*b)) == expected

    @given(intervals, intervals)
    def test_exactly_one_relation_holds(self, a, b):
        relation = relation_between(a, b)
        assert relation in ALL_RELATIONS

    @given(intervals, intervals)
    def test_inverse_law(self, a, b):
        assert relation_between(b, a) == relation_between(a, b).inverse


class TestComposition:
    def test_known_entries(self):
        b = AllenRelation.BEFORE
        assert compose(b, b) == frozenset({b})
        assert compose(AllenRelation.DURING, b) == frozenset({b})
        o = AllenRelation.OVERLAPS
        assert compose(o, o) == frozenset({b, AllenRelation.MEETS, o})

    def test_before_after_is_everything(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.AFTER) == frozenset(
            ALL_RELATIONS
        )

    def test_equals_is_identity(self):
        e = AllenRelation.EQUALS
        for r in ALL_RELATIONS:
            assert compose(e, r) == frozenset({r})
            assert compose(r, e) == frozenset({r})

    def test_composition_never_empty(self):
        for r1 in ALL_RELATIONS:
            for r2 in ALL_RELATIONS:
                assert compose(r1, r2)

    def test_converse_of_composition(self):
        """(R1;R2)^-1 == R2^-1 ; R1^-1 — a theorem of the algebra."""
        for r1 in ALL_RELATIONS:
            for r2 in ALL_RELATIONS:
                lhs = invert_set(compose(r1, r2))
                rhs = compose(r2.inverse, r1.inverse)
                assert lhs == rhs, (r1, r2)

    @given(intervals, intervals, intervals)
    def test_soundness_against_concrete_intervals(self, a, b, c):
        """The actually-holding A-C relation is always in comp(A-B, B-C)."""
        r_ab = relation_between(a, b)
        r_bc = relation_between(b, c)
        r_ac = relation_between(a, c)
        assert r_ac in compose(r_ab, r_bc)

    def test_compose_sets_unions(self):
        first = frozenset({AllenRelation.BEFORE, AllenRelation.MEETS})
        second = frozenset({AllenRelation.BEFORE})
        assert compose_sets(first, second) == frozenset({AllenRelation.BEFORE})


class TestInverses:
    def test_involution(self):
        for r in ALL_RELATIONS:
            assert r.inverse.inverse == r

    def test_equals_self_inverse(self):
        assert AllenRelation.EQUALS.inverse == AllenRelation.EQUALS

    def test_invert_set(self):
        s = frozenset({AllenRelation.BEFORE, AllenRelation.STARTS})
        assert invert_set(s) == frozenset(
            {AllenRelation.AFTER, AllenRelation.STARTED_BY}
        )
