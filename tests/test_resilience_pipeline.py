"""Integration-pipeline behaviour under injected faults.

Covers the ISSUE-1 acceptance scenario: with a 10% corrupt GP feed and a
fully-down municipal registry, ``IntegrationPipeline.run`` completes
without raising, reports the down source as degraded, dead-letters every
corrupt record with a reason, and replay-after-repair reproduces the
fault-free store exactly.
"""

from __future__ import annotations

import pytest

from repro.config import ResilienceConfig
from repro.errors import (
    CircuitOpenError,
    RetryExhaustedError,
    SourceUnavailableError,
)
from repro.io import merge_stores
from repro.resilience.circuit import CLOSED, OPEN
from repro.resilience.faults import FaultPlan, FaultySource, repair_record
from repro.resilience.quarantine import QuarantineStore
from repro.simulate import generate_raw_sources
from repro.sources.integrate import IntegrationPipeline


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_pipeline(horizon_day, clock=None, **config):
    clock = clock or FakeClock()
    return IntegrationPipeline(
        horizon_day,
        resilience=ResilienceConfig(**config),
        clock=clock,
        sleep=clock.sleep,
    )


@pytest.fixture(scope="module")
def raw():
    return generate_raw_sources(60, seed=7)


@pytest.fixture(scope="module")
def baseline(raw):
    """The fault-free run everything is compared against."""
    pipeline = make_pipeline(raw.window.end_day)
    return pipeline.run(
        raw.patients, raw.gp_claims, raw.hospital_episodes,
        raw.municipal_records, raw.specialist_claims,
    )


class TestTransientFaults:
    def test_retries_recover_every_record(self, raw, baseline):
        store0, report0 = baseline
        faulty_gp = FaultySource(
            raw.gp_claims,
            FaultPlan(seed=13, transient_rate=0.2, transient_failures=2),
            source="gp_claims",
        )
        pipeline = make_pipeline(raw.window.end_day)
        store, report = pipeline.run(
            raw.patients, faulty_gp, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        assert report.retries > 0
        assert report.failed_reads == 0
        assert not report.is_degraded
        assert store.content_equal(store0)

    def test_transient_runs_are_deterministic(self, raw):
        def run():
            faulty_gp = FaultySource(
                raw.gp_claims,
                FaultPlan(seed=13, transient_rate=0.2),
                source="gp_claims",
            )
            pipeline = make_pipeline(raw.window.end_day)
            return pipeline.run(raw.patients, gp_claims=faulty_gp)

        (store_a, report_a), (store_b, report_b) = run(), run()
        assert report_a.retries == report_b.retries
        assert store_a.content_equal(store_b)

    def test_exhausted_transients_degrade_not_crash(self, raw):
        # More consecutive failures per record than the retry budget:
        # reads fail until the breaker opens; the run still completes.
        faulty_gp = FaultySource(
            raw.gp_claims,
            FaultPlan(seed=13, transient_rate=1.0, transient_failures=99),
            source="gp_claims",
        )
        pipeline = make_pipeline(raw.window.end_day,
                                 max_retries=1, failure_threshold=3)
        store, report = pipeline.run(
            raw.patients, faulty_gp,
            hospital_episodes=raw.hospital_episodes,
        )
        assert "gp_claims" in report.degraded_sources
        assert report.failed_reads == 3  # bounded by the threshold
        assert store.n_events > 0  # hospital data still loaded


class TestDownSource:
    def test_down_source_degrades_and_rest_complete(self, raw, baseline):
        store0, __ = baseline
        down = FaultySource(raw.municipal_records, FaultPlan(seed=4, down=True),
                            source="municipal_records")
        pipeline = make_pipeline(raw.window.end_day)
        store, report = pipeline.run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            down, raw.specialist_claims,
        )
        assert list(report.degraded_sources) == ["municipal_records"]
        assert "registry down" in report.degraded_sources["municipal_records"]
        assert 0 < store.n_events < store0.n_events
        assert report.patients == len(raw.patients)

    def test_fail_fast_raises(self, raw):
        down = FaultySource(raw.municipal_records, FaultPlan(seed=4, down=True),
                            source="municipal_records")
        pipeline = make_pipeline(raw.window.end_day, fail_fast=True)
        with pytest.raises(SourceUnavailableError):
            pipeline.run(raw.patients, municipal_records=down)

    def test_feed_dying_midway_keeps_the_prefix(self, raw):
        dying = FaultySource(raw.gp_claims, FaultPlan(seed=2, fail_after=10),
                             source="gp_claims")
        pipeline = make_pipeline(raw.window.end_day, failure_threshold=1)
        store, report = pipeline.run(raw.patients, gp_claims=dying)
        assert "gp_claims" in report.degraded_sources
        assert store.n_events > 0  # the 10 delivered records made it in


class TestBreakerAcrossRuns:
    def test_open_breaker_skips_next_run_then_recovers(self, raw):
        clock = FakeClock()
        pipeline = make_pipeline(raw.window.end_day, clock=clock,
                                 failure_threshold=2, recovery_timeout_s=60.0)
        down = FaultySource(raw.gp_claims, FaultPlan(seed=1, down=True),
                            source="gp_claims")
        __, report1 = pipeline.run(raw.patients, gp_claims=down)
        assert pipeline.breaker("gp_claims").state == OPEN
        assert report1.failed_reads == 2

        # Second run, still inside the recovery timeout: skipped outright,
        # without burning retries against the dead registry.
        __, report2 = pipeline.run(raw.patients, gp_claims=down)
        assert "circuit open since an earlier run" in (
            report2.degraded_sources["gp_claims"]
        )
        assert report2.failed_reads == 0

        # After the timeout a healthy source closes the breaker again.
        clock.advance(60.0)
        store3, report3 = pipeline.run(raw.patients, gp_claims=raw.gp_claims)
        assert not report3.is_degraded
        assert pipeline.breaker("gp_claims").state == CLOSED
        assert store3.n_events > 0


class TestFailureTruncation:
    def test_messages_cap_but_count_survives(self, raw):
        faulty_gp = FaultySource(
            raw.gp_claims, FaultPlan(seed=3, corrupt_rate=1.0),
            source="gp_claims",
        )
        pipeline = make_pipeline(raw.window.end_day, max_failure_messages=20)
        __, report = pipeline.run(raw.patients, gp_claims=faulty_gp)
        assert len(report.failures) == 20
        assert report.failed_records == len(raw.gp_claims)
        assert report.failures_truncated == report.failed_records - 20
        assert "truncated" in report.format_summary()


class TestAcceptanceScenario:
    """ISSUE-1's end-to-end criterion, verbatim."""

    def test_corrupt_plus_down_completes_and_replays(self, raw, tmp_path):
        # Reference: the same three healthy sources, no municipal feed.
        reference, __ = make_pipeline(raw.window.end_day).run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            (), raw.specialist_claims,
        )

        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        faulty_gp = FaultySource(
            raw.gp_claims,
            FaultPlan(seed=3, corrupt_rate=0.10, transient_rate=0.05),
            source="gp_claims",
        )
        down = FaultySource(raw.municipal_records, FaultPlan(seed=4, down=True),
                            source="municipal_records")
        clock = FakeClock()
        pipeline = IntegrationPipeline(
            raw.window.end_day,
            resilience=ResilienceConfig(),
            quarantine=quarantine,
            clock=clock, sleep=clock.sleep,
        )
        # 1. completes without raising
        store, report = pipeline.run(
            raw.patients, faulty_gp, raw.hospital_episodes,
            down, raw.specialist_claims,
        )
        # 2. the down source is reported degraded
        assert "municipal_records" in report.degraded_sources
        # 3. every corrupt record is quarantined, with its reason
        injected = faulty_gp.corrupted_records
        assert len(injected) > 0
        assert len(quarantine) >= len(injected)
        quarantined_dates = {
            item.record.contact_date for item in quarantine.records()
            if item.source == "gp_claims"
        }
        assert {r.contact_date for r in injected} <= quarantined_dates
        assert all(item.reason for item in quarantine.records())
        # 4. replay after repair reproduces the fault-free result
        quarantine.repair(repair_record)
        replayed, __ = quarantine.replay(
            make_pipeline(raw.window.end_day), raw.patients
        )
        merged = merge_stores(store, replayed, deduplicate_events=True)
        assert merged.content_equal(reference)


class TestErrorTypes:
    def test_retry_exhausted_is_a_source_unavailable(self):
        exc = RetryExhaustedError("gp_claims", 4, "boom")
        assert isinstance(exc, SourceUnavailableError)
        assert exc.attempts == 4
        assert "4 attempt" in str(exc)

    def test_circuit_open_is_a_source_unavailable(self):
        exc = CircuitOpenError("gp_claims", "too many failures")
        assert isinstance(exc, SourceUnavailableError)
        assert not exc.transient
