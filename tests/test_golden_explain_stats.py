"""Golden tests: ``query --explain``, ``/stats`` and ``lint-query``.

Plan formatting (including its DIAGNOSTICS section), the stats payload
and the analyzer's ``lint-query --json`` report are consumed by humans
and scripts respectively; all are pinned byte-for-byte against golden
files so they cannot drift silently.  Regenerate intentionally with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_explain_stats.py
"""

from __future__ import annotations

import json
import os
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.io import save_store
from repro.simulate.fast import generate_store_fast
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The pinned scenario: a seeded store and a two-clause refinement query.
_SEED_PATIENTS, _SEED = 300, 9
_QUERY = "concept T90 and atleast 2 category gp_contact"

#: A query tripping several analyzer rules whose messages carry no
#: timing evidence, so the JSON report is byte-stable.
_LINT_QUERY = "code icpc2 /^ZZZ/ and category no_such_category"


def _golden_store():
    store, __ = generate_store_fast(_SEED_PATIENTS, seed=_SEED)
    return store


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{name} drifted from its golden file; if the change is "
        f"intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_query_explain_output_pinned(tmp_path, capsys):
    store_path = str(tmp_path / "golden.npz")
    save_store(_golden_store(), store_path)
    # --repeat 2 so the explain tree shows warm-cache residency.
    assert cli_main(["query", store_path, _QUERY,
                     "--explain", "--repeat", "2"]) == 0
    _check_golden("query_explain.txt", capsys.readouterr().out)


def test_query_no_optimize_count_matches(tmp_path, capsys):
    """The naive path agrees with the pinned optimized count."""
    store_path = str(tmp_path / "golden.npz")
    save_store(_golden_store(), store_path)
    assert cli_main(["query", store_path, _QUERY, "--no-optimize"]) == 0
    naive_line = capsys.readouterr().out.splitlines()[0]
    golden = (GOLDEN_DIR / "query_explain.txt").read_text(encoding="utf-8")
    assert naive_line == golden.splitlines()[0]


def test_lint_query_json_pinned(capsys):
    assert cli_main(["lint-query", _LINT_QUERY, "--json"]) == 0
    _check_golden("lint_query.json", capsys.readouterr().out)


def test_explain_diagnostics_section_pinned(tmp_path, capsys):
    """The DIAGNOSTICS block of --explain for a flagged query."""
    store_path = str(tmp_path / "golden.npz")
    save_store(_golden_store(), store_path)
    assert cli_main(["query", store_path, _LINT_QUERY,
                     "--explain"]) == 0
    out = capsys.readouterr().out
    section = out[out.index("DIAGNOSTICS"):]
    _check_golden("explain_diagnostics.txt", section)


def test_stats_json_pinned():
    wb = Workbench.from_store(_golden_store())
    with WorkbenchServer(wb) as server:
        encoded = _QUERY.replace(" ", "+")
        cohort_url = f"{server.url}/cohort?q={encoded}"
        # The second identical request never re-executes the plan: the
        # HTTP layer serves the rendered body from the response cache.
        for __ in range(2):
            with urllib.request.urlopen(cohort_url) as response:
                assert response.status == 200
        # The same plan through a different route *does* execute — and
        # lands a query-cache hit (plan results are shared per process).
        svg_url = f"{server.url}/timeline.svg?q={encoded}"
        with urllib.request.urlopen(svg_url) as response:
            assert response.status == 200
        with urllib.request.urlopen(f"{server.url}/stats") as response:
            assert response.status == 200
            body = response.read().decode("utf-8")
    payload = json.loads(body)
    assert payload["query_cache"]["hits"] > 0  # the warm timeline select
    assert payload["http_cache"]["response_cache"]["hits"] > 0
    assert payload["http_cache"]["queries_executed"] == 2
    pretty = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    _check_golden("stats.json", pretty)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
