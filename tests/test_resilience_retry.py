"""Tests for retry policies, deadlines and circuit breakers."""

from __future__ import annotations

import random

import pytest

from repro.config import ResilienceConfig
from repro.errors import (
    CircuitOpenError,
    RetryExhaustedError,
    SourceUnavailableError,
)
from repro.resilience.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.retry import Deadline, RetryPolicy, call_with_retry


class FakeClock:
    """A controllable monotonic clock; sleeping advances it."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def flaky(failures: int, result: str = "ok", transient: bool = True):
    """A callable that fails ``failures`` times, then succeeds."""
    state = {"left": failures}

    def call():
        if state["left"] > 0:
            state["left"] -= 1
            raise SourceUnavailableError("reg", "flaky", transient=transient)
        return result

    return call


class TestRetryPolicy:
    def test_deterministic_given_seed(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        a = [policy.delay_for(i, random.Random(9)) for i in range(4)]
        b = [policy.delay_for(i, random.Random(9)) for i in range(4)]
        assert a == b

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.4, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_for(i, rng) for i in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.5)
        rng = random.Random(3)
        for attempt in range(8):
            delay = policy.delay_for(attempt, rng)
            assert 0.5 <= delay <= 1.0

    def test_from_config(self):
        config = ResilienceConfig(max_retries=7, backoff_base_s=0.2)
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 7
        assert policy.backoff_base_s == 0.2


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        result = call_with_retry(
            flaky(2), RetryPolicy(max_retries=3, jitter=0.0),
            source="reg", rng=random.Random(1), sleep=clock.sleep,
        )
        assert result == "ok"
        assert len(clock.sleeps) == 2

    def test_permanent_error_not_retried(self):
        clock = FakeClock()
        with pytest.raises(SourceUnavailableError) as exc:
            call_with_retry(
                flaky(1, transient=False), RetryPolicy(max_retries=5),
                source="reg", rng=random.Random(1), sleep=clock.sleep,
            )
        assert not isinstance(exc.value, RetryExhaustedError)
        assert clock.sleeps == []

    def test_exhaustion_raises_and_counts_attempts(self):
        clock = FakeClock()
        with pytest.raises(RetryExhaustedError) as exc:
            call_with_retry(
                flaky(99), RetryPolicy(max_retries=2, jitter=0.0),
                source="reg", rng=random.Random(1), sleep=clock.sleep,
            )
        assert exc.value.attempts == 3
        assert exc.value.source == "reg"
        assert len(clock.sleeps) == 2  # never sleeps after the last try
        assert isinstance(exc.value, SourceUnavailableError)  # breaker-visible

    def test_deadline_cuts_retries_short(self):
        clock = FakeClock()
        deadline = Deadline(0.05, clock)
        with pytest.raises(RetryExhaustedError) as exc:
            call_with_retry(
                flaky(99),
                RetryPolicy(max_retries=10, backoff_base_s=0.1, jitter=0.0),
                source="reg", rng=random.Random(1), sleep=clock.sleep,
                deadline=deadline,
            )
        assert "deadline" in str(exc.value)
        assert clock.sleeps == []  # first 0.1s delay already over budget

    def test_on_retry_callback_sees_each_attempt(self):
        clock = FakeClock()
        seen: list[int] = []
        call_with_retry(
            flaky(2), RetryPolicy(max_retries=3, jitter=0.0),
            source="reg", rng=random.Random(1), sleep=clock.sleep,
            on_retry=lambda attempt, delay: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_never_expiring_deadline(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker("reg", failure_threshold=3, clock=clock)
        for __ in range(2):
            breaker.record_failure("boom")
        assert breaker.state == CLOSED
        breaker.record_failure("boom")
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.last_reason == "boom"

    def test_success_resets_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker("reg", failure_threshold=2, clock=clock)
        breaker.record_failure("a")
        breaker.record_success()
        breaker.record_failure("b")
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker("reg", failure_threshold=1,
                                 recovery_timeout_s=10.0, clock=clock)
        breaker.record_failure("down")
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("reg", failure_threshold=1,
                                 recovery_timeout_s=10.0, clock=clock)
        breaker.record_failure("down")
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure("still down")
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN  # full fresh timeout

    def test_call_wrapper(self):
        clock = FakeClock()
        breaker = CircuitBreaker("reg", failure_threshold=1, clock=clock)
        with pytest.raises(SourceUnavailableError):
            breaker.call(flaky(1, transient=False))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never reached")

    def test_from_config(self):
        config = ResilienceConfig(failure_threshold=9,
                                  recovery_timeout_s=1.5)
        breaker = CircuitBreaker.from_config("reg", config)
        assert breaker.failure_threshold == 9
        assert breaker.recovery_timeout_s == 1.5

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("reg", failure_threshold=0)


class TestDeadline:
    def test_zero_budget_is_born_expired(self):
        clock = FakeClock()
        deadline = Deadline(0.0, clock=clock)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_negative_budget_is_born_expired(self):
        clock = FakeClock()
        deadline = Deadline(-5.0, clock=clock)
        assert deadline.expired()
        assert deadline.remaining() == -5.0

    def test_none_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")

    def test_expires_exactly_at_boundary(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.advance(1.999)
        assert not deadline.expired()
        clock.advance(0.001)
        assert deadline.expired()
        clock.advance(1.0)
        assert deadline.remaining() == pytest.approx(-1.0)
