"""Tests for the layered crossing-reduction layout and code search /
highlight features."""

from __future__ import annotations

import pytest

from repro.nsepter import (
    build_graph,
    layered_layout,
    layout_graph,
    merge_by_regex,
    readability_metrics,
    recursive_neighbour_merge,
)
from repro.terminology import atc, icd10, icpc2
from repro.errors import TerminologyError
from repro.viz.timeline_view import TimelineConfig, TimelineView
from repro.query.ast import Concept


class TestLayeredLayout:
    @pytest.fixture(scope="class")
    def merged_graph(self, small_store):
        ids = small_store.patients_matching(
            small_store.mask_pattern("ICPC-2", "T90")
        )[:60].tolist()
        graph = build_graph(small_store.to_cohort(ids))
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=1)
        return graph

    def test_reduces_crossings_vs_naive(self, merged_graph):
        naive = readability_metrics(layout_graph(merged_graph),
                                    max_pairs=300_000)
        layered = readability_metrics(layered_layout(merged_graph, 6),
                                      max_pairs=300_000)
        assert layered.edge_crossings < naive.edge_crossings

    def test_every_node_positioned(self, merged_graph):
        layout = layered_layout(merged_graph)
        assert set(layout.positions) == {
            merged_graph.find(n) for n in merged_graph.nodes()
        }

    def test_nodes_in_a_layer_never_overlap(self, merged_graph):
        layout = layered_layout(merged_graph)
        seen: set[tuple[float, float]] = set()
        for position in layout.positions.values():
            assert position not in seen
            seen.add(position)

    def test_deterministic(self, merged_graph):
        a = layered_layout(merged_graph, 4)
        b = layered_layout(merged_graph, 4)
        assert a.positions == b.positions


class TestDisplaySearch:
    def test_lifelines_search_example(self):
        """Section II-D1: searching a word finds related items across
        terminologies."""
        hits = icpc2().search_display("diabetes")
        assert {c.code for c in hits} == {"T89", "T90"}
        icd_hits = {c.code for c in icd10().search_display("diabetes")}
        assert {"E10", "E11", "E14"} <= icd_hits

    def test_case_insensitive(self):
        assert icpc2().search_display("DIABETES")

    def test_drug_names_searchable(self):
        hits = atc().search_display("metoprolol")
        assert [c.code for c in hits] == ["C07AB02"]

    def test_empty_search_rejected(self):
        with pytest.raises(TerminologyError):
            icpc2().search_display("")

    def test_workbench_search_spans_systems(self, workbench):
        found = workbench.search_codes("diabetes")
        assert "T90" in found["ICPC-2"]
        assert "E11" in found["ICD-10"]


class TestHighlight:
    def test_halo_marks_present(self, small_store, small_engine):
        ids = small_engine.patients(Concept("T90"))[:20].tolist()
        view = TimelineView(small_store, TimelineConfig(show_legend=False))
        plain = view.render(ids)
        highlighted = view.render(ids, highlight={"T90", "E11"})
        assert highlighted.svg_text.count("#FF6F00") > 0
        assert plain.svg_text.count("#FF6F00") == 0

    def test_highlight_does_not_change_marks(self, small_store,
                                             small_engine):
        ids = small_engine.patients(Concept("T90"))[:20].tolist()
        view = TimelineView(small_store, TimelineConfig(show_legend=False))
        plain = view.render(ids)
        highlighted = view.render(ids, highlight={"T90"})
        assert len(plain.marks) == len(highlighted.marks)
