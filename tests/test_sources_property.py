"""Property tests over the source parsers: random records either parse to
well-formed events or raise SourceFormatError — never crash, never emit
invalid events."""

from __future__ import annotations

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SourceFormatError
from repro.sources.gp import GPClaimParser
from repro.sources.hospital import HospitalEpisodeParser
from repro.sources.municipal import MunicipalServiceParser
from repro.sources.schema import (
    GPClaim,
    HospitalEpisode,
    MunicipalServiceRecord,
    SpecialistClaim,
)
from repro.sources.specialist import SpecialistClaimParser
from repro.terminology import atc, icd10, icpc2

_KNOWN_CATEGORIES = {
    "gp_contact", "emergency_contact", "physio_contact",
    "specialist_contact", "outpatient_visit", "day_treatment",
    "hospital_stay", "home_care", "nursing_home",
    "diagnosis", "blood_pressure", "prescription",
}

# Date strings: a mix of valid and garbage.
_dates_norwegian = st.one_of(
    st.dates(date(1990, 1, 1), date(2020, 1, 1)).map(
        lambda d: d.strftime("%d.%m.%Y")
    ),
    st.sampled_from(["00.00.0000", "31.02.2012", "garbage", "",
                     "2012-01-01", "1.1.2012"]),
)
_dates_iso = st.one_of(
    st.dates(date(1990, 1, 1), date(2020, 1, 1)).map(str),
    st.sampled_from(["2012-02-30", "15.03.2012", "", "x"]),
)
_codes_icpc = st.one_of(
    st.sampled_from(["T90", "K86", "R74", " t90 ", "Q42", "", "zzz", ","]),
    st.text(alphabet="ABKTRQ019 ,", max_size=12),
)
_notes = st.one_of(
    st.just(""),
    st.sampled_from([
        "BT 150/95", "bp: 14/90", "rx C07AB02x90", "rx NOPE",
        "free text æøå", "BT 150/95. rx A10BA02x30",
    ]),
    st.text(max_size=40),
)


def _assert_events_well_formed(events, parser_source_kinds):
    for event in events:
        assert event.category in _KNOWN_CATEGORIES
        if event.end is not None:
            assert event.end > event.day
        if event.system == "ICPC-2":
            assert event.code in icpc2()
        elif event.system == "ICD-10":
            assert event.code in icd10()
        elif event.system == "ATC":
            assert event.code in atc()
        assert event.source_kind in parser_source_kinds


@settings(max_examples=150, deadline=None)
@given(
    st.integers(1, 10),
    _dates_norwegian,
    _codes_icpc,
    st.sampled_from(["gp", "emergency", "physio", "dentist"]),
    _notes,
)
def test_gp_parser_total(pid, when, codes, claim_type, note):
    parser = GPClaimParser()
    claim = GPClaim(pid, when, codes, claim_type, note)
    try:
        events = parser.parse(claim)
    except SourceFormatError:
        return
    assert events  # at least the contact event
    _assert_events_well_formed(
        events, {"gp_claim", "gp_emergency_claim", "physio_claim"}
    )


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 10),
    _dates_iso,
    st.integers(-3, 30),
    st.sampled_from(["inpatient", "outpatient", "day_treatment", "spa"]),
    st.sampled_from(["E11", "I10", "X99", "", "e11"]),
)
def test_hospital_parser_total(pid, admitted, stay_days, kind, code):
    parser = HospitalEpisodeParser()
    try:
        base = date.fromisoformat(admitted)
        discharged = str(base + timedelta(days=stay_days))
    except ValueError:
        discharged = admitted
    episode = HospitalEpisode(pid, admitted, discharged, kind, code)
    try:
        events = parser.parse(episode)
    except SourceFormatError:
        return
    _assert_events_well_formed(
        events,
        {"hospital_inpatient", "hospital_outpatient",
         "hospital_day_treatment"},
    )
    stays = [e for e in events if e.category == "hospital_stay"]
    for stay in stays:
        assert stay.end is not None


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 10),
    st.sampled_from(["home_care", "nursing_home", "gym"]),
    _dates_iso,
    st.one_of(st.just(""), _dates_iso),
)
def test_municipal_parser_total(pid, service, start, end):
    parser = MunicipalServiceParser(horizon_day=20_000)
    record = MunicipalServiceRecord(pid, service, start, end)
    try:
        events = parser.parse(record)
    except SourceFormatError:
        return
    assert len(events) == 1
    _assert_events_well_formed(
        events, {"municipal_home_care", "municipal_nursing_home"}
    )


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 10),
    st.one_of(
        st.dates(date(2000, 1, 1), date(2015, 1, 1)).map(
            lambda d: d.strftime("%d/%m/%Y")
        ),
        st.sampled_from(["2012-01-01", "", "1/1/12"]),
    ),
    st.sampled_from(["E11", "E11;I10", "E11; ", "X99", ""]),
    st.lists(
        st.sampled_from(["C07AB02x90", "A10BA02", "NOPE", "C07AB02x0"]),
        max_size=3,
    ).map(tuple),
)
def test_specialist_parser_total(pid, when, codes, prescriptions):
    parser = SpecialistClaimParser()
    claim = SpecialistClaim(pid, when, codes, "cardiology", prescriptions)
    try:
        events = parser.parse(claim)
    except SourceFormatError:
        return
    _assert_events_well_formed(events, {"specialist_claim"})
    for event in events:
        if event.category == "prescription":
            assert event.end is not None and event.end > event.day
