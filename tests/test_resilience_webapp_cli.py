"""Webapp hardening and CLI quarantine workflows under faults."""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.config import ResilienceConfig
from repro.io import load_store
from repro.resilience.faults import FaultPlan, FaultySource
from repro.simulate import generate_raw_sources
from repro.sources.integrate import IntegrationPipeline
from repro.webapp import WorkbenchServer
from repro.workbench import Workbench


def _get(server, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(server.url + path, timeout=15) as response:
        return response.status, response.read().decode("utf-8")


def _get_error(server, path: str) -> tuple[int, str]:
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server, path)
    return exc.value.code, exc.value.read().decode("utf-8")


@pytest.fixture(scope="module")
def healthy_wb():
    raw = generate_raw_sources(60, seed=7)
    return Workbench.from_raw_sources(raw)


@pytest.fixture(scope="module")
def degraded_wb():
    raw = generate_raw_sources(60, seed=7)
    pipeline = IntegrationPipeline(
        raw.window.end_day,
        resilience=ResilienceConfig(backoff_base_s=0.0, backoff_max_s=0.0),
        sleep=lambda s: None,
    )
    down = FaultySource(
        raw.municipal_records, FaultPlan(seed=4, down=True),
        source="municipal_records",
    )
    store, report = pipeline.run(
        raw.patients, raw.gp_claims, raw.hospital_episodes,
        down, raw.specialist_claims,
    )
    assert report.is_degraded
    return Workbench(store, report=report)


@pytest.fixture(scope="module")
def server(healthy_wb):
    with WorkbenchServer(healthy_wb) as running:
        yield running


@pytest.fixture(scope="module")
def degraded_server(degraded_wb):
    with WorkbenchServer(degraded_wb) as running:
        yield running


class TestHealthz:
    def test_healthy(self, server, healthy_wb):
        status, body = _get(server, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["degraded_sources"] == {}
        assert health["patients"] == healthy_wb.store.n_patients
        assert "failed_records" in health  # report attached by ingestion

    def test_degraded_liveness_stays_200_with_reasons(self, degraded_server):
        # Liveness: the process is serving, so /healthz answers 200;
        # degradation is reported in the payload and flips /readyz.
        status, body = _get(degraded_server, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "degraded"
        assert "municipal_records" in health["degraded_sources"]
        assert "registry down" in (
            health["degraded_sources"]["municipal_records"]
        )

    def test_degraded_readiness_is_503(self, degraded_server):
        status, body = _get_error(degraded_server, "/readyz")
        assert status == 503
        payload = json.loads(body)
        assert payload["ready"] is False
        assert any("municipal_records" in reason
                   for reason in payload["reasons"])

    def test_healthy_readiness_is_200(self, server):
        status, body = _get(server, "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True


class TestDegradedServing:
    def test_serve_mode_banners_but_answers(self, degraded_server):
        status, body = _get(degraded_server, "/")
        assert status == 200
        assert "degraded" in body
        assert "municipal_records" in body
        # queries still work against the partial integration
        status, body = _get(degraded_server, "/cohort?q=concept%20T90")
        assert status == 200
        assert "patients match" in body

    def test_fail_mode_turns_routes_into_503(self, degraded_wb):
        with WorkbenchServer(degraded_wb, degraded_mode="fail") as server:
            status, body = _get_error(server, "/")
            assert status == 503
            assert "municipal_records" in body
            status, __ = _get_error(server, "/cohort?q=concept%20T90")
            assert status == 503
            # the liveness endpoint stays reachable (and alive) for
            # monitoring; readiness reports the degradation
            status, body = _get(server, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "degraded"
            status, __ = _get_error(server, "/readyz")
            assert status == 503

    def test_fail_mode_on_healthy_store_serves_normally(self, healthy_wb):
        with WorkbenchServer(healthy_wb, degraded_mode="fail") as server:
            status, __ = _get(server, "/")
            assert status == 200

    def test_invalid_degraded_mode_rejected(self, healthy_wb):
        with pytest.raises(ValueError):
            WorkbenchServer(healthy_wb, degraded_mode="explode")


class TestMalformedParams:
    def test_non_integer_rows_is_400(self, server):
        status, body = _get_error(
            server, "/timeline.svg?q=concept%20T90&rows=abc"
        )
        assert status == 400
        assert "must be an integer" in body
        assert "class='err'" in body or 'class="err"' in body

    def test_bad_align_is_400(self, server):
        status, body = _get_error(
            server, "/timeline.svg?q=concept%20T90&align=T90%3Bdrop%20x"
        )
        assert status == 400
        assert "align" in body

    def test_good_params_still_served(self, server):
        status, body = _get(
            server, "/timeline.svg?q=concept%20T90&rows=10&align=T90"
        )
        assert status == 200
        assert body.startswith("<svg")


class TestRequestDeadline:
    def test_expired_deadline_is_503(self, healthy_wb):
        with WorkbenchServer(healthy_wb, request_deadline_s=0.0) as server:
            status, body = _get_error(server, "/cohort?q=concept%20T90")
            assert status == 503
            assert "deadline" in body

    def test_generous_deadline_serves(self, healthy_wb):
        with WorkbenchServer(healthy_wb, request_deadline_s=60.0) as server:
            status, __ = _get(server, "/cohort?q=concept%20T90")
            assert status == 200


class TestCliQuarantine:
    @pytest.fixture(scope="class")
    def generated(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cliq")
        store_path = str(root / "store.npz")
        dead_path = str(root / "dead.jsonl")
        code = main(["generate", "--patients", "120", "--seed", "2",
                     "--full-fidelity", "--quarantine", dead_path,
                     "--out", store_path])
        assert code == 0
        return store_path, dead_path

    def test_generate_dead_letters_native_failures(self, generated, capsys):
        store_path, dead_path = generated
        # the simulator injects some natively-bad records, so the
        # quarantine must exist and hold at least one dead letter
        assert os.path.exists(dead_path)
        assert main(["quarantine", "show", dead_path]) == 0
        out = capsys.readouterr().out
        assert "quarantined record(s)" in out

    def test_replay_without_repair_reproduces_base(self, generated,
                                                   tmp_path, capsys):
        store_path, dead_path = generated
        out_path = str(tmp_path / "merged.npz")
        code = main(["quarantine", "replay", dead_path,
                     "--store", store_path, "--out", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        # nothing was repaired, so the still-broken records add nothing
        assert load_store(out_path).content_equal(load_store(store_path))

    def test_replay_after_repair_uses_exact_default_horizon(self, tmp_path):
        # Regression: stored interval ends are exclusive, so the replay
        # horizon inferred from base.end.max() must subtract one or
        # horizon-truncated prescriptions come back one day longer.
        from repro.io import save_store
        from repro.resilience.quarantine import QuarantineStore
        from repro.resilience.faults import repair_record

        raw = generate_raw_sources(60, seed=7)

        def pipeline(quarantine=None):
            return IntegrationPipeline(
                raw.window.end_day,
                resilience=ResilienceConfig(backoff_base_s=0.0,
                                            backoff_max_s=0.0),
                quarantine=quarantine, sleep=lambda s: None,
            )

        reference, __ = pipeline().run(
            raw.patients, raw.gp_claims, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        quarantine = QuarantineStore(str(tmp_path / "dead.jsonl"))
        faulty_gp = FaultySource(
            raw.gp_claims, FaultPlan(seed=3, corrupt_rate=0.10),
            source="gp_claims",
        )
        faulted, __ = pipeline(quarantine).run(
            raw.patients, faulty_gp, raw.hospital_episodes,
            raw.municipal_records, raw.specialist_claims,
        )
        base_path = str(tmp_path / "faulted.npz")
        save_store(faulted, base_path)
        quarantine.repair(repair_record)
        out_path = str(tmp_path / "recovered.npz")
        assert main(["quarantine", "replay", str(tmp_path / "dead.jsonl"),
                     "--store", base_path, "--out", out_path]) == 0
        assert load_store(out_path).content_equal(reference)

    def test_show_on_missing_file_is_empty(self, tmp_path, capsys):
        assert main(["quarantine", "show",
                     str(tmp_path / "nothing.jsonl")]) == 0
        assert "0 quarantined record(s)" in capsys.readouterr().out

    def test_generate_fail_fast_flag_parses(self, tmp_path, capsys):
        # healthy sources: --fail-fast must not change the outcome
        path = str(tmp_path / "ff.npz")
        assert main(["generate", "--patients", "80", "--seed", "3",
                     "--full-fidelity", "--fail-fast", "--max-retries", "1",
                     "--out", path]) == 0
        assert os.path.exists(path)


class TestErrorTaxonomyLint:
    def test_tool_passes_on_this_tree(self):
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        result = subprocess.run(
            [sys.executable, os.path.join(root, "tools",
                                          "check_error_taxonomy.py")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
