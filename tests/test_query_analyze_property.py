"""Property harness: the static analyzer never lies about real stores.

Two claims, both checked against the same seeded random corpus the
planner's differential suite uses (all 17 AST node types):

1. **Soundness of unsatisfiability proofs** — every diagnostic carrying
   ``unsatisfiable=True`` claims its node provably selects nothing; we
   evaluate that exact node on seeded stores (normal, single-patient,
   empty) and it must return an empty result every time.
2. **No false rejections** — no query the differential suites execute
   successfully gets an error-severity diagnostic, so turning on the
   ``analyze=True`` engine gate cannot break an existing workload.
"""

from __future__ import annotations

import pytest

from repro.query.analyze import AnalysisContext, analyze_query
from repro.query.ast import EventExpr, PatientExpr
from repro.query.engine import QueryEngine

from tests.test_query_planner_property import (
    _RUNS,
    _STORES,
    _generated_corpus,
)


@pytest.mark.parametrize("store_name,seed,count", _RUNS,
                         ids=[r[0] for r in _RUNS])
def test_unsatisfiable_verdicts_hold_on_real_stores(store_name, seed,
                                                    count):
    store = _STORES[store_name]
    context = AnalysisContext.from_store(store)
    engine = QueryEngine(store, optimize=False)
    checked = 0
    for i, query in enumerate(_generated_corpus(store, seed, count)):
        for diag in analyze_query(query, context):
            if not diag.unsatisfiable or diag.node is None:
                continue
            node = diag.node
            if isinstance(node, EventExpr):
                selected = int(engine.event_mask(node).sum())
            elif isinstance(node, PatientExpr):
                selected = len(engine.patients(node))
            else:  # pragma: no cover - analyzer only tags AST nodes
                continue
            checked += 1
            assert selected == 0, (
                f"case {i} on {store_name}: {diag.rule} claimed "
                f"{node!r} unsatisfiable but it selected {selected}"
            )
    if store_name == "small":
        # The corpus genuinely exercises the unsat rules.
        assert checked > 50


@pytest.mark.parametrize("store_name,seed,count", _RUNS,
                         ids=[r[0] for r in _RUNS])
def test_differential_corpus_never_hits_error_severity(store_name, seed,
                                                       count):
    store = _STORES[store_name]
    context = AnalysisContext.from_store(store)
    for i, query in enumerate(_generated_corpus(store, seed, count)):
        errors = [d for d in analyze_query(query, context)
                  if d.severity == "error"]
        assert not errors, (
            f"case {i} on {store_name}: analyzer would reject a query "
            f"the differential suite evaluates fine: {errors}"
        )


def test_gated_engine_accepts_the_whole_corpus():
    """The analyze=True gate evaluates every generated query."""
    store = _STORES["small"]
    gated = QueryEngine(store, analyze=True)
    plain = QueryEngine(store)
    import numpy as np

    for query in _generated_corpus(store, 515, 150):
        assert np.array_equal(gated.patients(query),
                              plain.patients(query))
    assert gated.analyzer_counters["analyzed"] == 150
    assert gated.analyzer_counters["errors"] == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
