"""Tests for uncertain intervals and their modal relation queries."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.temporal.allen import relation_between
from repro.temporal.timeline import Interval
from repro.temporal.uncertainty import UncertainInterval, UncertaintyMetaphor


class TestConstruction:
    def test_bad_bounds_rejected(self):
        with pytest.raises(TemporalError):
            UncertainInterval(5, 3, 8, 10)  # min_start > max_start
        with pytest.raises(TemporalError):
            UncertainInterval(0, 2, 9, 8)   # min_end > max_end
        with pytest.raises(TemporalError):
            UncertainInterval(10, 12, 5, 10)  # no start < end realization

    def test_crisp_wrapper(self):
        u = UncertainInterval.crisp(Interval(3, 9))
        assert u.core == Interval(3, 9)
        assert u.support == Interval(3, 9)
        assert u.min_duration == u.max_duration == 6


class TestBounds:
    def test_core_and_support(self):
        u = UncertainInterval(0, 3, 8, 12)
        assert u.core == Interval(3, 8)
        assert u.support == Interval(0, 12)

    def test_no_core_when_ranges_cross(self):
        u = UncertainInterval(0, 9, 5, 12)
        assert u.core is None
        assert u.render_segments(UncertaintyMetaphor.ELASTIC_BAND) == [
            (0, 12, "fuzzy")
        ]

    def test_durations(self):
        u = UncertainInterval(0, 3, 8, 12)
        assert u.min_duration == 5   # start latest (3), end earliest (8)
        assert u.max_duration == 12  # start earliest (0), end latest (12)

    def test_segments_cover_support_exactly(self):
        u = UncertainInterval(0, 3, 8, 12)
        segments = u.render_segments(UncertaintyMetaphor.SPRING)
        assert segments[0][0] == 0 and segments[-1][1] == 12
        for (______, end, __), (start, *__rest) in zip(segments, segments[1:]):
            assert end == start


class TestModalRelations:
    def test_crisp_possible_is_singleton(self):
        u = UncertainInterval.crisp(Interval(0, 5))
        possible = u.possible_relations(Interval(10, 20))
        assert len(possible) == 1
        assert u.necessary_relations(Interval(10, 20)) == possible

    def test_uncertain_end_spreads_relations(self):
        # end anywhere in [8, 15] vs other [10, 20]: before/meets/overlaps
        u = UncertainInterval(0, 0, 8, 15)
        names = {r.value for r in u.possible_relations(Interval(10, 20))}
        assert names == {"b", "m", "o"}
        assert u.necessary_relations(Interval(10, 20)) == frozenset()

    @given(
        st.integers(-50, 50), st.integers(0, 10), st.integers(0, 10),
        st.integers(-50, 50), st.integers(1, 30),
        st.data(),
    )
    def test_every_realization_is_possible(
        self, min_start, start_spread, end_spread, other_start, other_len, data
    ):
        """Soundness: the relation of any admissible realization is in
        possible_relations."""
        max_start = min_start + start_spread
        min_end = max_start + 1
        max_end = min_end + end_spread
        u = UncertainInterval(min_start, max_start, min_end, max_end)
        other = Interval(other_start, other_start + other_len)
        start = data.draw(st.integers(min_start, max_start))
        end = data.draw(st.integers(max(min_end, start + 1), max_end))
        relation = relation_between(Interval(start, end), other)
        assert relation in u.possible_relations(other)
