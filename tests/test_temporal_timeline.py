"""Tests for day numbers and the Interval type."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.temporal.timeline import (
    EPOCH,
    Interval,
    day_number,
    from_day_number,
    months_between,
)


class TestDayNumbers:
    def test_epoch_is_zero(self):
        assert day_number(EPOCH) == 0

    @given(st.dates(min_value=date(1900, 1, 1), max_value=date(2100, 1, 1)))
    def test_roundtrip(self, when):
        assert from_day_number(day_number(when)) == when

    def test_months_between_signed(self):
        assert months_between(0, 0) == 0.0
        assert months_between(0, 365) == pytest.approx(12.0, abs=0.02)
        assert months_between(365, 0) == pytest.approx(-12.0, abs=0.02)


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(TemporalError):
            Interval(5, 5)
        with pytest.raises(TemporalError):
            Interval(6, 5)

    def test_from_dates_and_single_day(self):
        iv = Interval.from_dates(date(2012, 1, 1), date(2012, 1, 3))
        assert iv.duration == 2
        assert Interval.single_day(100) == Interval(100, 101)

    def test_contains_point_half_open(self):
        iv = Interval(10, 20)
        assert iv.contains_point(10)
        assert iv.contains_point(19)
        assert not iv.contains_point(20)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(2, 8))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).contains(Interval(5, 11))

    def test_overlaps_meets_is_not_overlap(self):
        assert not Interval(0, 5).overlaps(Interval(5, 10))
        assert Interval(0, 6).overlaps(Interval(5, 10))

    def test_intersection(self):
        assert Interval(0, 6).intersection(Interval(4, 10)) == Interval(4, 6)
        assert Interval(0, 4).intersection(Interval(4, 10)) is None

    def test_hull_and_shift(self):
        assert Interval(0, 3).hull(Interval(8, 9)) == Interval(0, 9)
        assert Interval(2, 4).shifted(10) == Interval(12, 14)

    def test_gap_to(self):
        assert Interval(0, 5).gap_to(Interval(8, 10)) == 3
        assert Interval(8, 10).gap_to(Interval(0, 5)) == 3
        assert Interval(0, 6).gap_to(Interval(5, 10)) == 0
        assert Interval(0, 5).gap_to(Interval(5, 10)) == 0

    @given(
        st.integers(-500, 500), st.integers(1, 100),
        st.integers(-500, 500), st.integers(1, 100),
    )
    def test_overlap_symmetric_and_consistent_with_intersection(
        self, s1, d1, s2, d2
    ):
        a, b = Interval(s1, s1 + d1), Interval(s2, s2 + d2)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b) == (a.intersection(b) is not None)
