"""Tests for the sequence-alignment baseline: similarity, pairwise NW,
multiple alignment and association mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.mining import mine_code_pairs
from repro.alignment.multiple import star_alignment
from repro.alignment.pairwise import needleman_wunsch
from repro.alignment.similarity import SimilarityMatrix, code_similarity
from repro.terminology import icpc2

_CODES = ["T90", "T89", "T86", "K86", "K74", "R74", "P76", "A97"]
sequences = st.lists(st.sampled_from(_CODES), min_size=1, max_size=10)


@pytest.fixture(scope="module")
def sim() -> SimilarityMatrix:
    return SimilarityMatrix(icpc2())


class TestSimilarity:
    def test_identity_is_one(self, sim):
        assert sim("T90", "T90") == 1.0

    def test_same_chapter_partial(self, sim):
        value = sim("T90", "T89")
        assert 0.0 < value < 1.0

    def test_different_chapters_zero(self, sim):
        assert sim("T90", "P76") == 0.0

    def test_symmetric(self, sim):
        assert sim("T90", "K86") == sim("K86", "T90")

    def test_chapter_vs_child(self):
        system = icpc2()
        # chapter (depth 1) vs rubric (depth 2): 2*1/(1+2) Wu-Palmer
        assert code_similarity(system, "T", "T90") == pytest.approx(2 / 3)

    @given(st.sampled_from(_CODES), st.sampled_from(_CODES))
    def test_bounded(self, a, b):
        value = code_similarity(icpc2(), a, b)
        assert 0.0 <= value <= 1.0


class TestNeedlemanWunsch:
    def test_identical_sequences_all_match(self, sim):
        seq = ["T90", "K86", "R74"]
        alignment = needleman_wunsch(seq, seq, sim)
        assert alignment.n_matches == 3
        assert alignment.identity(seq, seq) == 1.0
        assert alignment.score == pytest.approx(3.0)

    def test_single_insertion_shifts_not_destroys(self, sim):
        """The exact failure NSEPter's rank merge has; NW absorbs it."""
        left = ["T90", "K86", "R74"]
        right = ["T90", "A97", "K86", "R74"]
        alignment = needleman_wunsch(left, right, sim)
        matched = {
            (p.left, p.right) for p in alignment.pairs if p.is_match
        }
        assert (0, 0) in matched
        assert (1, 2) in matched
        assert (2, 3) in matched

    def test_empty_sequences(self, sim):
        alignment = needleman_wunsch([], ["T90"], sim)
        assert alignment.n_matches == 0
        assert len(alignment.pairs) == 1

    @settings(max_examples=25, deadline=None)
    @given(sequences, sequences)
    def test_alignment_is_consistent(self, left, right):
        """Structural invariants: every position used exactly once, in
        order, and the score is symmetric."""
        sim_local = SimilarityMatrix(icpc2())
        alignment = needleman_wunsch(left, right, sim_local)
        lefts = [p.left for p in alignment.pairs if p.left is not None]
        rights = [p.right for p in alignment.pairs if p.right is not None]
        assert lefts == list(range(len(left)))
        assert rights == list(range(len(right)))
        mirrored = needleman_wunsch(right, left, sim_local)
        assert alignment.score == pytest.approx(mirrored.score)


class TestStarAlignment:
    def test_columns_cover_center(self, sim):
        msa = star_alignment(
            {1: ["T90", "K86"], 2: ["T90", "K86", "R74"], 3: ["T90", "R74"]},
            sim,
        )
        assert msa.n_sequences == 3
        assert msa.merged_column_count() >= 2

    def test_consensus_and_agreement(self, sim):
        msa = star_alignment(
            {1: ["T90", "K86"], 2: ["T90", "K86"], 3: ["T90", "K74"]}, sim
        )
        first_supported = next(c for c in msa.columns if c.support == 3)
        assert first_supported.consensus() == "T90"
        assert first_supported.agreement() == 1.0

    def test_single_sequence(self, sim):
        msa = star_alignment({7: ["T90"]}, sim)
        assert msa.center_id == 7
        assert len(msa.columns) == 1

    def test_noise_resilience_vs_rank_merge(self, sim):
        """A one-position substitution still aligns the shared suffix —
        the improvement over NSEPter the ablation (A2) quantifies."""
        noisy = {
            1: ["A01", "T90", "K86", "R74"],
            2: ["A03", "T90", "K86", "R74"],  # differs at position 0 only
        }
        msa = star_alignment(noisy, sim)
        full_agreement = [
            c for c in msa.columns if c.support == 2 and c.agreement() == 1.0
        ]
        assert len(full_agreement) == 3  # T90, K86, R74 columns


class TestMining:
    def test_rules_have_sound_statistics(self, small_store):
        rules = mine_code_pairs(small_store, min_support=0.01)
        assert rules
        for rule in rules[:20]:
            assert 0.0 < rule.support <= 1.0
            assert 0.0 < rule.confidence <= 1.0
            assert rule.lift >= 1.2
            assert rule.support <= rule.confidence

    def test_comorbidity_surfaces(self, small_store):
        """The simulator boosts hypertension given diabetes; mining must
        rediscover the link."""
        rules = mine_code_pairs(small_store, min_support=0.01,
                                min_confidence=0.1, min_lift=1.05)
        pairs = {(r.antecedent, r.consequent) for r in rules}
        assert ("T90", "K86") in pairs

    def test_ordered_rules_subset_of_unordered(self, small_store):
        unordered = {
            (r.antecedent, r.consequent): r.n_both
            for r in mine_code_pairs(small_store, min_support=0.005,
                                     min_confidence=0.05, min_lift=1.0)
        }
        ordered = mine_code_pairs(small_store, min_support=0.005,
                                  min_confidence=0.05, min_lift=1.0,
                                  ordered=True)
        for rule in ordered:
            key = (rule.antecedent, rule.consequent)
            if key in unordered:
                assert rule.n_both <= unordered[key]

    def test_sorted_by_lift(self, small_store):
        rules = mine_code_pairs(small_store, min_support=0.01)
        lifts = [r.lift for r in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_str_rendering(self, small_store):
        rules = mine_code_pairs(small_store, min_support=0.01)
        text = str(rules[0])
        assert "lift=" in text and "=>" in text
