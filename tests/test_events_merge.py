"""Tests for merging event stores (incremental ingestion)."""

from __future__ import annotations

import pytest

from repro.errors import EventModelError
from repro.events.model import Cohort, History, IntervalEvent, PointEvent
from repro.events.store import EventStore, merge_stores
from repro.temporal.timeline import Interval


def store_of(*histories: History) -> EventStore:
    return EventStore.from_cohort(Cohort(list(histories)))


def history(pid: int, day: int, code: str = "T90",
            category: str = "diagnosis", birth: int = 0) -> History:
    return History(
        patient_id=pid, birth_day=birth, sex="F",
        points=[PointEvent(day=day, category=category, code=code,
                           system="ICPC-2", source="gp_claim")],
    )


class TestMergeStores:
    def test_disjoint_patients(self):
        merged = merge_stores(store_of(history(1, 10)),
                              store_of(history(2, 20)))
        assert merged.n_patients == 2
        assert merged.n_events == 2
        assert merged.materialize(1).points[0].day == 10
        assert merged.materialize(2).points[0].day == 20

    def test_same_patient_events_interleave(self):
        merged = merge_stores(store_of(history(1, 30)),
                              store_of(history(1, 10)))
        assert merged.n_patients == 1
        assert [p.day for p in merged.materialize(1).points] == [10, 30]

    def test_conflicting_demographics_rejected(self):
        a = store_of(history(1, 10, birth=0))
        b = store_of(history(1, 20, birth=999))
        with pytest.raises(EventModelError, match="conflicting"):
            merge_stores(a, b)

    def test_string_tables_remapped(self):
        a = store_of(history(1, 10, category="diagnosis"))
        b = store_of(
            History(patient_id=2, birth_day=0, sex="F", points=[
                PointEvent(day=5, category="blood_pressure", value=140.0,
                           source="specialist_claim", detail="note x"),
            ])
        )
        merged = merge_stores(a, b)
        back = merged.materialize(2).points[0]
        assert back.category == "blood_pressure"
        assert back.source == "specialist_claim"
        assert back.detail == "note x"
        assert back.value == 140.0

    def test_intervals_survive(self):
        b = store_of(
            History(patient_id=2, birth_day=0, sex="F", intervals=[
                IntervalEvent(Interval(5, 9), "hospital_stay",
                              source="hospital_inpatient"),
            ])
        )
        merged = merge_stores(store_of(history(1, 10)), b)
        assert merged.materialize(2).intervals[0].interval == Interval(5, 9)

    def test_queries_over_merged(self):
        merged = merge_stores(
            store_of(history(1, 10, "T90")),
            store_of(history(2, 20, "K86")),
        )
        assert merged.patients_matching(
            merged.mask_pattern("ICPC-2", "T90|K86")
        ).tolist() == [1, 2]

    def test_mismatched_systems_rejected(self):
        from repro.terminology.codes import Code, CodeSystem

        a = store_of(history(1, 10))
        tiny = {
            "ICPC-2": CodeSystem("ICPC-2", [Code("A", "x")]),
            "ICD-10": a.systems["ICD-10"],
            "ATC": a.systems["ATC"],
        }
        b = EventStore.from_cohort(
            Cohort([History(patient_id=2, birth_day=0)]), systems=tiny
        )
        with pytest.raises(EventModelError, match="mis-decode"):
            merge_stores(a, b)
