"""Tests for the NSEPter baseline: graph building, merging, metrics —
including the documented noise weakness."""

from __future__ import annotations

import pytest

from repro.errors import EventModelError, QueryError
from repro.events.model import Cohort, History, PointEvent
from repro.nsepter.graph import HistoryGraph, Occurrence, build_graph
from repro.nsepter.layout import layout_graph, readability_metrics
from repro.nsepter.merge import merge_by_regex, recursive_neighbour_merge


def sequences_graph(sequences: dict[int, list[str]]) -> HistoryGraph:
    return HistoryGraph(sequences)


class TestGraph:
    def test_initial_graph_is_disjoint_chains(self):
        graph = sequences_graph({1: ["A01", "T90"], 2: ["T90", "K86"]})
        assert graph.n_nodes == 4
        edges = graph.edges()
        assert len(edges) == 2
        assert all(weight == 1 for weight in edges.values())

    def test_build_from_cohort_skips_codeless(self):
        cohort = Cohort([
            History(patient_id=1, birth_day=0, points=[
                PointEvent(day=1, category="diagnosis", code="T90",
                           system="ICPC-2"),
            ]),
            History(patient_id=2, birth_day=0),  # no codes
        ])
        graph = build_graph(cohort)
        assert graph.n_histories == 1

    def test_union_merges_members(self):
        graph = sequences_graph({1: ["T90"], 2: ["T90"]})
        a = Occurrence(1, 0, "T90")
        b = Occurrence(2, 0, "T90")
        graph.union(a, b)
        assert graph.find(a) == graph.find(b)
        assert len(graph.members(a)) == 2
        assert graph.n_nodes == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(EventModelError):
            HistoryGraph({})

    def test_node_label_merged_codes(self):
        graph = sequences_graph({1: ["T90"], 2: ["T89"]})
        root = graph.union(Occurrence(1, 0, "T90"), Occurrence(2, 0, "T89"))
        assert graph.node_label(root) == "T89/T90"


class TestRegexMerge:
    def test_rank_based_merge(self):
        """First occurrences merge with first, second with second."""
        graph = sequences_graph({
            1: ["T90", "A01", "T90"],
            2: ["A03", "T90", "T90"],
        })
        roots = merge_by_regex(graph, "T90")
        assert len(roots) == 2  # rank-1 node and rank-2 node
        rank1 = graph.node_of(1, 0)
        assert graph.find(Occurrence(2, 1, "T90")) == rank1
        rank2 = graph.node_of(1, 2)
        assert graph.find(Occurrence(2, 2, "T90")) == rank2
        assert rank1 != rank2

    def test_edge_weights_scale_with_histories(self):
        graph = sequences_graph({
            1: ["T90", "K86"],
            2: ["T90", "K86"],
            3: ["T90", "R74"],
        })
        merge_by_regex(graph, "T90")
        merge_by_regex(graph, "K86")
        weights = sorted(graph.edges().values(), reverse=True)
        assert weights[0] == 2  # two histories share T90 -> K86

    def test_bad_regex_raises(self):
        with pytest.raises(QueryError):
            merge_by_regex(sequences_graph({1: ["T90"]}), "[")

    def test_rank_desync_weakness_preserved(self):
        """One extra occurrence desynchronizes later ranks — the
        documented NSEPter flaw (ablation A2 depends on it)."""
        graph = sequences_graph({
            1: ["T90", "X", "T90"],       # ranks 1 and 2
            2: ["T90", "T90", "T90"],     # ranks 1, 2 and 3
        })
        merge_by_regex(graph, "T90")
        # history 1's second T90 (rank 2) merges with history 2's *middle*
        # T90, not its last one.
        assert graph.find(Occurrence(1, 2, "T90")) == graph.find(
            Occurrence(2, 1, "T90")
        )
        assert graph.find(Occurrence(1, 2, "T90")) != graph.find(
            Occurrence(2, 2, "T90")
        )


class TestRecursiveMerge:
    def test_identical_neighbours_merge(self):
        graph = sequences_graph({
            1: ["A01", "T90", "K86"],
            2: ["A01", "T90", "K86"],
        })
        seeds = merge_by_regex(graph, "T90")
        merged = recursive_neighbour_merge(graph, seeds, depth=1)
        assert merged == 2  # the A01 pair and the K86 pair
        assert graph.n_nodes == 3

    def test_depth_limits_expansion(self):
        graph = sequences_graph({
            1: ["B01", "A01", "T90"],
            2: ["B01", "A01", "T90"],
        })
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=1)
        # depth 1 merges A01s but not B01s
        assert graph.find(Occurrence(1, 1, "A01")) == graph.find(
            Occurrence(2, 1, "A01")
        )
        assert graph.find(Occurrence(1, 0, "B01")) != graph.find(
            Occurrence(2, 0, "B01")
        )
        recursive_neighbour_merge(graph, seeds, depth=2)
        assert graph.find(Occurrence(1, 0, "B01")) == graph.find(
            Occurrence(2, 0, "B01")
        )

    def test_single_position_noise_breaks_merge(self):
        """'It would miss an opportunity to merge nodes if two histories
        differed in one single position' — preserved faithfully."""
        graph = sequences_graph({
            1: ["A01", "T90", "K86"],
            2: ["A03", "T90", "K86"],  # differs at position 0
        })
        seeds = merge_by_regex(graph, "T90")
        recursive_neighbour_merge(graph, seeds, depth=2)
        # K86 merges; the differing predecessors never do.
        assert graph.find(Occurrence(1, 2, "K86")) == graph.find(
            Occurrence(2, 2, "K86")
        )
        assert graph.find(Occurrence(1, 0, "A01")) != graph.find(
            Occurrence(2, 0, "A03")
        )


class TestLayoutAndMetrics:
    def test_unmerged_layout_keeps_history_rows(self):
        graph = sequences_graph({1: ["A01", "T90"], 2: ["T90", "K86"]})
        layout = layout_graph(graph)
        ys = {occ.patient_id: y for occ, (x, y) in layout.positions.items()}
        assert ys[1] != ys[2]

    def test_merged_node_at_centroid(self):
        graph = sequences_graph({1: ["T90"], 2: ["T90"]})
        merge_by_regex(graph, "T90")
        layout = layout_graph(graph)
        assert layout.n_nodes == 1
        (__, y), = layout.positions.values()
        # centroid of rows 0 and 1
        assert y == pytest.approx(0.5 * 26.0 + 30)

    def test_metrics_count_crossings(self):
        # Two crossing edges: (0,0)->(1,1) and (0,1)->(1,0)
        graph = sequences_graph({1: ["A01", "K86"], 2: ["K86", "A01"]})
        merge_by_regex(graph, "A01")
        merge_by_regex(graph, "K86")
        layout = layout_graph(graph)
        metrics = readability_metrics(layout)
        assert metrics.n_nodes == 2
        assert metrics.edge_density > 0

    def test_metrics_grow_with_scale(self, small_store):
        small = small_store.to_cohort(small_store.patient_ids[:20].tolist())
        large = small_store.to_cohort(small_store.patient_ids[:120].tolist())

        def crossings(cohort):
            graph = build_graph(cohort)
            merge_by_regex(graph, "T90")
            return readability_metrics(layout_graph(graph)).edge_crossings

        assert crossings(large) > crossings(small)
