"""Lint ``src/repro`` exception handling against the ReproError taxonomy.

Rules (the ISSUE-1 robustness contract):

1. No bare ``except:`` anywhere — a handler must name what it catches.
2. A handler catching ``Exception`` or ``BaseException`` must re-raise
   (contain a ``raise`` statement), otherwise failures from an unrelated
   domain are silently swallowed.
3. Every exception class defined in ``repro.errors`` must derive from
   ``ReproError``, so an application boundary can catch one base class.

Narrow builtin catches (``except ValueError:`` around one conversion,
``except KeyError:`` around one lookup) are legitimate control flow and
pass; the rules target the broad handlers that hide real faults.

Run from the repository root::

    python tools/check_error_taxonomy.py        # exits 1 on violations
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

_BROAD = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """The dotted names a handler catches (empty for a bare except)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
        else:
            names.append(ast.dump(item))
    return names


def _contains_raise(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def check_handlers(path: Path) -> list[str]:
    """Rule 1 and 2 violations for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations = []
    rel = path.relative_to(ROOT)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _caught_names(node)
        if not names:
            violations.append(
                f"{rel}:{node.lineno}: bare 'except:' — name what you catch"
            )
        elif any(n in _BROAD for n in names) and not _contains_raise(node):
            violations.append(
                f"{rel}:{node.lineno}: 'except {'/'.join(names)}' without a "
                f"re-raise — catch a ReproError subclass or re-raise"
            )
    return violations


def check_taxonomy_roots() -> list[str]:
    """Rule 3: every class in repro.errors derives from ReproError."""
    sys.path.insert(0, str(ROOT / "src"))
    import repro.errors as errors_module

    violations = []
    for name in dir(errors_module):
        obj = getattr(errors_module, name)
        if not isinstance(obj, type) or not issubclass(obj, BaseException):
            continue
        if obj.__module__ != "repro.errors":
            continue
        if obj is not errors_module.ReproError and not issubclass(
            obj, errors_module.ReproError
        ):
            violations.append(
                f"repro.errors.{name} does not derive from ReproError"
            )
    return violations


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        violations.extend(check_handlers(path))
    violations.extend(check_taxonomy_roots())
    if violations:
        print(f"{len(violations)} error-taxonomy violation(s):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("error taxonomy ok: no bare excepts, no swallowed broad catches")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
