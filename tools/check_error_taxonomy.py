"""Lint ``src/repro`` exception handling against the ReproError taxonomy.

Thin wrapper kept for CI and muscle memory — the rules now live in the
general AST lint framework as LK001 (bare except), LK002 (broad except
without re-raise) and LK003 (taxonomy roots).  ``python -m
tools.lintkit`` runs these plus the rest of the catalog.

Run from the repository root::

    python tools/check_error_taxonomy.py        # exits 1 on violations
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import all_rules, lint_paths  # noqa: E402

_TAXONOMY_RULES = ("LK001", "LK002", "LK003")


def main() -> int:
    rules = [r for r in all_rules() if r.id in _TAXONOMY_RULES]
    violations = lint_paths([ROOT / "src" / "repro"], rules=rules,
                            root=ROOT)
    if violations:
        print(f"{len(violations)} error-taxonomy violation(s):")
        for violation in violations:
            print(f"  {violation.format()}")
        return 1
    print("error taxonomy ok: no bare excepts, no swallowed broad catches")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
