"""Repository maintenance tooling (not shipped with :mod:`repro`).

Makes ``tools`` importable so the lint framework runs as
``python -m tools.lintkit`` from the repository root.
"""
