"""Statement-level control-flow graphs for lintkit's dataflow rules.

A :class:`CFG` is built per function body.  Nodes are statements (plus a
synthetic entry and exit); edges come in two flavours:

* **normal** edges — the path the interpreter takes when no exception is
  raised.  Must-analyses (LK201/LK202) traverse only these: an exception
  aborts the operation in flight, so requiring a durability protocol to
  complete on exceptional paths would flag every correct installer.
* **exceptional** edges — from statements inside a ``try`` body to the
  entry of each handler.  Handler bodies re-join normal flow at whatever
  follows the ``try`` (a handler that swallows an error and falls through
  *is* a normal path, which is exactly when a skipped ``os.replace``
  becomes a real torn-write hazard).

``raise`` and ``return`` statements edge to the synthetic exit.  A
``raise`` contributes no *normal* successor, so a backward must-analysis
treats the path as vacuously satisfied — aborting is always a legal way
to leave a protocol unfinished.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "build_cfg"]


@dataclass
class CFGNode:
    """One statement in the graph (``stmt is None`` for entry/exit)."""

    index: int
    stmt: ast.stmt | None
    succ: set[int] = field(default_factory=set)
    exc_succ: set[int] = field(default_factory=set)
    is_exit: bool = False

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """Control-flow graph over the statements of one function body."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry: int = 0
        self.exit: int = 0

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def preds(self) -> dict[int, set[int]]:
        """Normal-edge predecessor map (computed on demand)."""
        out: dict[int, set[int]] = {n.index: set() for n in self.nodes}
        for n in self.nodes:
            for s in n.succ:
                out[s].add(n.index)
        return out


@dataclass
class _Loop:
    head: int
    breaks: set[int] = field(default_factory=set)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._loops: list[_Loop] = []

    # -- graph primitives -------------------------------------------------
    def _new(self, stmt: ast.stmt | None) -> int:
        node = CFGNode(index=len(self.cfg.nodes), stmt=stmt)
        self.cfg.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.nodes[src].succ.add(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        self.cfg.nodes[src].exc_succ.add(dst)

    # -- construction -----------------------------------------------------
    def build(self, body: list[ast.stmt]) -> CFG:
        self.cfg.entry = self._new(None)
        self.cfg.exit = self._new(None)
        self.cfg.nodes[self.cfg.exit].is_exit = True
        tails = self._stmts(body, {self.cfg.entry})
        for t in tails:
            self._edge(t, self.cfg.exit)
        return self.cfg

    def _stmts(self, body: list[ast.stmt], preds: set[int]) -> set[int]:
        """Wire ``body`` after ``preds``; return the fall-through tails."""
        current = set(preds)
        for stmt in body:
            if not current:
                break  # unreachable (after return/raise/break/continue)
            current = self._stmt(stmt, current)
        return current

    def _simple(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        idx = self._new(stmt)
        for p in preds:
            self._edge(p, idx)
        return {idx}

    def _stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            idx = self._new(stmt)
            for p in preds:
                self._edge(p, idx)
            if isinstance(stmt, ast.Return):
                self._edge(idx, self.cfg.exit)
            # raise: no normal successor — the path aborts.
            return set()
        if isinstance(stmt, ast.Break):
            idx = self._new(stmt)
            for p in preds:
                self._edge(p, idx)
            if self._loops:
                self._loops[-1].breaks.add(idx)
            return set()
        if isinstance(stmt, ast.Continue):
            idx = self._new(stmt)
            for p in preds:
                self._edge(p, idx)
            if self._loops:
                self._edge(idx, self._loops[-1].head)
            return set()
        if isinstance(stmt, ast.If):
            test = self._new(stmt)
            for p in preds:
                self._edge(p, test)
            then_tails = self._stmts(stmt.body, {test})
            if stmt.orelse:
                else_tails = self._stmts(stmt.orelse, {test})
            else:
                else_tails = {test}
            return then_tails | else_tails
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new(stmt)
            for p in preds:
                self._edge(p, head)
            loop = _Loop(head=head)
            self._loops.append(loop)
            body_tails = self._stmts(stmt.body, {head})
            self._loops.pop()
            for t in body_tails:
                self._edge(t, head)
            after: set[int] = set(loop.breaks)
            if stmt.orelse:
                after |= self._stmts(stmt.orelse, {head})
            else:
                after.add(head)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            idx = self._new(stmt)
            for p in preds:
                self._edge(p, idx)
            return self._stmts(stmt.body, {idx})
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            subject = self._new(stmt)
            for p in preds:
                self._edge(p, subject)
            tails: set[int] = set()
            exhaustive = False
            for case in stmt.cases:
                tails |= self._stmts(case.body, {subject})
                if (
                    case.guard is None
                    and isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                ):
                    exhaustive = True  # bare wildcard `case _:`
            if not exhaustive:
                tails.add(subject)
            return tails
        # FunctionDef/ClassDef/Assign/Expr/Import/... — one linear node.
        return self._simple(stmt, preds)

    def _try(self, stmt: ast.Try, preds: set[int]) -> set[int]:
        first = len(self.cfg.nodes)
        body_tails = self._stmts(stmt.body, preds)
        body_nodes = range(first, len(self.cfg.nodes))
        handler_tails: set[int] = set()
        for handler in stmt.handlers:
            h_entry = self._new(None)  # synthetic handler entry
            for b in body_nodes:
                self._exc_edge(b, h_entry)
            handler_tails |= self._stmts(handler.body, {h_entry})
        if stmt.orelse:
            orelse_tails = self._stmts(stmt.orelse, body_tails)
        else:
            orelse_tails = body_tails
        tails = orelse_tails | handler_tails
        if stmt.finalbody:
            tails = self._stmts(stmt.finalbody, tails)
        return tails


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG for one function definition's body."""
    return _Builder().build(func.body)
