"""Project-wide function index and call graph for lintkit.

:class:`Project` parses every Python file under the scanned roots once,
records each function/method as a :class:`FunctionInfo`, and resolves
``Call`` nodes back to project functions using a best-effort, import-aware
scheme:

* bare names resolve through the caller module's import aliases, then to
  same-module top-level definitions, then to a unique project-wide match;
* ``self.m`` / ``cls.m`` resolve to methods of the caller's own class
  first, then to all methods of that name anywhere (ambiguous results are
  returned as multiple candidates);
* ``alias.f`` resolves through ``import pkg.mod as alias`` bindings.

Resolution returns *candidates*.  Rules that use summaries to excuse code
(e.g. "this call is a durable installer") must require **all** candidates
to satisfy the property — ambiguity never weakens a proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .cfg import CFG, build_cfg

__all__ = ["FunctionInfo", "Project", "dotted_name"]


def dotted_name(node: ast.expr) -> str:
    """Best-effort dotted name for a call target (``""`` if unnamed)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # "<rel>::<Class.>name" — unique per project
    rel: str  # posix path relative to the project root
    module: str  # dotted module guess ("repro.io", "tools.lintkit.cfg")
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    nested: bool  # defined inside another function
    _cfg: CFG | None = field(default=None, repr=False)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def lineno(self) -> int:
        return self.node.lineno


def _module_of(rel: str) -> str:
    parts = Path(rel).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _Collector(ast.NodeVisitor):
    def __init__(self, project: Project, rel: str, module: str) -> None:
        self.project = project
        self.rel = rel
        self.module = module
        self._cls: list[str] = []
        self._func_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._cls.append(node.name)
        self.generic_visit(node)
        self._cls.pop()

    def _func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._cls[-1] if self._cls else None
        label = f"{cls}.{node.name}" if cls else node.name
        info = FunctionInfo(
            qualname=f"{self.rel}::{label}",
            rel=self.rel,
            module=self.module,
            name=node.name,
            cls=cls,
            node=node,
            nested=self._func_depth > 0,
        )
        self.project.functions[info.qualname] = info
        self.project.by_name.setdefault(node.name, []).append(info)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_FunctionDef = _func
    visit_AsyncFunctionDef = _func


def _import_map(
    tree: ast.Module, module: str, is_init: bool
) -> dict[str, str]:
    """Local alias -> dotted target for one module's import statements."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix_parts = module.split(".")
                # level 1 = current package, 2 = parent, ...  For a
                # package __init__, `module` already names the package.
                keep = len(prefix_parts) - node.level + (1 if is_init else 0)
                prefix = ".".join(prefix_parts[:keep]) if keep > 0 else ""
                base = f"{prefix}.{base}".strip(".") if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{base}.{alias.name}".strip(".")
    return out


class Project:
    """Parsed view of every Python file under the scan roots."""

    def __init__(self, root: Path, subdirs: tuple[str, ...] = ("src", "tools")):
        self.root = Path(root)
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.trees: dict[str, ast.Module] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self._by_module: dict[tuple[str, str], list[FunctionInfo]] = {}
        for sub in subdirs:
            base = self.root / sub
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                self._load(path)
        for info in self.functions.values():
            if info.cls is None and not info.nested:
                key = (info.module, info.name)
                self._by_module.setdefault(key, []).append(info)

    def _load(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return
        module = _module_of(rel)
        self.trees[rel] = tree
        self.imports[rel] = _import_map(
            tree, module, is_init=path.name == "__init__.py"
        )
        _Collector(self, rel, module).visit(tree)

    # -- queries ----------------------------------------------------------
    def files(self) -> list[str]:
        return sorted(self.trees)

    def functions_in(self, rel: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.rel == rel]

    def _module_func(self, module: str, name: str) -> list[FunctionInfo]:
        return self._by_module.get((module, name), [])

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """Candidate project functions this call may target.

        Empty means *unresolved* (external library, dynamic dispatch, or
        an unknown name) — never "provably no callee".
        """
        dotted = dotted_name(call.func)
        if not dotted:
            return []
        parts = dotted.split(".")
        imports = self.imports.get(caller.rel, {})

        if len(parts) == 1:
            name = parts[0]
            target = imports.get(name)
            if target and "." in target:
                mod, attr = target.rsplit(".", 1)
                found = self._module_func(mod, attr)
                if found:
                    return found
            same_module = [
                f
                for f in self.functions_in(caller.rel)
                if f.name == name and f.cls is None
            ]
            if same_module:
                return same_module
            everywhere = self.by_name.get(name, [])
            return everywhere if len(everywhere) == 1 else []

        head, tail = parts[0], parts[-1]
        if head in ("self", "cls") and len(parts) == 2 and caller.cls:
            own = [
                f
                for f in self.by_name.get(tail, [])
                if f.cls == caller.cls and f.rel == caller.rel
            ]
            if own:
                return own
            return [f for f in self.by_name.get(tail, []) if f.cls is not None]
        if head in ("self", "cls"):
            # self.attr.method(...) — dispatch through an attribute; all
            # same-named methods anywhere are candidates.
            return [f for f in self.by_name.get(tail, []) if f.cls is not None]
        target = imports.get(head)
        if target and len(parts) == 2:
            found = self._module_func(target, tail)
            if found:
                return found
            # "from pkg import mod" style: alias maps to pkg.mod
            found = self._module_func(f"{target}", tail)
            if found:
                return found
        if target is None and len(parts) == 2:
            # unimported receiver (a local object): fall back to methods
            methods = [f for f in self.by_name.get(tail, []) if f.cls is not None]
            if methods:
                return methods
        return []

    def callers_of(self, qualname: str) -> list[tuple[FunctionInfo, ast.Call]]:
        """All (caller, call) pairs whose candidates include ``qualname``."""
        out: list[tuple[FunctionInfo, ast.Call]] = []
        for caller in self.functions.values():
            for call in iter_calls(caller.node):
                for cand in self.resolve_call(call, caller):
                    if cand.qualname == qualname:
                        out.append((caller, call))
                        break
        return out


def iter_calls(node: ast.AST) -> list[ast.Call]:
    """Calls lexically inside ``node``, excluding nested function bodies.

    Post-order: inner calls precede the call that consumes their result,
    matching evaluation order for ``f(g(x))`` chains.
    """
    out: list[ast.Call] = []

    def visit(n: ast.AST) -> None:
        for child in ast.iter_child_nodes(n):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            visit(child)
            if isinstance(child, ast.Call):
                out.append(child)

    visit(node)
    return out
