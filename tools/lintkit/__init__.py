"""lintkit: the repository's AST lint framework and rule set.

``python -m tools.lintkit`` (from the repository root) lints
``src/repro`` and ``tools`` with every registered rule and exits
nonzero on violations — CI runs exactly that.  See
:mod:`tools.lintkit.framework` for the rule/suppression/baseline
machinery, :mod:`tools.lintkit.rules` for the per-file rule catalog
(LK001…LK105) and :mod:`tools.lintkit.rules_dataflow` for the
interprocedural protocol rules (LK201…LK204) built on
:mod:`tools.lintkit.cfg`, :mod:`tools.lintkit.callgraph` and
:mod:`tools.lintkit.dataflow`.
"""

from tools.lintkit.framework import (
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    format_text,
    lint_paths,
    load_baseline,
    register,
    to_json,
    violation_fingerprint,
    write_baseline,
)
from tools.lintkit import rules as _rules  # noqa: F401  (registers rules)
from tools.lintkit import (  # noqa: F401  (registers dataflow rules)
    rules_dataflow as _rules_dataflow,
)

__all__ = [
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "format_text",
    "lint_paths",
    "load_baseline",
    "register",
    "to_json",
    "violation_fingerprint",
    "write_baseline",
]
