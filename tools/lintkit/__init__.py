"""lintkit: the repository's AST lint framework and rule set.

``python -m tools.lintkit`` (from the repository root) lints
``src/repro`` and ``tools`` with every registered rule and exits
nonzero on violations — CI runs exactly that.  See
:mod:`tools.lintkit.framework` for the rule/suppression machinery and
:mod:`tools.lintkit.rules` for the rule catalog (LK001…LK103).
"""

from tools.lintkit.framework import (
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    format_text,
    lint_paths,
    register,
    to_json,
)
from tools.lintkit import rules as _rules  # noqa: F401  (registers rules)

__all__ = [
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "format_text",
    "lint_paths",
    "register",
    "to_json",
]
