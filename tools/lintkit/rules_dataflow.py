"""Interprocedural dataflow rules (LK201+).

These replace the syntactic LK102/LK104/LK106 pattern checks with
path-sensitive proofs over per-function CFGs (:mod:`tools.lintkit.cfg`)
and a project call graph (:mod:`tools.lintkit.callgraph`):

* **LK201** — durability protocol.  Any raw byte write in the
  persistence tiers must reach the atomic install protocol on **every**
  normal path: under ``repro/shard/`` and ``repro/sketch/`` that means
  ``os.replace`` *followed by* ``fsync_dir`` (or a call to a helper the
  engine proves durable, e.g. ``atomic_replace``); in ``repro/io.py``
  the named ``save_*``/``write_*`` entry points must at least stage and
  ``os.replace``.  Helper indirection no longer defeats the check: a
  durable-installer *summary* is computed bottom-up to a fixpoint, so a
  new wrapper around ``atomic_replace`` is recognised without being
  added to any allow-list.
* **LK202** — crashpoint coverage.  Every direct ``os.replace`` /
  ``os.fsync`` boundary in the persistence tiers must be followed (on
  all normal paths) by a ``crashpoint()`` call — otherwise the crash
  matrix in the resilience tests can never schedule a crash at that
  boundary and the recovery path is dead code.
* **LK203** — deadline propagation.  Serving/webapp code that runs
  query-shaped work must have a ``Deadline`` in scope (the LK104
  contract), *and* the deadline must actually reach the scatter-gather
  entry points (``.select()`` / ``.patients()`` / ``.cohort_sketch()``)
  at each call site, including through serving-local helper functions.
* **LK204** — fork safety.  OS resources captured before ``os.fork()``
  (locks, sockets, pools, RNGs, mmap-backed stores) must not be used in
  the forked child, and must not be shipped into
  ``ProcessPoolExecutor`` workers: they are either duplicated (same RNG
  stream, torn lock state) or dead (mmap, socket) on the other side.

All four are :class:`~tools.lintkit.framework.ProjectRule` subclasses
sharing one cached :class:`~tools.lintkit.callgraph.Project` per root.
Suppressions (``# lintkit: disable=LK20x``) work exactly as for file
rules and must carry a justification comment.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from tools.lintkit.callgraph import (
    FunctionInfo,
    Project,
    dotted_name,
    iter_calls,
)
from tools.lintkit.dataflow import (
    Event,
    fixpoint_summaries,
    node_events,
    replay_events,
    solve_backward_must,
)
from tools.lintkit.framework import ProjectRule, Violation, register

__all__ = [
    "DurabilityProtocolRule",
    "CrashpointCoverageRule",
    "DeadlinePropagationRule",
    "ForkSafetyRule",
    "get_project",
]


# -- shared project cache -----------------------------------------------------

_PROJECT_CACHE: dict[str, tuple[tuple, Project]] = {}


def _project_fingerprint(root: Path) -> tuple:
    entries = []
    for sub in ("src", "tools"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((path.as_posix(), stat.st_mtime_ns, stat.st_size))
    return tuple(entries)


def get_project(root: Path) -> Project:
    """The parsed project for ``root``, cached until any file changes."""
    root = Path(root).resolve()
    fingerprint = _project_fingerprint(root)
    cached = _PROJECT_CACHE.get(str(root))
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    project = Project(root)
    _PROJECT_CACHE[str(root)] = (fingerprint, project)
    return project


# -- shared classifiers -------------------------------------------------------

_NP_SAVERS = {"save", "savez", "savez_compressed"}
_COPY_TAILS = {"copyfile", "copy", "copy2"}


def _tail(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _open_write_mode(call: ast.Call) -> bool:
    mode = ""
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = str(call.args[1].value)
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = str(keyword.value.value)
    return any(ch in mode for ch in "wax+")


def _is_raw_write(call: ast.Call) -> bool:
    """Does this call put bytes on disk directly?"""
    dotted = dotted_name(call.func)
    if not dotted:
        return False
    tail = _tail(dotted)
    if tail in _NP_SAVERS and dotted.startswith(("np.", "numpy.")):
        return True
    if dotted == "open":
        return _open_write_mode(call)
    if dotted.startswith("shutil.") and tail in _COPY_TAILS:
        return True
    return False


def _store_tier(rel: str) -> str | None:
    """"io" / "shard" for persistence-tier files, None otherwise."""
    if rel == "src/repro/io.py":
        return "io"
    if rel.startswith(("src/repro/shard/", "src/repro/sketch/")):
        return "shard"
    return None


def _checked_functions(project: Project, rel: str) -> list[FunctionInfo]:
    return sorted(
        (f for f in project.functions_in(rel) if not f.nested),
        key=lambda f: f.lineno,
    )


# -- LK201: durability protocol ----------------------------------------------

#: Fallback for *unresolved* installer calls only (fixture snippets and
#: dynamically-dispatched helpers).  Resolved calls are judged by the
#: durable-installer summary instead.
_KNOWN_INSTALLERS = {
    "atomic_replace", "_write_json",
    "write_segment", "write_replicated_segment",
    "write_store_manifest", "write_sketch_sidecar",
    "replicate_segment_dir", "_install_segment",
    "append_jsonl", "rotate_jsonl",
}


def _installer_summaries(project: Project) -> set[str]:
    """Qualnames proven to implement the durable install protocol.

    Seed: every ``os.replace`` in the function is followed by
    ``fsync_dir`` on all normal paths.  Propagation: the function
    delegates to an already-proven installer.
    """

    def classify(call: ast.Call) -> str | None:
        dotted = dotted_name(call.func)
        if dotted == "os.replace":
            return "replace"
        if _tail(dotted) == "fsync_dir":
            return "fsyncdir"
        return None

    def events(stmt: ast.stmt | None) -> list[Event]:
        return node_events(stmt, classify)

    def transfer(event: Event, fact: tuple) -> tuple:
        if event[0] == "fsyncdir":
            return (True,)
        return fact

    def seed(func: FunctionInfo) -> bool:
        replaces = [
            c for c in iter_calls(func.node)
            if dotted_name(c.func) == "os.replace"
        ]
        if not replaces:
            return False
        after = solve_backward_must(
            func.cfg, events, transfer, exit_fact=(False,), top=(True,)
        )
        unprotected = [
            event
            for event, fact in replay_events(func.cfg, after, events, transfer)
            if event[0] == "replace" and not fact[0]
        ]
        return not unprotected

    def propagate(func: FunctionInfo, members: set[str]) -> bool:
        for call in iter_calls(func.node):
            candidates = project.resolve_call(call, func)
            if candidates and all(c.qualname in members for c in candidates):
                return True
        return False

    return fixpoint_summaries(project.functions.values(), seed, propagate)


def _nested_writes(func: ast.AST) -> list[ast.Call]:
    """Raw writes inside nested defs/lambdas (write callbacks)."""
    seen: dict[int, ast.Call] = {}
    for inner in ast.walk(func):
        if inner is func or not isinstance(
            inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for call in ast.walk(inner):
            if isinstance(call, ast.Call) and _is_raw_write(call):
                seen[id(call)] = call
    return list(seen.values())


@register
class DurabilityProtocolRule(ProjectRule):
    id = "LK201"
    title = "store writes must complete the durable install protocol"

    def check_project(self, root: Path) -> Iterator[Violation]:
        project = get_project(root)
        installers = _installer_summaries(project)
        for rel in project.files():
            tier = _store_tier(rel)
            if tier is None:
                continue
            for func in _checked_functions(project, rel):
                if tier == "io" and not func.name.lstrip("_").startswith(
                    ("save_", "write_")
                ):
                    continue
                yield from self._check(project, func, tier, installers)

    def _is_install(
        self,
        project: Project,
        func: FunctionInfo,
        call: ast.Call,
        installers: set[str],
    ) -> bool:
        dotted = dotted_name(call.func)
        if not dotted:
            return False
        candidates = project.resolve_call(call, func)
        if candidates:
            return all(c.qualname in installers for c in candidates)
        return _tail(dotted) in _KNOWN_INSTALLERS

    def _check(
        self,
        project: Project,
        func: FunctionInfo,
        tier: str,
        installers: set[str],
    ) -> Iterator[Violation]:
        def classify(call: ast.Call) -> str | None:
            if _is_raw_write(call):
                return "write"
            dotted = dotted_name(call.func)
            if dotted == "os.replace":
                return "replace"
            if _tail(dotted) == "fsync_dir":
                return "fsyncdir"
            if self._is_install(project, func, call, installers):
                return "install"
            return None

        def events(stmt: ast.stmt | None) -> list[Event]:
            return node_events(stmt, classify)

        # Fact after a point: (protocol completes ahead on all paths,
        # fsync_dir lies ahead on all paths).
        def transfer(event: Event, fact: tuple) -> tuple:
            satisfied, dirsync = fact
            kind = event[0]
            if kind == "fsyncdir":
                return (satisfied, True)
            if kind == "replace":
                if tier == "io":
                    return (True, dirsync)
                return (satisfied or dirsync, dirsync)
            if kind == "install":
                return (True, dirsync)
            return fact

        cfg = func.cfg
        after = solve_backward_must(
            cfg, events, transfer, exit_fact=(False, False), top=(True, True)
        )
        flagged: set[int] = set()
        for event, fact in replay_events(cfg, after, events, transfer):
            if event[0] == "write" and not fact[0]:
                flagged.add(event[1].lineno)

        # Writes inside nested defs/lambdas run when the closure runs —
        # the ``atomic_replace(path, write)`` callback shape.  They are
        # sound iff the enclosing function hands them to an installer.
        nested = _nested_writes(func.node)
        if nested:
            has_install = any(
                self._is_install(project, func, call, installers)
                for call in ast.walk(func.node)
                if isinstance(call, ast.Call)
            )
            if not has_install:
                flagged.update(call.lineno for call in nested)

        rel = Path(func.rel)
        for line in sorted(flagged):
            if tier == "io":
                yield self.violation(
                    rel, line,
                    f"{func.name}() writes its target in place — a "
                    f"crash mid-write corrupts the existing file",
                    hint="write to a temporary and os.replace it into "
                         "place (see repro.shard.format.atomic_replace)",
                )
            else:
                yield self.violation(
                    rel, line,
                    f"{func.name}() writes under a shard root outside "
                    f"the atomic install path",
                    hint="stage into a temporary and install it via "
                         "atomic_replace / write_replicated_segment "
                         "(os.replace + fsync_dir at minimum)",
                )


# -- LK202: crashpoint coverage ----------------------------------------------


def _always_crashpoints(project: Project) -> set[str]:
    """Functions that hit ``crashpoint()`` on every normal path."""

    def make_events(members: set[str]):
        def classify_in(func: FunctionInfo):
            def classify(call: ast.Call) -> str | None:
                if _tail(dotted_name(call.func)) == "crashpoint":
                    return "crash"
                candidates = project.resolve_call(call, func)
                if candidates and all(
                    c.qualname in members for c in candidates
                ):
                    return "crash"
                return None

            return classify

        return classify_in

    def transfer(event: Event, fact: tuple) -> tuple:
        if event[0] == "crash":
            return (True,)
        return fact

    def covered(func: FunctionInfo, members: set[str]) -> bool:
        classify = make_events(members)(func)

        def events(stmt: ast.stmt | None) -> list[Event]:
            return node_events(stmt, classify)

        after = solve_backward_must(
            func.cfg, events, transfer, exit_fact=(False,), top=(True,)
        )
        return after[func.cfg.entry][0]

    def seed(func: FunctionInfo) -> bool:
        return covered(func, set())

    return fixpoint_summaries(project.functions.values(), seed, covered)


@register
class CrashpointCoverageRule(ProjectRule):
    id = "LK202"
    title = "durability boundaries must be enumerated by crashpoint()"

    def check_project(self, root: Path) -> Iterator[Violation]:
        project = get_project(root)
        always = _always_crashpoints(project)
        for rel in project.files():
            if _store_tier(rel) is None:
                continue
            for func in _checked_functions(project, rel):
                yield from self._check(project, func, always)

    def _check(
        self, project: Project, func: FunctionInfo, always: set[str]
    ) -> Iterator[Violation]:
        def classify(call: ast.Call) -> str | None:
            dotted = dotted_name(call.func)
            if dotted in ("os.replace", "os.fsync"):
                return f"boundary:{_tail(dotted)}"
            if _tail(dotted) == "crashpoint":
                return "crash"
            candidates = project.resolve_call(call, func)
            if candidates and all(c.qualname in always for c in candidates):
                return "crash"
            return None

        def events(stmt: ast.stmt | None) -> list[Event]:
            return node_events(stmt, classify)

        def transfer(event: Event, fact: tuple) -> tuple:
            if event[0] == "crash":
                return (True,)
            return fact

        after = solve_backward_must(
            func.cfg, events, transfer, exit_fact=(False,), top=(True,)
        )
        seen: set[tuple[int, str]] = set()
        for event, fact in replay_events(func.cfg, after, events, transfer):
            kind, call = event
            if not kind.startswith("boundary:") or fact[0]:
                continue
            boundary = f"os.{kind.split(':', 1)[1]}"
            if (call.lineno, boundary) in seen:
                continue
            seen.add((call.lineno, boundary))
            yield self.violation(
                Path(func.rel), call.lineno,
                f"{func.name}() crosses a durability boundary "
                f"({boundary}) that no crashpoint() enumerates",
                hint="call crashpoint('replace:<label>') (or "
                     "'fsync:<label>') after the boundary so the crash "
                     "matrix visits it (repro.resilience.faults)",
            )


# -- LK203: deadline propagation ----------------------------------------------

_QUERY_METHODS = {
    "select", "patients", "timeline", "overview",
    "personal_timeline", "align",
}
#: Scatter-gather entry points: the deadline must reach these *calls*.
_EXECUTOR_METHODS = {"select", "patients", "cohort_sketch"}


def _serving_scope(rel: str) -> bool:
    return rel == "src/repro/webapp.py" or rel.startswith("src/repro/serving/")


def _mentions_token(func: ast.AST, token: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and token in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and token in node.attr.lower():
            return True
        if isinstance(node, ast.arg) and token in node.arg.lower():
            return True
        if isinstance(node, ast.keyword) and node.arg and (
            token in node.arg.lower()
        ):
            return True
    return False


def _expr_mentions_deadline(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "deadline" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and (
            "deadline" in node.attr.lower()
        ):
            return True
    return False


def _direct_query_calls(func: ast.AST) -> list[ast.Call]:
    return [
        node for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _QUERY_METHODS
    ]


def _serving_summaries(project: Project) -> tuple[set[str], set[str]]:
    """(runs_queries, creates_deadline) over serving-scope functions."""
    in_scope = [
        f for f in project.functions.values() if _serving_scope(f.rel)
    ]
    scope_names = {f.qualname for f in in_scope}

    def runs_seed(func: FunctionInfo) -> bool:
        return bool(_direct_query_calls(func.node))

    def runs_propagate(func: FunctionInfo, members: set[str]) -> bool:
        for call in iter_calls(func.node):
            candidates = [
                c for c in project.resolve_call(call, func)
                if c.qualname in scope_names
            ]
            if candidates and all(c.qualname in members for c in candidates):
                return True
        return False

    runs = fixpoint_summaries(in_scope, runs_seed, runs_propagate)

    def creates_seed(func: FunctionInfo) -> bool:
        return any(
            _tail(dotted_name(call.func)) == "Deadline"
            for call in iter_calls(func.node)
        )

    # Propagation: delegating to a helper that constructs its own
    # Deadline counts — the caller's query work is already bounded.
    creates = fixpoint_summaries(in_scope, creates_seed, runs_propagate)
    return runs, creates


@register
class DeadlinePropagationRule(ProjectRule):
    id = "LK203"
    title = "serving deadlines must reach the query executor"

    def check_project(self, root: Path) -> Iterator[Violation]:
        project = get_project(root)
        runs, creates = _serving_summaries(project)
        for rel in project.files():
            if not _serving_scope(rel):
                continue
            for func in sorted(
                project.functions_in(rel), key=lambda f: f.lineno
            ):
                yield from self._check(project, func, runs, creates)

    def _helper_calls(
        self,
        project: Project,
        func: FunctionInfo,
        runs: set[str],
        creates: set[str],
    ) -> list[tuple[ast.Call, str]]:
        """Calls to serving-local helpers that run queries and do not
        construct their own Deadline."""
        out: list[tuple[ast.Call, str]] = []
        for call in iter_calls(func.node):
            dotted = dotted_name(call.func)
            if not dotted:
                continue
            if isinstance(call.func, ast.Attribute) and (
                call.func.attr in _QUERY_METHODS
            ):
                continue  # direct query call, handled separately
            candidates = [
                c for c in project.resolve_call(call, func)
                if _serving_scope(c.rel)
            ]
            if not candidates:
                continue
            if all(c.qualname in runs for c in candidates) and not any(
                c.qualname in creates for c in candidates
            ):
                out.append((call, _tail(dotted)))
        return out

    def _call_carries_deadline(
        self, call: ast.Call, tainted: set[str]
    ) -> bool:
        for keyword in call.keywords:
            if keyword.arg and "deadline" in keyword.arg.lower():
                return True
        for expr in list(call.args) + [k.value for k in call.keywords]:
            if _expr_mentions_deadline(expr):
                return True
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in tainted:
                    return True
        return False

    def _tainted_names(self, func: ast.AST) -> set[str]:
        tainted: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.arg) and "deadline" in node.arg.lower():
                tainted.add(node.arg)
            if isinstance(node, ast.Assign) and (
                _expr_mentions_deadline(node.value)
                or any(
                    _tail(dotted_name(c.func)) == "Deadline"
                    for c in ast.walk(node.value)
                    if isinstance(c, ast.Call)
                )
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _check(
        self,
        project: Project,
        func: FunctionInfo,
        runs: set[str],
        creates: set[str],
    ) -> Iterator[Violation]:
        mentions = _mentions_token(func.node, "deadline")
        direct = _direct_query_calls(func.node)

        if not mentions:
            # Tier 1 — the LK104 contract: query-shaped work with no
            # Deadline anywhere in scope.
            for call in direct:
                yield self.violation(
                    Path(func.rel), call.lineno,
                    f"{func.name}() runs unbounded work "
                    f"(.{call.func.attr}()) with no Deadline in scope",
                    hint="accept a deadline parameter and thread it into "
                         "query execution (repro.resilience.retry.Deadline)",
                )
            if func.nested:
                return
            for call, name in self._helper_calls(project, func, runs, creates):
                yield self.violation(
                    Path(func.rel), call.lineno,
                    f"{func.name}() calls {name}() which runs query "
                    f"work, with no Deadline in scope",
                    hint="create or accept a Deadline here and pass it "
                         "through to the helper",
                )
            return

        if func.nested:
            return
        # Tier 2 — a Deadline exists; prove it reaches the executor.
        tainted = self._tainted_names(func.node)
        for call in iter_calls(func.node):
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _EXECUTOR_METHODS
            ):
                continue
            if self._call_carries_deadline(call, tainted):
                continue
            yield self.violation(
                Path(func.rel), call.lineno,
                f"{func.name}() calls .{call.func.attr}() without "
                f"threading its Deadline into the call",
                hint="pass deadline= through to the executor so "
                     "scatter-gather stops at the budget",
            )
        for call, name in self._helper_calls(project, func, runs, creates):
            if self._call_carries_deadline(call, tainted):
                continue
            yield self.violation(
                Path(func.rel), call.lineno,
                f"{func.name}() has a Deadline but does not pass it to "
                f"query-running helper {name}()",
                hint="thread the deadline through the helper call so "
                     "downstream query work stays bounded",
            )


# -- LK204: fork safety --------------------------------------------------------

#: Constructors whose result must not cross an os.fork() boundary.
_CAPTURE_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "threading.Condition": "lock",
    "threading.Event": "lock",
    "threading.Barrier": "lock",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "socket.create_server": "socket",
    "concurrent.futures.ProcessPoolExecutor": "process pool",
    "concurrent.futures.process.ProcessPoolExecutor": "process pool",
    "multiprocessing.Pool": "process pool",
    "concurrent.futures.ThreadPoolExecutor": "thread pool",
    "random.Random": "RNG",
    "numpy.random.default_rng": "RNG",
    "mmap.mmap": "mmap",
}

#: Project constructors/openers that hand back mmap-backed state.
_STORE_CTOR_TAILS = {
    "load_store", "open_segment", "open_segment_any",
    "from_shards", "Workbench", "ShardedEventStore",
}


def _resolve_external(dotted: str, imports: dict[str, str]) -> str:
    parts = dotted.split(".")
    target = imports.get(parts[0])
    if target is None:
        return dotted
    return ".".join([target] + parts[1:])


def _capture_kind(call: ast.Call, imports: dict[str, str]) -> str | None:
    dotted = dotted_name(call.func)
    if not dotted:
        return None
    full = _resolve_external(dotted, imports)
    kind = _CAPTURE_CTORS.get(full)
    if kind is not None:
        return kind
    if _tail(dotted) in _STORE_CTOR_TAILS:
        return "mmap-backed store"
    return None


def _assignment_taints(
    node: ast.AST, imports: dict[str, str], self_only: bool
) -> dict[str, str]:
    """Symbol -> kind for ``x = ctor()`` / ``self.x = ctor()`` assigns."""
    taints: dict[str, str] = {}
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        if not isinstance(value, ast.Call):
            continue
        kind = _capture_kind(value, imports)
        if kind is None:
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                taints[f"self.{target.attr}"] = kind
            elif isinstance(target, ast.Name) and not self_only:
                taints[target.id] = kind
    return taints


def _child_branches(func: ast.AST) -> list[tuple[list[ast.stmt], set[int]]]:
    """(child-branch body, node ids of the branch) per os.fork() site."""
    fork_pids: set[str] = set()
    for stmt in ast.walk(func):
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and dotted_name(stmt.value.func) == "os.fork"
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    fork_pids.add(target.id)
    out: list[tuple[list[ast.stmt], set[int]]] = []
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.If):
            continue
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            continue
        left, right = test.left, test.comparators[0]
        operands = (left, right)
        is_fork_pid = any(
            isinstance(op, ast.Name) and op.id in fork_pids for op in operands
        ) or any(
            isinstance(op, ast.Call) and dotted_name(op.func) == "os.fork"
            for op in operands
        )
        is_zero = any(
            isinstance(op, ast.Constant) and op.value == 0 for op in operands
        )
        if is_fork_pid and is_zero:
            ids = {id(n) for s in stmt.body for n in ast.walk(s)}
            out.append((stmt.body, ids))
    return out


@register
class ForkSafetyRule(ProjectRule):
    id = "LK204"
    title = "pre-fork resources must not be used in forked workers"

    def check_project(self, root: Path) -> Iterator[Violation]:
        project = get_project(root)
        for rel in project.files():
            if not rel.startswith("src/repro/"):
                continue
            tree = project.trees[rel]
            imports = project.imports.get(rel, {})
            module_taints = self._module_taints(tree, imports)
            class_taints = self._class_taints(tree, imports)
            has_process_pool = any(
                _capture_kind(call, imports) == "process pool"
                for call in ast.walk(tree)
                if isinstance(call, ast.Call)
            )
            for func in sorted(
                project.functions_in(rel), key=lambda f: f.lineno
            ):
                if func.nested:
                    continue
                yield from self._check_fork(
                    func, imports, module_taints, class_taints
                )
                if has_process_pool:
                    yield from self._check_pool_submit(
                        func, imports, module_taints, class_taints
                    )

    @staticmethod
    def _module_taints(
        tree: ast.Module, imports: dict[str, str]
    ) -> dict[str, str]:
        # Only assignments at module level — walking into function
        # bodies would taint their locals with module scope.
        taints: dict[str, str] = {}
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            taints.update(_assignment_taints(stmt, imports, self_only=False))
        return taints

    @staticmethod
    def _class_taints(
        tree: ast.Module, imports: dict[str, str]
    ) -> dict[str, dict[str, str]]:
        out: dict[str, dict[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                out[node.name] = _assignment_taints(
                    node, imports, self_only=True
                )
        return out

    def _check_fork(
        self,
        func: FunctionInfo,
        imports: dict[str, str],
        module_taints: dict[str, str],
        class_taints: dict[str, dict[str, str]],
    ) -> Iterator[Violation]:
        branches = _child_branches(func.node)
        if not branches:
            return
        own_class = class_taints.get(func.cls or "", {})
        for body, body_ids in branches:
            local_taints: dict[str, str] = {}
            for stmt in ast.walk(func.node):
                if isinstance(stmt, ast.Assign) and id(stmt) not in body_ids:
                    local_taints.update(
                        _assignment_taints(stmt, imports, self_only=False)
                    )
            taints = {**module_taints, **local_taints, **own_class}
            seen: set[tuple[str, int]] = set()
            for stmt in body:
                for sym, kind, line in self._tainted_uses(stmt, taints):
                    if (sym, line) in seen:
                        continue
                    seen.add((sym, line))
                    yield self.violation(
                        Path(func.rel), line,
                        f"{func.name}() uses {sym} ({kind}) captured "
                        f"before fork inside the forked child",
                        hint="re-create per-process state after fork "
                             "(build it in the worker, e.g. via the "
                             "workbench factory) or close the inherited "
                             "handle first",
                    )

    @staticmethod
    def _tainted_uses(
        stmt: ast.stmt, taints: dict[str, str]
    ) -> Iterator[tuple[str, str, int]]:
        closing: set[int] = set()
        for node in ast.walk(stmt):
            # X.close() in the child is fork hygiene, not a use.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "shutdown", "detach")
            ):
                closing.update(id(n) for n in ast.walk(node.func.value))
        for node in ast.walk(stmt):
            if id(node) in closing:
                continue
            if isinstance(node, ast.Name) and node.id in taints:
                yield node.id, taints[node.id], node.lineno
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and f"self.{node.attr}" in taints
            ):
                sym = f"self.{node.attr}"
                yield sym, taints[sym], node.lineno

    def _check_pool_submit(
        self,
        func: FunctionInfo,
        imports: dict[str, str],
        module_taints: dict[str, str],
        class_taints: dict[str, dict[str, str]],
    ) -> Iterator[Violation]:
        own_class = class_taints.get(func.cls or "", {})
        local_taints = _assignment_taints(func.node, imports, self_only=False)
        taints = {**module_taints, **local_taints, **own_class}

        def receiver_is_process_pool(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                if taints.get(expr.id) == "process pool":
                    return True
                return "pool" in expr.id.lower()
            if isinstance(expr, ast.Attribute):
                if (
                    isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and taints.get(f"self.{expr.attr}") == "process pool"
                ):
                    return True
                return "pool" in expr.attr.lower()
            return False

        for call in iter_calls(func.node):
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("submit", "map")
            ):
                continue
            if not receiver_is_process_pool(call.func.value):
                continue
            payload = list(call.args[1:]) + [k.value for k in call.keywords]
            seen: set[tuple[str, int]] = set()
            for expr in payload:
                # A field read off a tainted object (``store.path``)
                # ships a plain value, not the resource — only the
                # object itself crossing the pool boundary is flagged.
                field_reads = {
                    id(node.value)
                    for node in ast.walk(expr)
                    if isinstance(node, ast.Attribute)
                }
                for node in ast.walk(expr):
                    if id(node) in field_reads:
                        continue
                    sym = kind = None
                    if isinstance(node, ast.Name) and node.id in taints:
                        sym, kind = node.id, taints[node.id]
                    elif (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and f"self.{node.attr}" in taints
                    ):
                        sym = f"self.{node.attr}"
                        kind = taints[sym]
                    if sym is None or (sym, node.lineno) in seen:
                        continue
                    seen.add((sym, node.lineno))
                    yield self.violation(
                        Path(func.rel), node.lineno,
                        f"{func.name}() passes {sym} ({kind}) into a "
                        f"process-pool worker",
                        hint="pass paths or plain data and rebuild the "
                             "resource inside the worker process",
                    )
