"""SARIF 2.1.0 output for lintkit.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard consumed by code-scanning UIs; emitting it lets the CI gate
upload one artifact that external tooling can render with no lintkit
knowledge.  The document is deliberately deterministic — relative URIs,
rules sorted by id, no timestamps — so a golden-file test can assert
byte-stable output.  Per-rule timings, when provided, ride along in the
invocation's property bag (a SARIF-sanctioned extension point).
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from tools.lintkit.framework import Rule, Violation, violation_fingerprint

__all__ = ["to_sarif", "sarif_json"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    timings: Mapping[str, float] | None = None,
) -> dict:
    """Build the SARIF 2.1.0 document as a plain dict."""
    ordered_rules = sorted(rules, key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(ordered_rules)}
    results = []
    for violation in violations:
        message = violation.message
        if violation.hint:
            message += f" (hint: {violation.hint})"
        result = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {"startLine": max(violation.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {
                "lintkitFingerprint/v1": violation_fingerprint(violation),
            },
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        results.append(result)
    invocation: dict = {"executionSuccessful": True}
    if timings:
        invocation["properties"] = {
            "ruleTimingsSeconds": {
                rule_id: round(seconds, 6)
                for rule_id, seconds in sorted(timings.items())
            }
        }
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "lintkit",
                        "rules": [
                            {
                                "id": rule.id,
                                "name": type(rule).__name__,
                                "shortDescription": {"text": rule.title},
                            }
                            for rule in ordered_rules
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "invocations": [invocation],
                "results": results,
            }
        ],
    }


def sarif_json(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    timings: Mapping[str, float] | None = None,
) -> str:
    return json.dumps(
        to_sarif(violations, rules, timings), indent=1, sort_keys=True
    )
