"""The repository's lint rules.

Error-taxonomy rules (ported from the original
``tools/check_error_taxonomy.py``, the ISSUE-1 robustness contract):

* **LK001** — no bare ``except:``; a handler must name what it catches.
* **LK002** — ``except Exception``/``BaseException`` must re-raise,
  otherwise failures from an unrelated domain are silently swallowed.
* **LK003** — every exception class defined in ``repro.errors`` derives
  from ``ReproError`` (one catchable base at application boundaries).

Reproducibility / durability rules:

* **LK101** — no unseeded RNG construction in ``src/``: the whole repo
  is deterministic by contract, so ``default_rng()`` / ``Random()``
  without a seed (or any use of numpy's global RNG) breaks replays.
* **LK103** — ``np.load`` in shard code must pass ``mmap_mode``
  explicitly: mapped (``"r"``) and eager (``None``) loads have very
  different failure and memory profiles, so the choice must be visible
  at the call site.

The old syntactic LK102 (atomic store writes), LK104 (handler
deadlines) and LK106 (shard-root install path) checks are subsumed by
the interprocedural LK201/LK203 rules in
:mod:`tools.lintkit.rules_dataflow`, which prove the same contracts
path-sensitively and through helper indirection.

Serving rules:

* **LK105** — viz/serving code (``repro/webapp.py``,
  ``repro/serving/``, ``repro/viz/``) that materializes merged rows
  (``.materialize_store()``, ``.to_flat()``) must have a row-threshold
  guard in scope: cohort views are served from sketch folds by
  contract, so any row materialization on these paths must be an
  explicit, bounded drill-down — never an unconditional full scan.

Narrow builtin catches (``except ValueError:`` around one conversion)
are legitimate control flow and pass; the rules target the broad
handlers and silent-corruption paths that hide real faults.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator

from tools.lintkit.framework import (
    ProjectRule,
    Rule,
    Violation,
    register,
)

__all__ = [
    "BareExceptRule",
    "BroadExceptRule",
    "TaxonomyRootRule",
    "UnseededRngRule",
    "ImplicitMmapRule",
    "UnguardedMaterializationRule",
]

_BROAD = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """The dotted names a handler catches (empty for a bare except)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
        else:
            names.append(ast.dump(item))
    return names


def _dotted(node: ast.AST) -> str:
    """``np.random.default_rng`` -> that string; '' when not a name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class BareExceptRule(Rule):
    id = "LK001"
    title = "no bare except clauses"

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    rel, node.lineno,
                    "bare 'except:' — name what you catch",
                    hint="catch the narrowest exception the block can "
                         "actually raise",
                )


@register
class BroadExceptRule(Rule):
    id = "LK002"
    title = "broad except must re-raise"

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _caught_names(node)
            if any(n in _BROAD for n in names) and not any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                yield self.violation(
                    rel, node.lineno,
                    f"'except {'/'.join(names)}' without a re-raise "
                    f"silently swallows unrelated failures",
                    hint="catch a ReproError subclass, or re-raise",
                )


@register
class TaxonomyRootRule(ProjectRule):
    id = "LK003"
    title = "repro.errors classes derive from ReproError"

    def check_project(self, root: Path) -> Iterable[Violation]:
        src = str(root / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        import repro.errors as errors_module

        rel = Path("src/repro/errors.py")
        for name in sorted(dir(errors_module)):
            obj = getattr(errors_module, name)
            if not isinstance(obj, type) or not issubclass(
                obj, BaseException
            ):
                continue
            if obj.__module__ != "repro.errors":
                continue
            if obj is not errors_module.ReproError and not issubclass(
                obj, errors_module.ReproError
            ):
                yield self.violation(
                    rel, 1,
                    f"repro.errors.{name} does not derive from ReproError",
                    hint="derive every domain exception from ReproError "
                         "so boundaries can catch one base class",
                )


@register
class UnseededRngRule(Rule):
    id = "LK101"
    title = "no unseeded RNG in src/"

    #: numpy module-level functions that mutate/read the *global* RNG —
    #: unseedable per call site, so any use breaks determinism.
    _GLOBAL_STATE = {
        "seed", "rand", "randn", "randint", "random", "choice",
        "shuffle", "permutation", "normal", "uniform",
    }

    def applies_to(self, rel: Path) -> bool:
        return rel.parts[:1] == ("src",)

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "default_rng" or dotted.endswith("random.Random"):
                if not node.args and not node.keywords:
                    yield self.violation(
                        rel, node.lineno,
                        f"{dotted}() constructed without a seed",
                        hint="pass an explicit seed (see "
                             "repro.config.rng / derive_seeds)",
                    )
            elif (
                dotted.startswith(("np.random.", "numpy.random."))
                and tail in self._GLOBAL_STATE
            ):
                yield self.violation(
                    rel, node.lineno,
                    f"{dotted}() uses numpy's global RNG state",
                    hint="use a Generator from np.random.default_rng(seed)",
                )


@register
class ImplicitMmapRule(Rule):
    id = "LK103"
    title = "shard np.load must pass mmap_mode explicitly"

    def applies_to(self, rel: Path) -> bool:
        return rel.as_posix().startswith("src/repro/shard/")

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted not in ("np.load", "numpy.load"):
                continue
            if not any(k.arg == "mmap_mode" for k in node.keywords):
                yield self.violation(
                    rel, node.lineno,
                    "np.load without an explicit mmap_mode",
                    hint="pass mmap_mode='r' for a mapped view or "
                         "mmap_mode=None to document an eager load",
                )


@register
class UnguardedMaterializationRule(Rule):
    id = "LK105"
    title = "viz/serving row materialization needs a threshold guard"

    #: Entry points that flatten a sharded store into per-row arrays —
    #: O(total rows) memory and time, the exact cost the sketch
    #: subsystem exists to avoid on view-serving paths.
    _MATERIALIZE_METHODS = {"materialize_store", "to_flat"}

    #: A function that mentions one of these is making the drill-down
    #: decision explicit (e.g. comparing against
    #: ``config.drilldown_rows`` before flattening).
    _GUARD_TOKENS = ("threshold", "drilldown", "max_rows", "row_limit")

    def applies_to(self, rel: Path) -> bool:
        posix = rel.as_posix()
        return posix == "src/repro/webapp.py" or posix.startswith(
            ("src/repro/serving/", "src/repro/viz/")
        )

    @classmethod
    def _mentions_guard(cls, func: ast.AST) -> bool:
        def _hit(name: str) -> bool:
            lowered = name.lower()
            return any(token in lowered for token in cls._GUARD_TOKENS)

        for node in ast.walk(func):
            if isinstance(node, ast.Name) and _hit(node.id):
                return True
            if isinstance(node, ast.Attribute) and _hit(node.attr):
                return True
            if isinstance(node, ast.arg) and _hit(node.arg):
                return True
            if isinstance(node, ast.keyword) and node.arg and _hit(node.arg):
                return True
        return False

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            calls = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MATERIALIZE_METHODS
            ]
            if not calls or self._mentions_guard(func):
                continue
            for call in calls:
                yield self.violation(
                    rel, call.lineno,
                    f"{func.name}() materializes rows "
                    f"(.{call.func.attr}()) with no row-threshold guard",
                    hint="gate the drill-down on a row budget (e.g. "
                         "config.drilldown_rows) or serve the view from "
                         "a sketch fold (repro.sketch)",
                )
