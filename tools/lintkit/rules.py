"""The repository's lint rules.

Error-taxonomy rules (ported from the original
``tools/check_error_taxonomy.py``, the ISSUE-1 robustness contract):

* **LK001** — no bare ``except:``; a handler must name what it catches.
* **LK002** — ``except Exception``/``BaseException`` must re-raise,
  otherwise failures from an unrelated domain are silently swallowed.
* **LK003** — every exception class defined in ``repro.errors`` derives
  from ``ReproError`` (one catchable base at application boundaries).

Reproducibility / durability rules:

* **LK101** — no unseeded RNG construction in ``src/``: the whole repo
  is deterministic by contract, so ``default_rng()`` / ``Random()``
  without a seed (or any use of numpy's global RNG) breaks replays.
* **LK102** — ``save_*``/``write_*`` functions in the persistence
  layers (``repro/io.py``, ``repro/shard/``) must not write their
  target in place: write a temporary, then ``os.replace`` it, so a
  crash mid-write cannot corrupt an existing store.
* **LK103** — ``np.load`` in shard code must pass ``mmap_mode``
  explicitly: mapped (``"r"``) and eager (``None``) loads have very
  different failure and memory profiles, so the choice must be visible
  at the call site.
* **LK106** — *any* function in ``repro/shard/`` that writes bytes must
  route them through the atomic install helpers (``atomic_replace``,
  ``write_segment`` / ``write_replicated_segment``,
  ``replicate_segment_dir``, ``_install_segment``, …) or use the full
  stage-then-commit shape (``os.replace`` *plus* ``fsync_dir``).  A
  bare ``open(..., "wb")`` + ``os.rename`` under a shard root can tear
  on power loss and bypasses the checksum/crashpoint discipline the
  replication and scrub machinery depend on.

Serving rules:

* **LK104** — HTTP handler code (``repro/webapp.py``,
  ``repro/serving/``) that runs unbounded query or render work
  (``.select()``, ``.patients()``, ``.timeline()``, ``.overview()``,
  ``.personal_timeline()``, ``.align()``) must have a ``Deadline`` in
  scope: a slow query on an undeadlined handler pins a worker forever
  and defeats admission control.
* **LK105** — viz/serving code (``repro/webapp.py``,
  ``repro/serving/``, ``repro/viz/``) that materializes merged rows
  (``.materialize_store()``, ``.to_flat()``) must have a row-threshold
  guard in scope: cohort views are served from sketch folds by
  contract, so any row materialization on these paths must be an
  explicit, bounded drill-down — never an unconditional full scan.

Narrow builtin catches (``except ValueError:`` around one conversion)
are legitimate control flow and pass; the rules target the broad
handlers and silent-corruption paths that hide real faults.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator

from tools.lintkit.framework import (
    ProjectRule,
    Rule,
    Violation,
    register,
)

__all__ = [
    "BareExceptRule",
    "BroadExceptRule",
    "TaxonomyRootRule",
    "UnseededRngRule",
    "NonAtomicWriteRule",
    "ShardBareWriteRule",
    "ImplicitMmapRule",
    "UndeadlinedHandlerRule",
    "UnguardedMaterializationRule",
]

_BROAD = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """The dotted names a handler catches (empty for a bare except)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
        else:
            names.append(ast.dump(item))
    return names


def _dotted(node: ast.AST) -> str:
    """``np.random.default_rng`` -> that string; '' when not a name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class BareExceptRule(Rule):
    id = "LK001"
    title = "no bare except clauses"

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    rel, node.lineno,
                    "bare 'except:' — name what you catch",
                    hint="catch the narrowest exception the block can "
                         "actually raise",
                )


@register
class BroadExceptRule(Rule):
    id = "LK002"
    title = "broad except must re-raise"

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _caught_names(node)
            if any(n in _BROAD for n in names) and not any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                yield self.violation(
                    rel, node.lineno,
                    f"'except {'/'.join(names)}' without a re-raise "
                    f"silently swallows unrelated failures",
                    hint="catch a ReproError subclass, or re-raise",
                )


@register
class TaxonomyRootRule(ProjectRule):
    id = "LK003"
    title = "repro.errors classes derive from ReproError"

    def check_project(self, root: Path) -> Iterable[Violation]:
        src = str(root / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        import repro.errors as errors_module

        rel = Path("src/repro/errors.py")
        for name in sorted(dir(errors_module)):
            obj = getattr(errors_module, name)
            if not isinstance(obj, type) or not issubclass(
                obj, BaseException
            ):
                continue
            if obj.__module__ != "repro.errors":
                continue
            if obj is not errors_module.ReproError and not issubclass(
                obj, errors_module.ReproError
            ):
                yield self.violation(
                    rel, 1,
                    f"repro.errors.{name} does not derive from ReproError",
                    hint="derive every domain exception from ReproError "
                         "so boundaries can catch one base class",
                )


@register
class UnseededRngRule(Rule):
    id = "LK101"
    title = "no unseeded RNG in src/"

    #: numpy module-level functions that mutate/read the *global* RNG —
    #: unseedable per call site, so any use breaks determinism.
    _GLOBAL_STATE = {
        "seed", "rand", "randn", "randint", "random", "choice",
        "shuffle", "permutation", "normal", "uniform",
    }

    def applies_to(self, rel: Path) -> bool:
        return rel.parts[:1] == ("src",)

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "default_rng" or dotted.endswith("random.Random"):
                if not node.args and not node.keywords:
                    yield self.violation(
                        rel, node.lineno,
                        f"{dotted}() constructed without a seed",
                        hint="pass an explicit seed (see "
                             "repro.config.rng / derive_seeds)",
                    )
            elif (
                dotted.startswith(("np.random.", "numpy.random."))
                and tail in self._GLOBAL_STATE
            ):
                yield self.violation(
                    rel, node.lineno,
                    f"{dotted}() uses numpy's global RNG state",
                    hint="use a Generator from np.random.default_rng(seed)",
                )


@register
class NonAtomicWriteRule(Rule):
    id = "LK102"
    title = "store writers must replace atomically"

    #: Calls that perform the actual byte-writing.
    _WRITE_ATTRS = {"save", "savez", "savez_compressed"}
    #: Calls that make the surrounding function atomic.
    _ATOMIC = {"os.replace", "atomic_replace", "_write_json"}

    def applies_to(self, rel: Path) -> bool:
        posix = rel.as_posix()
        return posix == "src/repro/io.py" or posix.startswith(
            "src/repro/shard/"
        )

    def _writes(self, func: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted.rsplit(".", 1)[-1] in self._WRITE_ATTRS and (
                dotted.startswith(("np.", "numpy."))
            ):
                yield node
            elif dotted == "open":
                mode = ""
                if len(node.args) >= 2 and isinstance(
                    node.args[1], ast.Constant
                ):
                    mode = str(node.args[1].value)
                for keyword in node.keywords:
                    if keyword.arg == "mode" and isinstance(
                        keyword.value, ast.Constant
                    ):
                        mode = str(keyword.value.value)
                if any(ch in mode for ch in "wax+"):
                    yield node

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            name = func.name.lstrip("_")
            if not name.startswith(("save_", "write_")):
                continue
            calls = {_dotted(n.func) for n in ast.walk(func)
                     if isinstance(n, ast.Call)}
            if any(c.rsplit(".", 1)[-1] in
                   {a.rsplit(".", 1)[-1] for a in self._ATOMIC}
                   for c in calls):
                continue
            for write in self._writes(func):
                yield self.violation(
                    rel, write.lineno,
                    f"{func.name}() writes its target in place — a "
                    f"crash mid-write corrupts the existing file",
                    hint="write to a temporary and os.replace it into "
                         "place (see repro.shard.format.atomic_replace)",
                )


@register
class ShardBareWriteRule(Rule):
    id = "LK106"
    title = "shard-root writes must go through the atomic install path"

    #: Helpers that already implement the stage → verify → replace →
    #: fsync discipline (or delegate to one that does).  A function that
    #: writes bytes *and* calls one of these is routing its output
    #: through the install path.
    _INSTALL_HELPERS = {
        "atomic_replace", "_write_json",
        "write_segment", "write_replicated_segment",
        "write_store_manifest", "write_sketch_sidecar",
        "replicate_segment_dir", "_install_segment",
        "append_jsonl", "rotate_jsonl",
    }

    def applies_to(self, rel: Path) -> bool:
        return rel.as_posix().startswith("src/repro/shard/")

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        detector = NonAtomicWriteRule()
        defs = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # A def nested inside another def is a write callback handed to
        # an install helper (the ``atomic_replace(path, write)`` shape);
        # judge its writes in the enclosing function's context, where
        # the helper call is visible.
        nested = {
            id(inner)
            for outer in defs
            for inner in ast.walk(outer)
            if inner is not outer
            and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for func in defs:
            if id(func) in nested:
                continue
            writes = list(detector._writes(func))
            if not writes:
                continue
            tails = {
                _dotted(n.func).rsplit(".", 1)[-1]
                for n in ast.walk(func) if isinstance(n, ast.Call)
            }
            if tails & self._INSTALL_HELPERS:
                continue
            dotted = {
                _dotted(n.func) for n in ast.walk(func)
                if isinstance(n, ast.Call)
            }
            if "os.replace" in dotted and "fsync_dir" in tails:
                continue
            for write in writes:
                yield self.violation(
                    rel, write.lineno,
                    f"{func.name}() writes under a shard root outside "
                    f"the atomic install path",
                    hint="stage into a temporary and install it via "
                         "atomic_replace / write_replicated_segment "
                         "(os.replace + fsync_dir at minimum)",
                )


@register
class UndeadlinedHandlerRule(Rule):
    id = "LK104"
    title = "HTTP handlers must bound query work with a Deadline"

    #: Workbench/engine entry points whose cost scales with the store
    #: (query evaluation, full-cohort renders) — a handler calling one
    #: without a deadline in scope can pin its worker indefinitely.
    _QUERY_METHODS = {
        "select", "patients", "timeline", "overview",
        "personal_timeline", "align",
    }

    def applies_to(self, rel: Path) -> bool:
        posix = rel.as_posix()
        return posix == "src/repro/webapp.py" or posix.startswith(
            "src/repro/serving/"
        )

    @classmethod
    def _mentions_deadline(cls, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and "deadline" in node.id.lower():
                return True
            if isinstance(node, ast.Attribute) and (
                "deadline" in node.attr.lower()
            ):
                return True
            if isinstance(node, ast.arg) and "deadline" in node.arg.lower():
                return True
            if isinstance(node, ast.keyword) and node.arg and (
                "deadline" in node.arg.lower()
            ):
                return True
        return False

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            calls = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._QUERY_METHODS
            ]
            if not calls or self._mentions_deadline(func):
                continue
            for call in calls:
                yield self.violation(
                    rel, call.lineno,
                    f"{func.name}() runs unbounded work "
                    f"(.{call.func.attr}()) with no Deadline in scope",
                    hint="accept a deadline parameter and thread it into "
                         "query execution (repro.resilience.retry.Deadline)",
                )


@register
class ImplicitMmapRule(Rule):
    id = "LK103"
    title = "shard np.load must pass mmap_mode explicitly"

    def applies_to(self, rel: Path) -> bool:
        return rel.as_posix().startswith("src/repro/shard/")

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted not in ("np.load", "numpy.load"):
                continue
            if not any(k.arg == "mmap_mode" for k in node.keywords):
                yield self.violation(
                    rel, node.lineno,
                    "np.load without an explicit mmap_mode",
                    hint="pass mmap_mode='r' for a mapped view or "
                         "mmap_mode=None to document an eager load",
                )


@register
class UnguardedMaterializationRule(Rule):
    id = "LK105"
    title = "viz/serving row materialization needs a threshold guard"

    #: Entry points that flatten a sharded store into per-row arrays —
    #: O(total rows) memory and time, the exact cost the sketch
    #: subsystem exists to avoid on view-serving paths.
    _MATERIALIZE_METHODS = {"materialize_store", "to_flat"}

    #: A function that mentions one of these is making the drill-down
    #: decision explicit (e.g. comparing against
    #: ``config.drilldown_rows`` before flattening).
    _GUARD_TOKENS = ("threshold", "drilldown", "max_rows", "row_limit")

    def applies_to(self, rel: Path) -> bool:
        posix = rel.as_posix()
        return posix == "src/repro/webapp.py" or posix.startswith(
            ("src/repro/serving/", "src/repro/viz/")
        )

    @classmethod
    def _mentions_guard(cls, func: ast.AST) -> bool:
        def _hit(name: str) -> bool:
            lowered = name.lower()
            return any(token in lowered for token in cls._GUARD_TOKENS)

        for node in ast.walk(func):
            if isinstance(node, ast.Name) and _hit(node.id):
                return True
            if isinstance(node, ast.Attribute) and _hit(node.attr):
                return True
            if isinstance(node, ast.arg) and _hit(node.arg):
                return True
            if isinstance(node, ast.keyword) and node.arg and _hit(node.arg):
                return True
        return False

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterator[Violation]:
        for func in ast.walk(tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            calls = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MATERIALIZE_METHODS
            ]
            if not calls or self._mentions_guard(func):
                continue
            for call in calls:
                yield self.violation(
                    rel, call.lineno,
                    f"{func.name}() materializes rows "
                    f"(.{call.func.attr}()) with no row-threshold guard",
                    hint="gate the drill-down on a row budget (e.g. "
                         "config.drilldown_rows) or serve the view from "
                         "a sketch fold (repro.sketch)",
                )
