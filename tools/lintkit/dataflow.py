"""Dataflow solvers for lintkit's protocol rules.

The rules in :mod:`tools.lintkit.rules_dataflow` are *must*-analyses over
the normal-edge CFG: a fact holds at a program point only if it holds on
**every** normal path from that point to the function exit.  The lattice
is a tuple of booleans joined element-wise with AND; ``raise`` paths have
no normal successors, so the empty join (all-True) makes aborting always
legal — exactly the semantics of "the operation never completed, nothing
to prove".

Interprocedural reasoning uses bottom-up *summaries* computed to a
fixpoint: a monotone predicate over functions (e.g. "this function is a
durable installer") is re-evaluated until no function changes class.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable

from .callgraph import FunctionInfo, iter_calls
from .cfg import CFG

__all__ = [
    "Event",
    "node_events",
    "solve_backward_must",
    "replay_events",
    "fixpoint_summaries",
]

# A classified call inside one statement: (kind, call node).
Event = tuple[str, ast.Call]

Fact = tuple[bool, ...]


def _evaluated_exprs(stmt: ast.stmt) -> list[ast.expr] | None:
    """The expressions evaluated when this CFG node executes.

    Compound statements (``if``/``while``/``for``/``with``/``match``)
    are represented in the CFG by a *header* node whose body statements
    have nodes of their own — only the header expression runs at the
    header node, so only its calls count there.  ``None`` means the
    whole statement executes as one node.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Defining a function evaluates decorators and defaults; the
        # body runs when the closure runs.
        return list(stmt.decorator_list) + list(stmt.args.defaults) + [
            d for d in stmt.args.kw_defaults if d is not None
        ]
    return None


def node_events(
    stmt: ast.stmt | None, classify: Callable[[ast.Call], str | None]
) -> list[Event]:
    """Classified calls evaluated *at* ``stmt``'s node, in order.

    Calls inside nested ``def``/``lambda`` bodies are excluded — they run
    when the closure runs, not when this statement does — and calls in a
    compound statement's body belong to the body statements' own nodes.
    """
    if stmt is None:
        return []
    headers = _evaluated_exprs(stmt)
    sources = [stmt] if headers is None else headers
    out: list[Event] = []
    for source in sources:
        calls = iter_calls(source)
        if isinstance(source, ast.Call):
            calls.append(source)  # iter_calls only yields descendants
        for call in calls:
            kind = classify(call)
            if kind is not None:
                out.append((kind, call))
    return out


def solve_backward_must(
    cfg: CFG,
    events: Callable[[ast.stmt | None], list[Event]],
    transfer: Callable[[Event, Fact], Fact],
    exit_fact: Fact,
    top: Fact,
) -> dict[int, Fact]:
    """Backward must-analysis; returns the fact *after* each node.

    ``transfer`` maps (event, fact-after-event) -> fact-before-event and
    is applied to a node's events in reverse evaluation order.  The fact
    before a node is joined (AND) into the after-fact of its normal
    predecessors.  Nodes with no normal successors other than the exit
    keep the vacuous all-True fact: those paths abort.
    """

    def meet(a: Fact, b: Fact) -> Fact:
        return tuple(x and y for x, y in zip(a, b))

    # Event extraction may hit the call graph; compute once per node.
    node_evs = {n.index: events(n.stmt) for n in cfg.nodes}

    def before(node_index: int, after: Fact) -> Fact:
        fact = after
        for event in reversed(node_evs[node_index]):
            fact = transfer(event, fact)
        return fact

    after_facts: dict[int, Fact] = {n.index: top for n in cfg.nodes}
    after_facts[cfg.exit] = exit_fact
    preds = cfg.preds()
    work = [n.index for n in cfg.nodes]
    while work:
        idx = work.pop()
        fact_before = before(idx, after_facts[idx])
        for p in preds[idx]:
            merged = meet(after_facts[p], fact_before)
            if merged != after_facts[p]:
                after_facts[p] = merged
                work.append(p)
    return after_facts


def replay_events(
    cfg: CFG,
    after_facts: dict[int, Fact],
    events: Callable[[ast.stmt | None], list[Event]],
    transfer: Callable[[Event, Fact], Fact],
) -> Iterable[tuple[Event, Fact]]:
    """Yield each event with the converged fact holding *after* it.

    Run once after :func:`solve_backward_must` converges to inspect the
    fact at interior event positions (e.g. "was the protocol complete
    after this write?").
    """
    for node in cfg.nodes:
        fact = after_facts[node.index]
        for event in reversed(events(node.stmt)):
            yield event, fact
            fact = transfer(event, fact)


def fixpoint_summaries(
    functions: Iterable[FunctionInfo],
    seed: Callable[[FunctionInfo], bool],
    propagate: Callable[[FunctionInfo, set[str]], bool],
) -> set[str]:
    """Qualnames satisfying a monotone property, to a fixpoint.

    ``seed`` proves the property intraprocedurally; ``propagate`` may
    additionally prove it given the current summary set (e.g. "delegates
    to a function already in the set").  Membership only grows, so the
    iteration terminates.
    """
    funcs = list(functions)
    members: set[str] = {f.qualname for f in funcs if seed(f)}
    changed = True
    while changed:
        changed = False
        for f in funcs:
            if f.qualname in members:
                continue
            if propagate(f, members):
                members.add(f.qualname)
                changed = True
    return members
