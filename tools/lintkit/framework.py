"""The lintkit rule framework: registry, suppressions, runner, reporters.

A *rule* inspects one parsed source file (:class:`Rule`) or the project
as a whole (:class:`ProjectRule`) and yields :class:`Violation` records
with a stable id, a repo-relative location and a fix-it hint.  Rules
register themselves with :func:`register`; the runner
(:func:`lint_paths`) walks the requested files, applies every rule whose
:meth:`Rule.applies_to` accepts the file, and filters the result through
suppression comments:

* ``# lintkit: disable=LK001`` on a line suppresses the named rule(s)
  for that line;
* ``# lintkit: disable-file=LK001`` anywhere in a file suppresses them
  for the whole file.

Both forms take a comma-separated id list.  Suppressions are deliberate
per-site waivers — they keep the gate strict while still allowing the
occasional justified exception, and they are grep-able.  They apply to
project-wide rules too: a violation reported at ``path:line`` honours
that file's suppression comments regardless of which rule produced it.

Baselines complement suppressions for adopting a new rule over an old
codebase: :func:`write_baseline` records a fingerprint per existing
violation (rule id + path + message, deliberately line-independent) and
:func:`lint_paths` can filter known fingerprints out, so only *new*
findings gate CI while the backlog is burned down.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "ROOT",
    "Violation",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "lint_paths",
    "format_text",
    "to_json",
    "violation_fingerprint",
    "load_baseline",
    "write_baseline",
]

ROOT = Path(__file__).resolve().parent.parent.parent

_SUPPRESS_LINE_RE = re.compile(r"#\s*lintkit:\s*disable=([A-Z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*lintkit:\s*disable-file=([A-Z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, what, and how to fix it."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return asdict(self)


def violation_fingerprint(violation: Violation) -> str:
    """Stable identity for baselining: rule + file + message.

    The line number is deliberately excluded so unrelated edits above a
    known finding do not resurrect it from the baseline.
    """
    key = f"{violation.rule}|{violation.path}|{violation.message}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints recorded by :func:`write_baseline`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return set(payload.get("fingerprints", []))


def write_baseline(path: str | Path, violations: Sequence[Violation]) -> None:
    """Record the current findings so only new ones gate future runs."""
    payload = {
        "comment": "lintkit baseline — regenerate with --write-baseline",
        "fingerprints": sorted(
            {violation_fingerprint(v) for v in violations}
        ),
    }
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )


class Rule:
    """A per-file AST rule.  Subclass, set ``id``/``title``, implement
    :meth:`check`; decorate with :func:`register`."""

    id: str = ""
    title: str = ""

    def applies_to(self, rel: Path) -> bool:
        """Should this rule run on the file at repo-relative ``rel``?"""
        return True

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterable[Violation]:
        raise NotImplementedError

    # -- helpers shared by concrete rules ---------------------------------

    def violation(self, rel: Path, line: int, message: str,
                  hint: str = "") -> Violation:
        return Violation(self.id, rel.as_posix(), line, message, hint)


class ProjectRule(Rule):
    """A rule over the project as a whole (runs once, not per file)."""

    def check(self, tree: ast.AST, rel: Path,
              text: str) -> Iterable[Violation]:
        return ()

    def check_project(self, root: Path) -> Iterable[Violation]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _parse_suppressions(
    text: str,
) -> tuple[set[str], dict[int, set[str]]]:
    file_wide: set[str] = set()
    per_line: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            file_wide.update(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
        match = _SUPPRESS_LINE_RE.search(line)
        if match:
            per_line.setdefault(lineno, set()).update(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
    return file_wide, per_line


def _lint_file(path: Path, rules: Sequence[Rule], root: Path,
               timings: dict[str, float]) -> list[Violation]:
    rel = path.resolve().relative_to(root)
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [Violation("LK000", rel.as_posix(), exc.lineno or 1,
                          f"file does not parse: {exc.msg}")]
    file_wide, per_line = _parse_suppressions(text)
    violations = []
    for rule in rules:
        if isinstance(rule, ProjectRule) or not rule.applies_to(rel):
            continue
        started = time.perf_counter()
        for violation in rule.check(tree, rel, text):
            if violation.rule in file_wide:
                continue
            if violation.rule in per_line.get(violation.line, ()):
                continue
            violations.append(violation)
        timings[rule.id] = (
            timings.get(rule.id, 0.0) + time.perf_counter() - started
        )
    return violations


class _SuppressionIndex:
    """Lazy per-file suppression lookup for project-rule violations."""

    def __init__(self, root: Path) -> None:
        self._root = root
        self._cache: dict[str, tuple[set[str], dict[int, set[str]]]] = {}

    def suppressed(self, violation: Violation) -> bool:
        entry = self._cache.get(violation.path)
        if entry is None:
            path = self._root / violation.path
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                text = ""
            entry = _parse_suppressions(text)
            self._cache[violation.path] = entry
        file_wide, per_line = entry
        return (
            violation.rule in file_wide
            or violation.rule in per_line.get(violation.line, ())
        )


def _expand(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[Rule] | None = None,
               root: Path | None = None,
               timings: dict[str, float] | None = None,
               baseline: set[str] | None = None) -> list[Violation]:
    """Lint files/directories; returns violations sorted by location.

    ``rules=None`` runs every registered rule (file rules per file,
    project rules once).  ``timings`` is an out-parameter accumulating
    wall seconds per rule id.  ``baseline`` filters out violations whose
    :func:`violation_fingerprint` is already recorded.

    Project rules analyse the whole project under ``root``; when an
    explicit path list is given, their findings are restricted to those
    files so ``python -m tools.lintkit some/file.py`` stays focused.
    """
    root = (root or ROOT).resolve()
    active = list(rules) if rules is not None else all_rules()
    timings = timings if timings is not None else {}
    files = _expand(paths)
    requested = {
        p.resolve().relative_to(root).as_posix()
        for p in files
        if p.resolve().is_relative_to(root)
    }
    violations: list[Violation] = []
    for path in files:
        violations.extend(_lint_file(path, active, root, timings))
    suppressions = _SuppressionIndex(root)
    for rule in active:
        if not isinstance(rule, ProjectRule):
            continue
        started = time.perf_counter()
        for violation in rule.check_project(root):
            if requested and violation.path not in requested:
                continue
            if suppressions.suppressed(violation):
                continue
            violations.append(violation)
        timings[rule.id] = (
            timings.get(rule.id, 0.0) + time.perf_counter() - started
        )
    if baseline:
        violations = [
            v for v in violations
            if violation_fingerprint(v) not in baseline
        ]
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def format_text(violations: Sequence[Violation]) -> str:
    """Human-readable report (one block per violation)."""
    if not violations:
        return "lintkit: clean"
    lines = [f"{len(violations)} lint violation(s):"]
    lines.extend(f"  {v.format()}" for v in violations)
    return "\n".join(lines)


def to_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report for CI annotation tooling."""
    return json.dumps([v.to_json() for v in violations],
                      indent=1, sort_keys=True)
