"""CLI entry point: ``python -m tools.lintkit [paths…]``.

Defaults to linting ``src/repro`` and ``tools``; exits 1 when any rule
fires (the CI gate), 0 when clean.  ``--json`` emits the machine
readable report, ``--sarif`` a SARIF 2.1.0 document, ``--select``
narrows to specific rule ids, ``--stats`` appends per-rule wall times,
and ``--baseline`` / ``--write-baseline`` manage the known-findings
file so a new rule can gate only *new* violations.  ``--root`` points
the project-wide dataflow rules at a different tree (used by the CI
smoke step and the fixture tests).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import (  # noqa: E402
    all_rules,
    format_text,
    lint_paths,
    load_baseline,
    to_json,
    write_baseline,
)
from tools.lintkit.sarif import sarif_json  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lintkit",
        description="AST lint over the repository (run from the root)",
    )
    parser.add_argument("paths", nargs="*",
                        default=["src/repro", "tools"],
                        help="files or directories (default: src/repro "
                             "and tools)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--sarif", action="store_true",
                        help="SARIF 2.1.0 report on stdout")
    parser.add_argument("--stats", action="store_true",
                        help="append per-rule wall times to the report")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="suppress findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current findings to FILE and exit 0")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="project root for scoping and the "
                             "dataflow rules (default: the repo root)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0
    if args.select:
        wanted = {part.strip() for part in args.select.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]

    root = Path(args.root).resolve() if args.root else ROOT
    baseline = load_baseline(args.baseline) if args.baseline else None
    timings: dict[str, float] = {}
    violations = lint_paths(args.paths, rules=rules, root=root,
                            timings=timings, baseline=baseline)
    if args.write_baseline:
        write_baseline(args.write_baseline, violations)
        print(f"lintkit: baselined {len(violations)} finding(s) to "
              f"{args.write_baseline}")
        return 0
    if args.sarif:
        print(sarif_json(violations, rules,
                         timings if args.stats else None))
    elif args.json:
        print(to_json(violations))
    else:
        print(format_text(violations))
        if args.stats:
            total = sum(timings.values())
            print(f"rule timings ({total:.2f}s total):")
            for rule_id, seconds in sorted(
                timings.items(), key=lambda kv: -kv[1]
            ):
                print(f"  {rule_id}  {seconds * 1000:8.1f} ms")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
