"""CLI entry point: ``python -m tools.lintkit [paths…]``.

Defaults to linting ``src/repro`` and ``tools``; exits 1 when any rule
fires (the CI gate), 0 when clean.  ``--json`` emits the machine
readable report, ``--select`` narrows to specific rule ids and
``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.lintkit import (  # noqa: E402
    all_rules,
    format_text,
    lint_paths,
    to_json,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lintkit",
        description="AST lint over the repository (run from the root)",
    )
    parser.add_argument("paths", nargs="*",
                        default=["src/repro", "tools"],
                        help="files or directories (default: src/repro "
                             "and tools)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0
    if args.select:
        wanted = {part.strip() for part in args.select.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]

    violations = lint_paths(args.paths, rules=rules, root=ROOT)
    if args.json:
        print(to_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
